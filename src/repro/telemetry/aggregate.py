"""Bounded-memory online aggregators for telemetry streams.

Every aggregator here holds O(1) state no matter how many samples flow
through it — that is the whole point of the streaming layer.  Accuracy
contracts, per aggregator:

* :class:`RunningStats` — count/min/max exact; mean and (sample)
  variance via Welford's update with Chan's pairwise merge for block
  input, numerically stable for arbitrarily long streams.  Block
  merging changes rounding at the last-ulp level versus a per-sample
  loop; min/max/count are unaffected.
* :class:`P2Quantile` — the Jain/Chlamtac P² algorithm: five markers
  updated with parabolic interpolation, no sample retention.  On
  continuous unimodal data the estimate typically lands within a
  fraction of a percent of the exact order statistic; on *quantized*
  data (decoded rung midpoints take at most ``n_bits + 1`` distinct
  values) the guarantee telemetry relies on — and the test suite
  enforces — is one quantization step: ``|P² - np.quantile| <= `` the
  widest interior decode interval of the ladder.
* :class:`RungHistogram` — exact per-rung occupancy counts (plus
  bubble tally); counts are the sufficient statistic for any later
  exact quantile of the *rung* distribution.
* :class:`EwmaBaseline` — exponentially weighted moving average,
  updated strictly per-sample (sequentially inside block updates) so
  the value is independent of how the stream was chunked.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


class RunningStats:
    """Welford/Chan online count, min, max, mean and variance."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, x: float) -> None:
        """One sample (Welford's update)."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def update_block(self, xs: np.ndarray) -> None:
        """A block of samples via Chan's parallel-variance merge."""
        xs = np.asarray(xs, dtype=float).ravel()
        n = xs.size
        if n == 0:
            return
        b_mean = float(xs.mean())
        b_m2 = float(np.sum(np.square(xs - b_mean)))
        delta = b_mean - self.mean
        total = self.count + n
        self.mean += delta * n / total
        self._m2 += b_m2 + delta * delta * self.count * n / total
        self.count = total
        b_min = float(xs.min())
        b_max = float(xs.max())
        if b_min < self.minimum:
            self.minimum = b_min
        if b_max > self.maximum:
            self.maximum = b_max

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below two samples)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    def as_dict(self) -> dict[str, float | int | None]:
        """JSON-friendly summary (None where undefined)."""
        empty = self.count == 0
        var = self.variance
        return {
            "count": self.count,
            "mean": None if empty else self.mean,
            "min": None if empty else self.minimum,
            "max": None if empty else self.maximum,
            "variance": None if var != var else var,
            "std": None if var != var else math.sqrt(var),
        }


class P2Quantile:
    """Streaming quantile estimation — Jain & Chlamtac's P² algorithm.

    Args:
        q: Target quantile in (0, 1).

    Holds exactly five markers (heights + positions); the first five
    samples are stored verbatim, after which every update is O(1).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile {q} outside (0, 1)")
        self.q = float(q)
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2 * q, 1.0 + 4 * q, 3.0 + 2 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def update(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if len(h) < 5:
            h.append(float(x))
            h.sort()
            return
        pos = self._pos
        # Locate the cell containing x and clamp the extreme markers.
        if x < h[0]:
            h[0] = float(x)
            k = 0
        elif x >= h[4]:
            h[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired
        # positions, parabolic (P²) when possible, linear otherwise.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, step)
                if not h[i - 1] < cand < h[i + 1]:
                    cand = self._linear(i, step)
                h[i] = cand
                pos[i] += step
            # else: marker stays put this sample.

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def update_block(self, xs: np.ndarray) -> None:
        """Sequential block update (P² is inherently per-sample)."""
        update = self.update
        for x in np.asarray(xs, dtype=float).ravel().tolist():
            update(x)

    @property
    def value(self) -> float:
        """Current estimate (NaN before any sample).

        Below five samples this is the exact order statistic of what
        was seen; afterwards the P² center-marker height.
        """
        h = self._heights
        if not h:
            return math.nan
        if len(h) < 5 or self.count <= 5:
            rank = self.q * (len(h) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (rank - lo) * (h[hi] - h[lo])
        return h[2]


class RungHistogram:
    """Exact occupancy counts per thermometer rung (ones count).

    Args:
        n_bits: Array width; rungs run 0..n_bits inclusive.
    """

    def __init__(self, n_bits: int) -> None:
        if n_bits < 1:
            raise ConfigurationError("n_bits must be at least 1")
        self.n_bits = int(n_bits)
        self.counts = np.zeros(self.n_bits + 1, dtype=np.int64)
        self.bubbled = 0

    def update_block(self, ks: np.ndarray,
                     bubbles: np.ndarray | None = None) -> None:
        """Tally a block of ones counts (and optional bubble flags)."""
        ks = np.asarray(ks, dtype=np.int64).ravel()
        if ks.size == 0:
            return
        if ks.min() < 0 or ks.max() > self.n_bits:
            raise ConfigurationError(
                f"ones count outside 0..{self.n_bits}"
            )
        self.counts += np.bincount(ks, minlength=self.n_bits + 1)
        if bubbles is not None:
            self.bubbled += int(np.count_nonzero(bubbles))

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def occupancy(self) -> list[float]:
        """Per-rung sample fractions (all zeros when empty)."""
        t = self.total
        if t == 0:
            return [0.0] * (self.n_bits + 1)
        return [float(c) / t for c in self.counts]

    def as_dict(self) -> dict[str, object]:
        return {
            "counts": [int(c) for c in self.counts],
            "occupancy": self.occupancy(),
            "bubbled": self.bubbled,
        }


class EwmaBaseline:
    """Exponentially weighted moving average of the decoded rail.

    Args:
        alpha: Smoothing factor in (0, 1]; higher tracks faster.

    The update is strictly sequential (``v = (1-a) v + a x`` per
    sample), so the baseline does not depend on the chunk size the
    stream happened to arrive in.
    """

    def __init__(self, alpha: float = 0.01) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha {alpha} outside (0, 1]")
        self.alpha = float(alpha)
        self.value = math.nan
        self.count = 0

    def update(self, x: float) -> None:
        if self.count == 0:
            self.value = float(x)
        else:
            self.value += self.alpha * (x - self.value)
        self.count += 1

    def update_block(self, xs: np.ndarray) -> None:
        xs = np.asarray(xs, dtype=float).ravel()
        if xs.size == 0:
            return
        a = self.alpha
        v = float(xs[0]) if self.count == 0 else self.value
        start = 1 if self.count == 0 else 0
        for x in xs[start:].tolist():
            v += a * (x - v)
        self.value = v
        self.count += xs.size
