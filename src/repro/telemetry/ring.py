"""Fixed-capacity ring buffers with explicit overflow policy.

The streaming pipeline's memory bound lives here: every sensor site
stages its samples in one :class:`RingBuffer` of fixed capacity, so the
pipeline's peak buffered-sample count is ``capacity`` per site *by
construction*, independent of trace length.  What happens when a
producer outruns the consumer is an explicit, observable choice:

* ``drop_oldest`` — evict the oldest staged samples to make room
  (telemetry semantics: the freshest data wins) and count every evicted
  sample in :attr:`RingBuffer.dropped`;
* ``block`` — accept only what fits and report how much was taken;
  the caller must drain and re-offer the rest (backpressure).  Samples
  deferred this way are counted in :attr:`RingBuffer.deferred`;
* ``error`` — raise :class:`~repro.errors.TelemetryOverflowError`;
  losing samples is a configuration bug for this stream.

Storage is a preallocated ``(capacity, width)`` float64 array indexed
by a moving head, so block pushes and pops are numpy slice copies, not
per-sample Python work.  Payloads are whatever the stream carries —
one column for raw rail voltages, ``n_bits`` columns for 0/1 word bits
(exact in float64) — with the sample time in a parallel column.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError, TelemetryOverflowError


class OverflowPolicy(enum.Enum):
    """What a full ring does with an incoming sample."""

    DROP_OLDEST = "drop_oldest"
    BLOCK = "block"
    ERROR = "error"

    @classmethod
    def parse(cls, value: "OverflowPolicy | str") -> "OverflowPolicy":
        """Accept an enum member or its string value (CLI-friendly)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown overflow policy {value!r}; expected one of "
                f"{[p.value for p in cls]}"
            ) from None


class RingBuffer:
    """Bounded staging buffer for (time, payload) sample blocks.

    Args:
        capacity: Maximum staged samples; the hard memory bound.
        width: Payload columns per sample (1 for a voltage stream,
            ``n_bits`` for a word stream).
        policy: Overflow behavior; see the module docstring.

    Attributes:
        pushed: Samples ever accepted into the ring.
        popped: Samples ever drained out.
        dropped: Samples evicted unread (``drop_oldest`` only).
        deferred: Samples refused for lack of space (``block`` only) —
            the producer re-offers them after draining.
        high_watermark: Peak occupancy ever observed (<= capacity).
    """

    def __init__(self, capacity: int, width: int = 1, *,
                 policy: OverflowPolicy | str =
                 OverflowPolicy.DROP_OLDEST) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if width < 1:
            raise ConfigurationError("width must be at least 1")
        self.capacity = int(capacity)
        self.width = int(width)
        self.policy = OverflowPolicy.parse(policy)
        self._times = np.empty(self.capacity, dtype=np.float64)
        self._payload = np.empty((self.capacity, self.width),
                                 dtype=np.float64)
        self._head = 0  # index of the oldest staged sample
        self._size = 0
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.deferred = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return self._size

    @property
    def free(self) -> int:
        """Samples the ring can accept without overflowing."""
        return self.capacity - self._size

    # -- internals -------------------------------------------------------

    def _write(self, times: np.ndarray, payload: np.ndarray) -> None:
        """Copy ``len(times)`` samples in at the tail (space exists)."""
        n = times.shape[0]
        tail = (self._head + self._size) % self.capacity
        first = min(n, self.capacity - tail)
        self._times[tail:tail + first] = times[:first]
        self._payload[tail:tail + first] = payload[:first]
        if first < n:
            self._times[:n - first] = times[first:]
            self._payload[:n - first] = payload[first:]
        self._size += n
        self.pushed += n
        if self._size > self.high_watermark:
            self.high_watermark = self._size

    def _evict(self, n: int) -> None:
        self._head = (self._head + n) % self.capacity
        self._size -= n
        self.dropped += n

    # -- producer side ---------------------------------------------------

    def push_block(self, times: np.ndarray,
                   payload: np.ndarray) -> int:
        """Stage a block of samples; returns how many were accepted.

        ``times`` is shape ``(n,)``; ``payload`` is ``(n,)`` (width 1)
        or ``(n, width)``.  Under ``drop_oldest`` and ``error`` the
        return value is always ``n`` (or the call raises); under
        ``block`` it may be less — drain and re-offer the remainder.

        Raises:
            ConfigurationError: mis-shaped block.
            TelemetryOverflowError: overflow under the ``error`` policy.
        """
        times = np.asarray(times, dtype=np.float64)
        payload = np.asarray(payload, dtype=np.float64)
        if payload.ndim == 1:
            payload = payload[:, None]
        if times.ndim != 1 or payload.shape != (times.shape[0],
                                                self.width):
            raise ConfigurationError(
                f"block shape mismatch: times {times.shape}, payload "
                f"{payload.shape}, width {self.width}"
            )
        n = times.shape[0]
        if n == 0:
            return 0
        if n <= self.free:
            self._write(times, payload)
            return n
        if self.policy is OverflowPolicy.ERROR:
            raise TelemetryOverflowError(
                f"ring overflow: {n} samples offered, {self.free} free "
                f"of {self.capacity}"
            )
        if self.policy is OverflowPolicy.BLOCK:
            take = self.free
            if take:
                self._write(times[:take], payload[:take])
            self.deferred += n - take
            return take
        # drop_oldest: keep only the freshest `capacity` of the offered
        # block, evicting staged samples as needed.
        if n >= self.capacity:
            skip = n - self.capacity
            self._evict(self._size)
            self.dropped += skip  # offered samples that never staged
            self._head = 0
            self._write(times[skip:], payload[skip:])
            return n
        need = n - self.free
        self._evict(need)
        self._write(times, payload)
        return n

    # -- consumer side ---------------------------------------------------

    def pop_block(self, max_n: int | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Drain up to ``max_n`` oldest samples as ``(times, payload)``.

        Returns freshly-allocated contiguous copies (safe to hold);
        payload keeps its ``(n, width)`` shape.  An empty ring returns
        zero-length arrays.
        """
        n = self._size if max_n is None else min(max_n, self._size)
        if n <= 0:
            return (np.empty(0), np.empty((0, self.width)))
        head = self._head
        first = min(n, self.capacity - head)
        times = np.empty(n, dtype=np.float64)
        payload = np.empty((n, self.width), dtype=np.float64)
        times[:first] = self._times[head:head + first]
        payload[:first] = self._payload[head:head + first]
        if first < n:
            times[first:] = self._times[:n - first]
            payload[first:] = self._payload[:n - first]
        self._head = (head + n) % self.capacity
        self._size -= n
        self.popped += n
        return times, payload

    def counters(self) -> dict[str, int]:
        """Observable state for snapshots."""
        return {
            "capacity": self.capacity,
            "staged": self._size,
            "pushed": self.pushed,
            "popped": self.popped,
            "dropped": self.dropped,
            "deferred": self.deferred,
            "high_watermark": self.high_watermark,
        }
