"""repro.telemetry — bounded-memory streaming PSN monitoring.

The paper's deployment story is a live one: sensor arrays replicated
across the CUT "like a scan chain", with measures "iterated so that
noise values can be captured in different moments of the CUT transient
behavior" — a continuous stream of thermometer words, not a one-shot
sweep.  This package is that missing online layer:

* :mod:`repro.telemetry.ring` — fixed-capacity staging buffers with an
  explicit overflow policy (``drop_oldest`` / ``block`` / ``error``)
  and drop counters;
* :mod:`repro.telemetry.aggregate` — O(1) online aggregators: Welford
  statistics, P² streaming quantiles, per-rung occupancy, EWMA
  baseline;
* :mod:`repro.telemetry.events` — hysteresis droop-episode detection
  emitting :class:`~repro.telemetry.events.DroopEvent` records;
* :mod:`repro.telemetry.sources` — adapters from
  :class:`~repro.core.monitor.NoiseMonitor` captures, scan-chain
  shift-outs, PDN transient grids, raw arrays and pluggable
  measurement drivers (:func:`~repro.telemetry.sources.backend_source`)
  to sample streams;
* :mod:`repro.telemetry.pipeline` — the
  :class:`~repro.telemetry.pipeline.TelemetryPipeline` orchestrator:
  chunked kernel decode (bit-identical to batch), per-site aggregation,
  alert rules, JSON snapshots and JSONL event export.

The CLI front end is ``repro telemetry``; the tracked perf trajectory
is ``BENCH_telemetry.json`` from ``benchmarks/bench_telemetry.py``.
"""

from repro.telemetry.aggregate import (
    EwmaBaseline,
    P2Quantile,
    RungHistogram,
    RunningStats,
)
from repro.telemetry.events import DroopDetector, DroopEvent
from repro.telemetry.pipeline import TelemetryPipeline, batch_decode
from repro.telemetry.ring import OverflowPolicy, RingBuffer
from repro.telemetry.sources import (
    SampleBlock,
    array_source,
    backend_source,
    grid_transient_source,
    monitor_source,
    scan_chain_source,
    synthetic_droop_trace,
    waveform_source,
)

__all__ = [
    "DroopDetector",
    "DroopEvent",
    "EwmaBaseline",
    "OverflowPolicy",
    "P2Quantile",
    "RingBuffer",
    "RungHistogram",
    "RunningStats",
    "SampleBlock",
    "TelemetryPipeline",
    "array_source",
    "backend_source",
    "batch_decode",
    "grid_transient_source",
    "monitor_source",
    "scan_chain_source",
    "synthetic_droop_trace",
    "waveform_source",
]
