"""CI smoke drill for the sensing service, end to end.

Starts a real ``repro serve`` subprocess (pool executor, one worker
per shard so every seeded kill hits), pushes a mixed load with
injected worker kills and poison requests through concurrent clients,
and asserts the service layer's headline contract from the outside:

* every request gets exactly one terminal response (no duplicates,
  no dead air, no dropped connections);
* killed pool workers are rebuilt and their jobs retried to success;
* poison requests surface as per-request ``error`` responses, never
  as a wedged server;
* ``--max-requests`` drains cleanly: exit code 0 and a stats dump.

Run from the repository root: ``PYTHONPATH=src python
scripts/service_smoke.py``.
"""

import asyncio
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, "src")

from repro.service import FleetConfig, build_load, run_load  # noqa: E402


def main() -> int:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="service-smoke-"))
    sock = tmp / "svc.sock"
    markers = tmp / "markers"
    markers.mkdir()
    n = 24
    config = FleetConfig(n_dies=16, n_shards=2)
    requests = build_load(
        2009, n, config=config,
        mix=("measure", "characterize", "measure", "window"),
        kill_rate=0.15, marker_dir=str(markers), poison_rate=0.1,
    )
    n_kills = sum(1 for r in requests
                  if "kill_marker" in r["params"].get("chaos", {}))
    n_poison = sum(1 for r in requests
                   if r["params"].get("chaos", {}).get("poison"))
    assert n_kills >= 1 and n_poison >= 1, (n_kills, n_poison)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", str(sock),
         "--backend", "kernel", "--executor", "pool",
         "--pool-workers", "1", "--dies", "16", "--shards", "2",
         "--max-requests", str(n),
         "--stats-out", str(tmp / "stats.json")],
        env=dict(os.environ, PYTHONPATH="src"),
    )
    try:
        for _ in range(300):
            if sock.exists():
                break
            time.sleep(0.1)
        else:
            raise RuntimeError("server socket never appeared")
        report = asyncio.run(run_load(f"unix:{sock}", requests,
                                      n_clients=3, depth=3,
                                      timeout_s=300))
        server.wait(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()

    assert report.problems() == [], report.problems()
    assert server.returncode == 0, server.returncode
    counters = json.loads((tmp / "stats.json").read_text())["counters"]
    assert counters["responses"] == n, counters
    assert counters["dropped_connections"] == 0, counters
    assert counters["crashes"] >= n_kills, (counters, n_kills)
    errors = sum(1 for r in report.responses.values()
                 if r["status"] == "error")
    assert errors == n_poison, (errors, n_poison)
    print(f"service smoke drill ok: {n} requests, {n_kills} worker "
          f"kills survived, {n_poison} poison surfaced; "
          f"counters={counters}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
