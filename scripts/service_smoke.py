"""CI smoke drill for the sensing service, end to end.

Since the campaign subsystem landed, the drill is declarative: this
script runs ``examples/campaigns/chaos_service_drill.toml`` through
:func:`repro.campaign.run_campaign`.  The spec's ``service_drill``
stage boots a real ``repro serve`` subprocess (pool executor, one
worker per shard so every seeded kill hits), pushes a mixed load with
injected worker kills and poison requests through concurrent clients,
and its declarative checks assert the service layer's headline
contract from the outside:

* every request gets exactly one terminal response (no duplicates,
  no dead air, no dropped connections);
* killed pool workers are rebuilt and their jobs retried to success;
* poison requests surface as per-request ``error`` responses, never
  as a wedged server;
* ``--max-requests`` drains cleanly: exit code 0 and a stats dump.

The spec's ``[chaos]`` block additionally vandalizes the task cache
and kills a sweep worker in the upstream ``threshold_sweep`` stage —
the same campaign proves compute-layer healing on the way in.

Run from the repository root: ``PYTHONPATH=src python
scripts/service_smoke.py``.
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, "src")

from repro.campaign import load_spec, run_campaign  # noqa: E402

SPEC = (pathlib.Path(__file__).resolve().parents[1]
        / "examples" / "campaigns" / "chaos_service_drill.toml")


def main() -> int:
    spec = load_spec(SPEC)
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        run = run_campaign(spec, out_dir=pathlib.Path(tmp) / "out")

        drill = run.record("service")
        assert drill is not None, "spec lost its service stage"
        for check in drill.checks:
            status = "ok  " if check["ok"] else "FAIL"
            print(f"  {status} {check['kind']:<12} {check['detail']}")
        if not run.ok:
            print(f"campaign outcome: {run.outcome}", file=sys.stderr)
            return 1

        payload = drill.payload
        sweep = run.record("thresholds")
        print(
            f"service smoke drill ok: {payload['n_requests']} "
            f"requests, {payload['kills_injected']} worker kills "
            f"survived, {payload['poison_injected']} poison "
            f"surfaced; sweep healed "
            f"{sweep.volatile['crashes']} crash(es) and "
            f"{len(run.manifest['stages'])} stage(s) passed"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
