#!/usr/bin/env python
"""Regenerate the committed campaign golden fixture.

Runs ``tests/data/campaigns/smoke.toml`` from a cold cache and writes
the resulting manifest + per-stage results to
``tests/data/campaigns/golden_smoke/`` (the task/stage caches go to a
throwaway temp dir so no pickles land in the fixture).

Run this (and commit the result) whenever the smoke spec, a stage
executor's payload shape, or the provenance tuple changes:

    PYTHONPATH=src python scripts/regen_campaign_golden.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import load_spec, run_campaign  # noqa: E402

SPEC = REPO / "tests" / "data" / "campaigns" / "smoke.toml"
GOLDEN = REPO / "tests" / "data" / "campaigns" / "golden_smoke"


def main() -> int:
    spec = load_spec(SPEC)
    if GOLDEN.exists():
        shutil.rmtree(GOLDEN)
    with tempfile.TemporaryDirectory(prefix="repro-golden-") as tmp:
        run = run_campaign(spec, out_dir=GOLDEN,
                           cache=Path(tmp) / "cache")
    print(f"outcome: {run.outcome}")
    for record in run.records:
        verdicts = "".join("P" if c["ok"] else "F"
                           for c in record.checks) or "-"
        print(f"  {record.id:<12} {record.status:<7} checks={verdicts}")
    if not run.ok:
        print("refusing to freeze a failing run", file=sys.stderr)
        return 1
    print(f"golden written to {GOLDEN}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
