#!/usr/bin/env python3
"""Capture a power-delivery droop transient with iterated measures.

The paper: "measures should be iterated so that noise values can be
captured in different moments of the CUT transient behavior."  This
example builds a realistic rail — an RLC power delivery network excited
by a CUT waking from idle — then samples it with repeated thermometer
measures and reconstructs the droop, printing an ASCII strip chart of
truth vs. sensor estimate.

Run:  python examples/droop_capture.py
"""

import numpy as np

from repro import SensorArray, paper_design
from repro.analysis.reconstruct import WaveformReconstructor
from repro.psn.activity import ActivityProfile, ClockedActivityGenerator
from repro.psn.pdn import PDNModel, PDNParameters
from repro.units import NS


def build_rail():
    """A first-droop event: CUT steps from idle to full activity."""
    pdn = PDNModel(PDNParameters())
    activity = ClockedActivityGenerator(
        clock_period=2 * NS, peak_current=14.0,
        profile=ActivityProfile.STEP, step_cycle=25,
    )
    dt = 0.05 * NS
    t_end = 400 * NS
    return pdn.simulate(activity.sample(t_end=t_end, dt=dt),
                        t_end=t_end, dt=dt), t_end


def strip_chart(times, truth, estimate, *, width=60):
    v_lo = min(min(truth), min(estimate)) - 0.01
    v_hi = max(max(truth), max(estimate)) + 0.01

    def col(v):
        return int((v - v_lo) / (v_hi - v_lo) * (width - 1))

    lines = [f"{'t [ns]':>8}  {'V':<{width}}  truth(*) estimate(o)"]
    for t, tv, ev in zip(times, truth, estimate):
        row = [" "] * width
        row[col(tv)] = "*"
        c = col(ev)
        row[c] = "o" if row[c] == " " else "@"
        lines.append(f"{t / NS:>8.1f}  {''.join(row)}")
    return "\n".join(lines)


def main() -> None:
    design = paper_design()
    array = SensorArray(design)
    rail, t_end = build_rail()

    # Equivalent-time sampling: 3.1 ns spacing deliberately
    # incommensurate with the ~10 ns PDN resonance.
    times = np.arange(10 * NS, t_end - 10 * NS, 3.1 * NS)
    rec = WaveformReconstructor()
    saturated = 0
    for t in times:
        v = rail(float(t))
        word = array.measure(3, vdd_n=v).word
        if word.ones in (0, array.n_bits):
            saturated += 1
            # Re-range: code 010 reaches overvoltages, 111 deep droops.
            code = 2 if word.ones == array.n_bits else 7
            word = array.measure(code, vdd_n=v).word
            rec.add(float(t), array.decode(word, code))
        else:
            rec.add(float(t), array.decode(word, 3))

    rmse = rec.rmse_against(rail)
    est_min, est_max = rec.extremes()
    print(f"{len(times)} iterated measures, {saturated} re-ranged")
    print(f"true rail:    min {rail.min_over(0, t_end):.4f} V, "
          f"max {rail.max_over(0, t_end):.4f} V")
    print(f"reconstructed: min {est_min:.4f} V, max {est_max:.4f} V")
    print(f"tracking RMSE: {rmse * 1e3:.1f} mV "
          f"(~1 LSB of the 7-stage ladder)\n")

    # Chart a window around the droop.
    window = [(t, rail(float(t)), est) for t, est in
              zip(times, rec.interpolate(times))
              if 30 * NS <= t <= 150 * NS]
    ts, truth, est = zip(*window)
    print(strip_chart(ts, truth, est))


if __name__ == "__main__":
    main()
