#!/usr/bin/env python3
"""Quickstart: measure a noisy supply with the PSN thermometer.

Builds the calibrated paper design, runs the full sensor system (pulse
generator, sensor arrays, control sequencing, encoder) through the
event simulator for the paper's Fig. 9 scenario, and decodes the
output words into voltage ranges.

Run:  python examples/quickstart.py
"""

from repro import SensorSystem, paper_design
from repro.sim.waveform import StepWaveform
from repro.units import NS, fmt_volt


def main() -> None:
    # The design calibrated to every number the paper publishes.
    design = paper_design()
    print("Calibrated 90 nm-class design:")
    print(f"  fitted Vth = {design.tech.vth:.4f} V, "
          f"alpha = {design.tech.alpha}")
    print(f"  sensor inverter strength = {design.sensor_strength:.1f}x")
    print(f"  trim capacitances = "
          f"{[round(c * 1e12, 3) for c in design.load_caps]} pF")
    print(f"  delay-code table = "
          f"{[round(d * 1e12) for d in design.delay_codes]} ps")

    # Fig. 9's scenario: the supply sits at 1.00 V for the first
    # measure and droops to 0.90 V for the second.
    rail = StepWaveform(1.00, 0.90, 16 * NS)
    system = SensorSystem(design)
    run = system.run(2, code_hs=3, vdd_n=rail)

    print("\nTwo PREPARE/SENSE measures (delay code 011):")
    for k, measure in enumerate(run.hs, start=1):
        rng = measure.decoded
        print(f"  measure {k}: word {measure.word.to_string()} "
              f"(OUTE={measure.encoded.oute}) -> VDD-n in "
              f"({fmt_volt(rng.lo)}, {fmt_volt(rng.hi)}]")
    print("\nGround (LOW-SENSE) array, same burst:")
    for k, measure in enumerate(run.ls, start=1):
        rng = measure.decoded
        print(f"  measure {k}: word {measure.word.to_string()} -> "
              f"GND-n in ({rng.lo * 1e3:.1f}, {rng.hi * 1e3:.1f}] mV")
    print(f"\nSimulated {run.events_processed} gate-level events.")


if __name__ == "__main__":
    main()
