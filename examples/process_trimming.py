#!/usr/bin/env python3
"""Process-variation-aware trimming of the delay code.

The paper (§III-A): the sensor characteristic shifts with process
corner, and re-choosing the P/CP delay code restores it — "having as an
input an information on the process corner and having a careful
characterization of the sensor in such condition".

This example characterizes the array at all five corners under both
corner models (on-die PG that tracks the corner, vs. an external timing
reference), runs the trimming policy, and verifies the retrimmed sensor
against the event simulator at the corner.

Run:  python examples/process_trimming.py
"""

from repro import SensorArrayHarness, corner_by_name, paper_design
from repro.core.trimming import TrimmingPolicy


def main() -> None:
    design = paper_design()
    reference = TrimmingPolicy(design, reference_code=3)
    print(f"Reference (TT, code 011) range: "
          f"{reference.reference_range[0]:.3f} - "
          f"{reference.reference_range[1]:.3f} V\n")

    for tracks in (True, False):
        label = ("PG tracks corner (all on-die)" if tracks
                 else "external timing reference")
        print(f"=== {label} ===")
        policy = TrimmingPolicy(design, 3, pg_tracks_corner=tracks)
        for name in ("SS", "TT", "FF", "SF", "FS"):
            corner = corner_by_name(name)
            tech = corner.apply(design.tech)
            result = policy.retrim(tech, corner_name=name)
            print(f"  {name}: untrimmed mismatch "
                  f"{result.untrimmed_residual * 1e3:6.1f} mV -> code "
                  f"{result.chosen_code:03b}, range "
                  f"({result.achieved_range[0]:.3f}, "
                  f"{result.achieved_range[1]:.3f}) V, residual "
                  f"{result.residual * 1e3:5.1f} mV")
        print()

    # Verify one retrimmed corner in the event simulator: at SS with
    # the on-die PG, the corner-characterized decode still brackets a
    # true 0.95 V rail.
    ss_tech = corner_by_name("SS").apply(design.tech)
    harness = SensorArrayHarness(design, tech=ss_tech)
    measure = harness.measure_once(3, vdd_n=0.95)
    from repro import SensorArray

    decoder = SensorArray(design, tech=ss_tech)
    rng = decoder.decode(measure.word, 3)
    print("Event-simulated check at the SS corner, 0.95 V rail:")
    print(f"  word {measure.word.to_string()} -> ({rng.lo:.4f}, "
          f"{rng.hi:.4f}] V, brackets truth: {rng.contains(0.95)}")


if __name__ == "__main__":
    main()
