#!/usr/bin/env python3
"""Track a migrating workload hotspot with the PSN scan chain.

Combines the quasi-static grid-transient solver with the scan chain: a
compute hotspot walks across the die (workload migration / thread
hopping), the grid is re-solved over time, and periodic scan-outs of
the nine sensor sites localize the hotspot at each epoch — the dynamic
version of the paper's "measures in many points of the CUT".

Run:  python examples/hotspot_migration.py
"""

import numpy as np

from repro import PSNScanChain, paper_design
from repro.psn.grid import IRDropGrid
from repro.psn.transient_grid import migrating_hotspot, solve_transient
from repro.units import NS


def main() -> None:
    design = paper_design()
    grid = IRDropGrid(rows=8, cols=8, r_segment=0.05, r_pad=0.01)
    sites = [(r, c) for r in (1, 4, 6) for c in (1, 4, 6)]
    chain = PSNScanChain(design, grid, sites, code=3)

    path = [(1, 1), (4, 4), (6, 6), (1, 6)]
    dwell = 100 * NS
    currents_fn = migrating_hotspot(
        grid, total_current=5.0, path=path, dwell=dwell,
        hotspot_share=0.8,
    )
    transient = solve_transient(grid, currents_fn,
                                t_end=len(path) * dwell, dt=10 * NS)

    print("hotspot path:", " -> ".join(str(p) for p in path),
          f"(dwell {dwell / NS:.0f} ns each)\n")
    print(f"{'epoch':>6} {'t [ns]':>8} {'located':>9} {'true':>9} "
          f"{'deepest reading [V]':>21}")
    hits = 0
    for epoch, true_site in enumerate(path):
        t_probe = (epoch + 0.5) * dwell
        measures = chain.measure_map(currents_fn(float(t_probe)))
        located = chain.hotspot_site(measures)
        deepest = min(m.estimate for m in measures)
        nearest = min(sites, key=lambda s: abs(s[0] - true_site[0])
                      + abs(s[1] - true_site[1]))
        ok = located == nearest
        hits += ok
        print(f"{epoch:>6} {t_probe / NS:>8.0f} {str(located):>9} "
              f"{str(true_site):>9} {deepest:>21.4f}"
              f"{'' if ok else '   (nearest site: ' + str(nearest) + ')'}")
    print(f"\nlocated the nearest instrumented site in {hits}/{len(path)} "
          f"epochs")

    worst = transient.worst_tile()
    print(f"grid-transient worst tile over the whole run: {worst} "
          f"(drop {transient.worst_drop() * 1e3:.0f} mV)")
    sampled = transient.waveform_at(4, 4)
    ts = np.linspace(0, len(path) * dwell, 9)
    levels = ", ".join(f"{sampled(float(t)):.3f}" for t in ts)
    print(f"tile (4,4) rail through the migration: {levels} V")


if __name__ == "__main__":
    main()
