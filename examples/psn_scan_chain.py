#!/usr/bin/env python3
"""PSN scan chain: map the IR drop across a die with replicated sensors.

The paper's closing idea — "this sensor system can be thought for PSN
as scan chains are for data faults" — realized end to end: an 8x8
on-die power grid with a current hotspot, sensor arrays on nine tiles,
words shifted out through the scan register, and an ASCII IR-drop map
rebuilt purely from the digital readout.

Run:  python examples/psn_scan_chain.py
"""

import numpy as np

from repro import PSNScanChain, paper_design
from repro.psn.grid import IRDropGrid


def ascii_map(values, fmt="{:.3f}") -> str:
    rows = []
    for row in values:
        rows.append("  ".join(fmt.format(v) for v in row))
    return "\n".join(rows)


def main() -> None:
    design = paper_design()
    grid = IRDropGrid(rows=8, cols=8, r_segment=0.05, r_pad=0.01)
    sites = [(r, c) for r in (1, 3, 6) for c in (1, 4, 6)]
    chain = PSNScanChain(design, grid, sites, code=3)

    currents = grid.hotspot_currents(
        total_current=5.0, hotspot=(3, 4), hotspot_share=0.8,
    )
    truth = grid.solve(currents)
    print("True tile voltages (grid solver):")
    print(ascii_map(truth))

    measures = chain.measure_map(currents)
    stream = chain.scan_out(measures)
    print(f"\nScan stream ({len(stream)} bits): "
          + "".join(str(b) for b in stream))

    words = chain.deserialize(stream)
    print("\nPer-site readout (from the scan stream alone):")
    for site, word, m in zip(chain.sites, words, measures):
        rng = chain.array.decode(word, chain.code)
        marker = "  <-- hotspot" if site == chain.hotspot_site(measures) \
            else ""
        print(f"  tile {site}: word {word.to_string()} -> "
              f"({rng.lo:.4f}, {rng.hi:.4f}] V  "
              f"[true {m.true_voltage:.4f} V]{marker}")

    err = chain.map_error(measures)
    print(f"\nMap accuracy: RMSE {err['rmse'] * 1e3:.1f} mV, worst "
          f"{err['worst'] * 1e3:.1f} mV, bracket rate "
          f"{err['bracket_rate']:.0%}")
    print(f"Located hotspot: {chain.hotspot_site(measures)} "
          f"(injected at (3, 4))")

    # What replication costs: one INV+FF array per extra point.
    per_site = 2 * design.n_bits
    print(f"\nCost of each extra measurement point: {per_site} "
          f"standard cells (the control system is shared).")


if __name__ == "__main__":
    main()
