#!/usr/bin/env python3
"""Verification-mode monitoring with VCD export.

The paper's first use case: the sensed levels are "transferred to the
output for verification purposes".  This example runs the
equivalent-time :class:`~repro.core.monitor.NoiseMonitor` over a
resonant droop event (the full event-driven system per sample), prints
the per-point readout with auto-ranging, and dumps one burst's complete
gate-level trace to a VCD file a waveform viewer can open.

Run:  python examples/verification_monitor.py
"""

import pathlib

from repro import NoiseMonitor, paper_design
from repro.sim.vcd import write_vcd
from repro.sim.waveform import (
    ConstantWaveform,
    DampedSineWaveform,
    SumWaveform,
)
from repro.units import NS


def the_transient():
    """A 60 MHz resonant droop: -150 mV first trough, ringing back."""
    return SumWaveform([
        ConstantWaveform(1.0),
        DampedSineWaveform(base=0.0, amplitude=-0.15, freq=60e6,
                           decay=25 * NS, t0=20 * NS),
    ])


def main() -> None:
    design = paper_design()
    wf = the_transient()

    monitor = NoiseMonitor(design)
    capture = monitor.capture(wf, t_start=5 * NS, t_stop=90 * NS,
                              n_points=24)

    print("equivalent-time capture (one full-system burst per point):")
    print(f"{'t [ns]':>7}  {'code':>4}  {'word':>8}  "
          f"{'decoded [V]':>19}  {'truth':>7}")
    for p in capture.points:
        truth = wf(p.time)
        rng = f"({p.decoded.lo:7.4f}, {p.decoded.hi:7.4f}]"
        flag = " *" if p.metastable else ""
        print(f"{p.time / NS:>7.1f}  {p.code:>04b}  {p.word:>8}  "
              f"{rng:>19}  {truth:>7.4f}{flag}")
    lo, hi = capture.extremes()
    print(f"\nreconstruction: min {lo:.4f} V, max {hi:.4f} V; "
          f"RMSE vs truth {capture.rmse_against(wf) * 1e3:.1f} mV; "
          f"{capture.reranged} point(s) auto-reranged "
          f"(* = metastable stage observed)")

    # Dump one burst's full gate-level activity for a waveform viewer.
    from repro.sim.engine import SimulationEngine

    system = monitor.system
    system.netlist.set_supply_waveform("VDDN", wf)
    engine = SimulationEngine(system.netlist)
    ports = system._ports["h"]
    for s, b in zip(ports.selects, (1, 1, 0)):
        engine.set_initial(s, b)
    engine.set_initial(ports.p_in, 1)
    engine.set_initial(ports.cp_in, 0)
    engine.settle()
    for b in range(1, design.n_bits + 1):
        engine.set_initial(f"OUTh{b}", 0)
    engine.schedule_stimulus(ports.p_in, 0, 30 * NS)
    engine.schedule_stimulus(ports.cp_in, 1, 30 * NS)
    engine.run(35 * NS)

    out_path = pathlib.Path("sensor_burst.vcd")
    with out_path.open("w") as fh:
        nets = [ports.p_in, ports.p_out, ports.cp_in, ports.cp_out,
                "CPD_h"] + [f"DSh{b}" for b in range(1, 8)] \
            + [f"OUTh{b}" for b in range(1, 8)]
        changes = write_vcd(engine.trace, fh, nets=nets)
    print(f"\nwrote {changes} value changes to {out_path} "
          f"(open with any VCD viewer)")


if __name__ == "__main__":
    main()
