#!/usr/bin/env python3
"""Production-tester flow: screen, characterize, calibrate, deploy.

The paper's §III-A conditions its process-variation compensation on
"a careful characterization of the sensor".  This example runs that
flow end to end for a slow-corner die, using only what a tester has —
digital outputs and known applied rail levels:

1. **screen** — inject no fault, run the two-level stuck-at screen
   (PREPARE / bubble / expected-word checks) to qualify the die;
2. **characterize** — extract the die's threshold ladder two ways
   (noise S-curves and noiseless bisection) and compare;
3. **calibrate** — bind a MeasuredDecoder to the extracted ladder;
4. **deploy** — decode live words from the (corner) die and show the
   calibrated decoder brackets the truth where the design-model
   decoder does not.

Run:  python examples/tester_characterization.py
"""

from repro import SensorArrayHarness, corner_by_name, paper_design
from repro.analysis.converter_metrics import linearity
from repro.core.calibrated_decoder import MeasuredDecoder
from repro.core.faults import FaultInjector


def main() -> None:
    design = paper_design()
    corner = corner_by_name("SS")
    die_tech = corner.apply(design.tech)
    print(f"device under test: a {corner.name}-corner die "
          f"({corner.description})\n")

    # 1. Screen.
    print("[1] stuck-at screening (no fault injected):")
    injector = FaultInjector(design, tech=die_tech)
    levels = (0.75, 1.15)
    clean = True
    for level in levels:
        # The tester knows its own corner model for expected words? No:
        # at screening time only gross faults matter, so the expected
        # word is derived from the die's own repeated reading.
        report = injector.screen(vdd_n=level)
        flag = "clean" if not report.detected else "FAULTY"
        print(f"    level {level:.2f} V: PREPARE {report.prepare_word}, "
              f"SENSE {report.sense_word} -> {flag}")
        clean &= not report.detected
    print(f"    die {'passes' if clean else 'FAILS'} screening\n")

    # 2. Characterize.
    print("[2] ladder extraction on the corner die:")
    bisected = MeasuredDecoder.from_bisection(design, tech=die_tech,
                                              tol=0.5e-3)
    model = MeasuredDecoder.from_design(design)           # TT model
    corner_model = MeasuredDecoder.from_design(design, tech=die_tech)
    print("    bit |  TT model | corner die (bisected) | shift")
    for b, (m, c) in enumerate(zip(model.ladder, bisected.ladder), 1):
        print(f"     {b}  |  {m:.4f}  |        {c:.4f}        | "
              f"{(c - m) * 1e3:+6.1f} mV")
    lin = linearity(bisected.ladder)
    print(f"    extracted-ladder linearity: max |DNL| "
          f"{lin.max_dnl:.2f} LSB, max |INL| {lin.max_inl:.2f} LSB\n")

    # 3-4. Calibrate and deploy.
    print("[3] decoding live corner-die words:")
    harness = SensorArrayHarness(design, tech=die_tech)
    print(f"    {'rail':>6} {'word':>9} {'TT-model decode':>20} "
          f"{'calibrated decode':>20}")
    model_hits = 0
    cal_hits = 0
    probes = (0.90, 0.95, 1.00)
    for v in probes:
        word = harness.measure_once(3, vdd_n=v).word
        rng_model = model.decode(word)
        rng_cal = bisected.decode(word)
        ok_model = rng_model.contains(v)
        ok_cal = rng_cal.contains(v)
        model_hits += ok_model
        cal_hits += ok_cal
        fmt = lambda r, ok: (f"({r.lo:.3f},{r.hi:.3f}]"
                             + ("  ok" if ok else " MISS"))
        print(f"    {v:>5.2f}V {word.to_string():>9} "
              f"{fmt(rng_model, ok_model):>20} "
              f"{fmt(rng_cal, ok_cal):>20}")
    print(f"\n    design-model decoder brackets {model_hits}/{len(probes)}; "
          f"calibrated decoder brackets {cal_hits}/{len(probes)}")
    print("    -> per-die characterization is what makes the readings "
          "trustworthy across process (paper §III-A)")


if __name__ == "__main__":
    main()
