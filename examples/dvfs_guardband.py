#!/usr/bin/env python3
"""Power-aware supply scaling guarded by the PSN thermometer.

The abstract's second use case: the sensed level "can be used by a
control block within the circuit under test for the activation of power
aware policies" — lower VDD for power until the *measured* margin binds,
instead of carrying a blind worst-case guard band.

The loop uses the library's :class:`~repro.core.guardband.GuardbandController`:
each epoch, a burst of iterated measures rides the noisy rail, the
controller tracks the worst decoded level, and steps the regulator
setpoint.  A Razor-style datapath monitors whether the CUT would
actually have failed — the independent safety check on the policy.

Run:  python examples/dvfs_guardband.py
"""

import numpy as np

from repro import SensorArray, paper_design
from repro.baselines.razor import RazorStage
from repro.core.guardband import GuardbandAction, GuardbandController
from repro.psn.noise import NoiseScenario
from repro.units import NS


def epoch_readings(array, controller, *, seed, setpoint):
    """One epoch: 40 iterated measures on a noisy rail at `setpoint`."""
    vdd, _ = (NoiseScenario(vdd_nominal=setpoint, seed=seed)
              .with_vdd_droop(0.035, 60 * NS, freq=120e6, decay=25 * NS)
              .with_vdd_random_noise(0.008)
              .build())
    for t in np.arange(10 * NS, 190 * NS, 4.3 * NS):
        v = float(vdd(float(t)))
        word = array.measure(3, vdd_n=v).word
        controller.observe(array.decode(word, 3))


def main() -> None:
    design = paper_design()
    array = SensorArray(design)
    controller = GuardbandController(
        vmin=0.88, margin=0.0, step=0.01, setpoint=1.0,
        hysteresis=0.035,   # >= one sensor LSB, per the class docstring
    )
    razor = RazorStage(design.tech, path_delay_nominal=1.45 * NS,
                       clock_period=2 * NS, delta=0.25 * NS,
                       setup_time=60e-12)

    print(f"CUT Vmin = {controller.vmin:.2f} V; policy: lower while "
          f"measured worst clears it by step+hysteresis")
    print(f"{'epoch':>6} {'setpoint':>9} {'worst sensed':>13} "
          f"{'action':>7} {'CUT (Razor)':>12}")
    for epoch in range(16):
        setpoint = controller.setpoint
        epoch_readings(array, controller,
                       seed=100 + epoch, setpoint=setpoint)
        worst = controller.epoch_worst
        action = controller.decide()
        cut = razor.observe(worst).outcome
        print(f"{epoch:>6} {setpoint:>8.3f}V {worst:>12.3f}V "
              f"{action.value:>7} {cut.value:>12}")
        if action is GuardbandAction.HOLD and epoch > 2:
            break

    print(f"\nconverged setpoint: {controller.setpoint:.3f} V")
    print(f"dynamic-power saving vs 1.0 V: "
          f"{controller.power_saving():.0%}")
    print("the sensor closes the loop on *measured* noise instead of a "
          "blind worst-case guard band")


if __name__ == "__main__":
    main()
