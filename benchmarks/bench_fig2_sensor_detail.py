"""E1 — Fig. 2: single-sensor detail.

Paper: "DS signal has increasing propagation delay with respect to
input pulse P (cases 1-4 having linear distance); OUT sample is correct
in cases 1,2,3, wrong in case 4" — with the OUT delay growing
non-linearly (metastability) toward the failure.

This bench replays the experiment through the event simulator: four
VDD-n cases linearly spaced across bit 1's threshold, one PREPARE/SENSE
measure each.
"""

from benchmarks._report import emit, fmt_rows
from repro.core.sensor import SensorBit, SensorBitHarness
from repro.units import to_ps


def run_fig2(design):
    bit = 1
    t_star = SensorBit(design, bit).threshold(3)
    # Four linearly spaced cases straddling the threshold, like the
    # paper's cases 1-4: the last one fails marginally, so the OUT
    # delay keeps growing into the failure (the Fig. 2 visual).
    step = 0.02
    cases = [t_star + 2.75 * step - k * step for k in range(4)]
    harness = SensorBitHarness(design, bit)
    results = [harness.measure_once(3, vdd_n=v) for v in cases]
    return cases, results


def test_fig2_sensor_detail(benchmark, design):
    cases, results = benchmark.pedantic(
        lambda: run_fig2(design), rounds=1, iterations=1,
    )
    rows = []
    for k, (v, r) in enumerate(zip(cases, results), start=1):
        rows.append([
            k, f"{v:.4f}",
            f"{to_ps(r.ds_delay):.2f}",
            f"{to_ps(r.out_delay):.2f}",
            "correct" if r.passed else "WRONG",
            r.outcome,
        ])
    emit("fig2_sensor_detail", fmt_rows(
        ["case", "VDD-n [V]", "DS delay [ps]", "OUT delay [ps]",
         "sample", "outcome"],
        rows,
    ) + "\npaper: DS delay increases 1->4; OUT correct in 1-3, wrong "
        "in 4; OUT delay grows non-linearly near failure")
    # Shape assertions (the paper's qualitative content).
    ds = [r.ds_delay for r in results]
    assert all(b > a for a, b in zip(ds, ds[1:]))
    assert [r.passed for r in results] == [True, True, True, False]
