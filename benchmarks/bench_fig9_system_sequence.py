"""E6 — Fig. 9: full-system sequence of two measures.

Paper: delay code 011 (65 ps); VDD-n = 1 V -> '0011111' (0.992-1.021 V)
then VDD-n = 0.9 V -> '0000011' (0.896-0.929 V); PREPARE phase reads
'0000000'.
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.system import SensorSystem
from repro.sim.waveform import StepWaveform
from repro.units import NS


def run_fig9(design):
    system = SensorSystem(design, include_ls=False)
    rail = StepWaveform(1.0, 0.9, 16 * NS)
    return system.run(2, code_hs=3, vdd_n=rail)


def test_fig9_system_sequence(benchmark, design):
    run = benchmark.pedantic(lambda: run_fig9(design),
                             rounds=1, iterations=1)
    rows = []
    for k, (v, m) in enumerate(zip((1.0, 0.9), run.hs), start=1):
        rows.append([
            k, f"{v:.1f}", m.prepare_word, m.word.to_string(),
            m.encoded.oute,
            f"({m.decoded.lo:.4f}, {m.decoded.hi:.4f})",
        ])
    emit("fig9_system_sequence", fmt_rows(
        ["measure", "VDD-n [V]", "PREPARE word", "SENSE word", "OUTE",
         "decoded range [V]"],
        rows,
    ) + "\npaper: '0011111' <-> 0.992-1.021 V; '0000011' <-> "
        "0.896-0.929 V; PREPARE '0000000'")
    assert run.hs[0].word.to_string() == "0011111"
    assert run.hs[1].word.to_string() == "0000011"
    assert run.hs[0].decoded.lo == pytest.approx(0.992, abs=5e-4)
    assert run.hs[1].decoded.hi == pytest.approx(0.929, abs=5e-4)
    assert all(m.prepare_word == "0000000" for m in run.hs)
