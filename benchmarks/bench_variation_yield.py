"""A8 — Monte-Carlo yield under process mismatch.

The paper assumes "INV-i and FF-i are identical" and handles die-level
variation with code trimming; per-instance mismatch is the unmodelled
residual.  This bench samples lots at three mismatch levels and reports
threshold spread, bubble rates, and the decode-accuracy gap between the
nominal ladder and a per-die characterized ladder — quantifying how far
the paper's "careful characterization of the sensor" must go.
"""

from benchmarks._report import emit, fmt_rows
from repro.analysis.yield_study import run_yield_study
from repro.devices.variation import VariationModel
from repro.runtime import env_workers


LEVELS = (
    ("mild", VariationModel(sigma_vth_inter=5e-3, sigma_vth_intra=2e-3,
                            sigma_drive_inter=0.01,
                            sigma_drive_intra=0.005)),
    ("typical", VariationModel()),
    ("heavy", VariationModel(sigma_vth_intra=20e-3,
                             sigma_drive_intra=0.06)),
)


def run_lots(design, *, workers=None, cache=None):
    if workers is None:
        workers = env_workers()
    return {
        name: run_yield_study(design, model, n_dies=60, seed=11,
                              workers=workers, cache=cache)
        for name, model in LEVELS
    }


def test_variation_yield(benchmark, design):
    reports = benchmark.pedantic(lambda: run_lots(design),
                                 rounds=1, iterations=1)
    rows = []
    for name, _ in LEVELS:
        r = reports[name]
        rows.append([
            name,
            f"{max(r.threshold_sigma) * 1e3:.1f}",
            f"{r.monotone_fraction:.2f}",
            f"{r.bubble_rate:.3f}",
            f"{r.bracket_rate:.2f}",
            f"{r.bracket_rate_calibrated:.2f}",
        ])
    emit("variation_yield", fmt_rows(
        ["mismatch", "worst sigma(th) [mV]", "monotone dies",
         "bubble rate", "bracket (nominal)", "bracket (per-die cal)"],
        rows,
    ) + "\nshape: mismatch produces bubbles (the ENC's ones-counting "
        "absorbs them) and inter-die shift dominates nominal-ladder "
        "error; per-die characterization recovers most of it — the "
        "quantitative case for the paper's trimming/characterization "
        "step")
    mild, typical, heavy = (reports[n] for n, _ in LEVELS)
    assert mild.bubble_rate < typical.bubble_rate < heavy.bubble_rate
    assert mild.monotone_fraction > heavy.monotone_fraction
    for r in (mild, typical, heavy):
        assert r.bracket_rate_calibrated >= r.bracket_rate
    assert typical.bracket_rate_calibrated > 0.85
