"""A3 — Razor baseline (ref [8]).

Paper §I on Razor: "highly interesting, though it requires a careful
design of the sense block and of the recovering system which is
suitable for a pipeline based processor, and not for a general
architecture" — and, implicitly, it detects errors without reporting
noise *magnitude*.

The bench sweeps the supply and reports, per level, what each scheme
knows: Razor's ternary outcome vs. the thermometer's 8-level reading.
"""

import numpy as np

from benchmarks._report import emit, fmt_rows
from repro.baselines.razor import RazorOutcome, RazorStage
from repro.core.array import SensorArray
from repro.units import NS


def run_sweep(design):
    razor = RazorStage(design.tech, path_delay_nominal=1.55 * NS,
                       clock_period=2 * NS, delta=0.25 * NS,
                       setup_time=60e-12)
    arr = SensorArray(design)
    levels = np.arange(0.80, 1.11, 0.03)
    rows = []
    for v in levels:
        obs = razor.observe(float(v))
        word = arr.word_for(3, vdd_n=float(v))
        rows.append((float(v), obs.outcome, word))
    return razor, rows


def test_razor_vs_thermometer_information(benchmark, design):
    razor, results = benchmark.pedantic(lambda: run_sweep(design),
                                        rounds=1, iterations=1)
    table_rows = [
        [f"{v:.2f}", outcome.value, word, word.count("1")]
        for v, outcome, word in results
    ]
    threshold = razor.error_threshold()
    distinct_razor = len({o for _, o, _ in results})
    distinct_thermo = len({w for _, _, w in results})
    emit("ablation_razor", fmt_rows(
        ["VDD [V]", "Razor outcome", "thermometer word", "level"],
        table_rows,
    ) + f"\nRazor single error threshold: {threshold:.3f} V"
        f"\ndistinct readings over the sweep: Razor {distinct_razor} "
        f"vs thermometer {distinct_thermo}"
        "\nshape: Razor collapses the droop axis to error/no-error "
        "around one path-specific threshold; the thermometer grades it")
    assert distinct_thermo > distinct_razor
    # Razor is silent (NO_ERROR) across the entire range where the
    # thermometer already resolves multiple distinct droop levels.
    no_error_words = {w for v, o, w in results
                      if o is RazorOutcome.NO_ERROR}
    assert len(no_error_words) >= 3
