"""E4 — Fig. 5: multibit sensor characteristic for three delay codes.

Paper: "in the delay code 011 case, the threshold range goes from
0.827V (all errors) to 1.053V (no errors); ... code 0011111 if VDD-n is
lower than 1.021V and greater than 0.992V.  In case the delay code is
010, the dynamic ranges from 0.951V to 1.237V (also overvoltages can be
measured)."
"""

import math

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.characterization import characterize_array


def run_fig5(design):
    return characterize_array(design, codes=(1, 2, 3))


def test_fig5_multibit_characteristic(benchmark, design):
    chars = benchmark.pedantic(lambda: run_fig5(design),
                               rounds=1, iterations=1)
    blocks = []
    for code in (1, 2, 3):
        ch = chars[code]
        rows = []
        for word, rng in ch.table:
            lo = "-inf" if math.isinf(rng.lo) else f"{rng.lo:.4f}"
            hi = "+inf" if math.isinf(rng.hi) else f"{rng.hi:.4f}"
            rows.append([word, lo, hi])
        blocks.append(
            f"delay code {code:03b}: dynamic {ch.v_min:.3f} V (all "
            f"errors) .. {ch.v_max:.3f} V (no errors)\n"
            + fmt_rows(["output word", "VDD-n >", "VDD-n <="], rows)
        )
    emit("fig5_multibit_characteristic", "\n\n".join(blocks)
         + "\npaper: code 011 -> 0.827-1.053 V; code 010 -> "
           "0.951-1.237 V; 0011111 <-> 0.992-1.021 V")
    assert chars[3].v_min == pytest.approx(0.827, abs=5e-4)
    assert chars[3].v_max == pytest.approx(1.053, abs=5e-4)
    assert chars[2].v_min == pytest.approx(0.951, abs=5e-4)
    assert chars[2].v_max == pytest.approx(1.237, abs=5e-4)
    # Smaller skew -> range shifts up (who wins where: monotone shift).
    assert chars[1].v_min > chars[2].v_min > chars[3].v_min
