"""A6 — PSN scan chain: spatial IR-drop map reconstruction.

Paper §IV: "The array sensors can be placed in many points of the DUT,
whilst only a control system is required.  This sensor system can be
thought for PSN as scan chains are for data faults."

The bench places 9 sensor sites on an 8x8 power grid with a current
hotspot, shifts the words out scan-style, rebuilds the spatial map and
scores it against the grid solver's ground truth.
"""

import numpy as np

from benchmarks._report import emit, fmt_rows
from repro.core.scanchain import PSNScanChain
from repro.psn.grid import IRDropGrid


def run_scanchain(design):
    # Sized so every site's rail stays inside code 011's 0.827-1.053 V
    # window (a deeper event would call for retrimming to code 111).
    grid = IRDropGrid(rows=8, cols=8, r_segment=0.05, r_pad=0.01)
    sites = [(r, c) for r in (1, 3, 6) for c in (1, 4, 6)]
    chain = PSNScanChain(design, grid, sites, code=3)
    currents = grid.hotspot_currents(total_current=5.0, hotspot=(3, 4),
                                     hotspot_share=0.8)
    measures = chain.measure_map(currents)
    stream = chain.scan_out(measures)
    words = chain.deserialize(stream)
    return chain, measures, stream, words


def test_scanchain_spatial_map(benchmark, design):
    chain, measures, stream, words = benchmark.pedantic(
        lambda: run_scanchain(design), rounds=1, iterations=1,
    )
    rows = [
        [str(m.site), f"{m.true_voltage:.4f}", m.word.to_string(),
         f"{m.estimate:.4f}", "yes" if m.brackets_truth else "NO"]
        for m in measures
    ]
    err = chain.map_error(measures)
    emit("scanchain_map", fmt_rows(
        ["site", "true V [V]", "word", "estimate [V]", "brackets?"],
        rows,
    ) + f"\nscan stream: {len(stream)} bits for {len(measures)} sites"
        f"\nmap RMSE {err['rmse'] * 1e3:.1f} mV, worst "
        f"{err['worst'] * 1e3:.1f} mV, bracket rate "
        f"{err['bracket_rate']:.2f}"
        f"\nhotspot located at {chain.hotspot_site(measures)} "
        f"(true hotspot (3, 4))")
    assert err["bracket_rate"] == 1.0
    assert err["rmse"] < 0.02
    # Scan-out round trip is lossless.
    assert [w.to_string() for w in words] == \
        [m.word.to_string() for m in measures]
    # The located hotspot is the site nearest the injected one.
    hr, hc = chain.hotspot_site(measures)
    assert abs(hr - 3) <= 1 and abs(hc - 4) <= 1
