"""Service-layer throughput: the tracked BENCH_service.json.

The job server (:mod:`repro.service`) promises exactly-one terminal
response per request under load; this bench enforces that ordering —
correctness gates first, timing second:

* every clean load must come back ``ok`` at ``full`` quality with
  zero problems (duplicates, missing ids, early closes);
* the chaos load (seeded injected faults, stalls, poison requests,
  a shedding drop-oldest queue) must still answer every request.

Only then is throughput measured: sustained requests/s through a
kernel-backed and a sim-backed server over the same measurement-heavy
load (the ratio is the service-level speedup the backend seam buys),
p50/p99 end-to-end latency, and the shed/degraded/error fractions of
the chaos scenario.

Run standalone (``python -m benchmarks.bench_service`` or
``repro bench service``) with ``--smoke`` for the CI-sized load and
``--assert-speedup N`` to enforce a kernel-over-sim floor; the JSON
lands in ``benchmarks/reports/BENCH_service.json`` and, with
``--out``, at a tracked path (the repo commits ``BENCH_service.json``
at the root).
"""

from __future__ import annotations

import argparse
import asyncio
import tempfile
from pathlib import Path
from typing import Any

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows

CODE = 3
N_CLIENTS = 4


def _clean_requests(n: int, levels_per: int, config) -> list[dict]:
    """Measurement-heavy load: each request decodes a ladder of
    ``levels_per`` supply levels, so backend time dominates and the
    kernel/sim ratio reflects the drivers, not socket overhead."""
    requests = []
    for i in range(n):
        base = 0.90 + 0.02 * (i % 5)
        levels = [round(base + 0.30 * j / levels_per, 6)
                  for j in range(levels_per)]
        requests.append({"id": f"m{i}", "kind": "measure",
                         "params": {"levels": levels, "code": CODE}})
    return requests


def _drive(server_kwargs: dict, requests: list[dict], *,
           n_clients: int = N_CLIENTS, depth: int = 2):
    """One full service lifecycle: start, push the load, stop."""
    from repro.service import JobServer, run_load

    server = JobServer(**server_kwargs)
    with tempfile.TemporaryDirectory() as tmp:

        async def _run():
            address = await server.start(
                unix_path=str(Path(tmp) / "bench.sock"))
            try:
                return await run_load(address, requests,
                                      n_clients=n_clients,
                                      depth=depth, timeout_s=600.0)
            finally:
                await server.stop()

        report = asyncio.run(_run())
    assert report.problems() == [], report.problems()
    return report


def _chaos_scenario(config, *, smoke: bool) -> dict[str, Any]:
    """Seeded faults, stalls, poison and a shedding queue: the payload
    is the quality mix, not the wall clock."""
    from repro.backends import FaultInjectingBackend, KernelBackend
    from repro.runtime.resilient import RetryPolicy
    from repro.service import build_load

    n = 24 if smoke else 96
    # Burst depth ~2x the aggregate queue capacity: sustained
    # overload with enough admitted work to exercise the ladder.
    depth = 12 if smoke else 8
    requests = build_load(2009, n, config=config, mix=("measure",),
                          slow_rate=0.2, slow_s=0.002,
                          poison_rate=0.1)
    report = _drive(
        {
            "backend": lambda: FaultInjectingBackend(
                KernelBackend(), monkey=2009, error_rate=0.3),
            "config": config,
            # No retries: every injected fault exercises the
            # degradation ladder instead of being absorbed.
            "retry_policy": RetryPolicy(retries=0, backoff_base=0.001),
            "queue_depth": 6,
            "queue_policy": "drop_oldest",
            "coalesce": 1,
        },
        requests, n_clients=2, depth=depth,  # burst forces shedding
    )
    by_quality = dict(report.by_quality)
    by_status = dict(report.by_status)
    return {
        "n_requests": n,
        "by_quality": by_quality,
        "by_status": by_status,
        "shed_fraction": by_quality.get("rejected", 0) / n,
        "degraded_fraction": by_quality.get("degraded", 0) / n,
        "error_fraction": by_status.get("error", 0) / n,
        "availability": report.availability,
        "throughput_rps": report.throughput_rps,
    }


def run(*, smoke: bool = False, repeats: int = 3,
        out: str | None = None) -> dict[str, Any]:
    """Gate exactly-once delivery, then time sustained req/s."""
    from repro.service import FleetConfig

    config = FleetConfig(n_dies=16, n_shards=2)
    n = 8 if smoke else 32
    levels_per = 8 if smoke else 16
    requests = _clean_requests(n, levels_per, config)

    last: dict[str, Any] = {}

    def _pass(backend: str):
        report = _drive({"backend": backend, "config": config},
                        requests)
        assert set(report.by_quality) == {"full"}, report.by_quality
        last[backend] = report

    kernel_timing = time_workload(lambda: _pass("kernel"),
                                  repeats=repeats, points=n)
    sim_timing = time_workload(lambda: _pass("sim"),
                               repeats=repeats, points=n)
    chaos = _chaos_scenario(config, smoke=smoke)

    kernel_report = last["kernel"]
    speedup = (kernel_timing["points_per_s"]
               / sim_timing["points_per_s"])
    payload: dict[str, Any] = {
        "bench": "service",
        "mode": "smoke" if smoke else "full",
        "load": {
            "n_requests": n,
            "levels_per_request": levels_per,
            "code": CODE,
            "n_clients": N_CLIENTS,
            "n_shards": config.n_shards,
        },
        "kernel": {
            **kernel_timing,
            "latency_p50_ms": kernel_report.latency_quantile(0.5) * 1e3,
            "latency_p99_ms": kernel_report.latency_quantile(0.99) * 1e3,
        },
        "sim": sim_timing,
        "chaos": chaos,
        "kernel_over_sim_speedup": speedup,
    }
    write_bench_json("BENCH_service", payload, out=out)

    rows = [
        ["kernel", f"{kernel_timing['best_s'] * 1e3:.2f}",
         f"{kernel_timing['points_per_s']:.3g}"],
        ["sim", f"{sim_timing['best_s'] * 1e3:.2f}",
         f"{sim_timing['points_per_s']:.3g}"],
    ]
    emit("service_perf", fmt_rows(
        ["backend", "best ms", "req/s"], rows,
    ))
    print(f"service kernel-over-sim speedup: {speedup:.1f}x; chaos "
          f"shed {chaos['shed_fraction']:.0%}, degraded "
          f"{chaos['degraded_fraction']:.0%}, availability "
          f"{chaos['availability']:.0%}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sensing-service throughput bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized load")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the kernel-backed server "
                             "beats the sim-backed one by X times")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_service.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_speedup is not None:
        speedup = payload["kernel_over_sim_speedup"]
        if speedup < args.assert_speedup:
            print(f"FAIL: kernel-backed server only {speedup:.2f}x "
                  f"over sim, floor {args.assert_speedup:g}x")
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_service_perf_bench(benchmark):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    assert payload["chaos"]["availability"] > 0.5
    assert payload["kernel"]["latency_p99_ms"] > 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
