"""A1 — tracking accuracy vs. the ideal analog sampler (ref [5]).

The thermometer is exercised as the paper intends ("measures should be
iterated so that noise values can be captured in different moments of
the CUT transient"): a realistic PDN droop waveform is sampled by
repeated PREPARE/SENSE measures, the decoded ranges are stitched into a
waveform estimate, and the result is scored against an idealized
on-chip analog sampler at several resolutions.

Shape expectation: the 7-level thermometer tracks the droop with an
error of roughly its LSB (~30 mV), sitting between a 4-bit and an 8-bit
analog sampler — magnitude information Razor/RO baselines cannot give.
"""

import numpy as np
import pytest

from benchmarks._report import emit, fmt_rows
from repro.analysis.reconstruct import WaveformReconstructor
from repro.analysis.statistics import quantization_step
from repro.baselines.analog_sampler import IdealAnalogSampler
from repro.core.array import SensorArray
from repro.psn.activity import ActivityProfile, ClockedActivityGenerator
from repro.psn.pdn import PDNModel, PDNParameters
from repro.units import NS


def build_droop_waveform():
    params = PDNParameters()
    gen = ClockedActivityGenerator(
        clock_period=2 * NS, peak_current=12.0,
        profile=ActivityProfile.STEP, step_cycle=20,
    )
    dt = 0.05 * NS
    t_end = 500 * NS
    current = gen.sample(t_end=t_end, dt=dt)
    return PDNModel(params).simulate(current, t_end=t_end, dt=dt)


def auto_ranged_decode(arr, v):
    """Measure with code 011; on saturation, re-range like the paper's
    'dynamically adapted' measure range: code 010 covers overvoltages,
    code 111 reaches the deepest droops."""
    word = arr.measure(3, vdd_n=v).word
    if word.ones == arr.n_bits:  # above code-011 range
        word = arr.measure(2, vdd_n=v).word
        return arr.decode(word, 2)
    if word.ones == 0:  # below code-011 range
        word = arr.measure(7, vdd_n=v).word
        return arr.decode(word, 7)
    return arr.decode(word, 3)


def run_tracking(design):
    rail = build_droop_waveform()
    arr = SensorArray(design)
    # 3.1 ns spacing: deliberately incommensurate with the ~9.7 ns PDN
    # resonance so the equivalent-time samples cover all phases.
    times = np.arange(10 * NS, 490 * NS, 3.1 * NS)
    rec = WaveformReconstructor()
    for t in times:
        v = rail(float(t))
        rec.add(float(t), auto_ranged_decode(arr, v))
    thermo_rmse = rec.rmse_against(rail)
    sampler_rmse = {
        bits: IdealAnalogSampler(resolution_bits=bits).rmse_against(
            rail, times
        )
        for bits in (4, 6, 8)
    }
    return rail, rec, thermo_rmse, sampler_rmse, times


def test_tracking_vs_analog_sampler(benchmark, design):
    rail, rec, thermo_rmse, sampler_rmse, times = benchmark.pedantic(
        lambda: run_tracking(design), rounds=1, iterations=1,
    )
    lsb = quantization_step(design.bit_thresholds_code011)
    lo, hi = rec.extremes()
    rows = [["thermometer (7 stages)", f"{thermo_rmse * 1e3:.1f}"]]
    for bits, rmse in sorted(sampler_rmse.items()):
        rows.append([f"ideal analog sampler ({bits} bit)",
                     f"{rmse * 1e3:.1f}"])
    emit("ablation_tracking", fmt_rows(
        ["sensor", "tracking RMSE [mV]"], rows,
    ) + f"\nthermometer LSB: {lsb * 1e3:.1f} mV; droop seen: "
        f"{lo:.3f}..{hi:.3f} V"
        "\nshape: digital thermometer within ~1 LSB of the rail, "
        "between the 4-bit and 8-bit analog references")
    assert thermo_rmse < 1.5 * lsb
    assert sampler_rmse[8] < thermo_rmse < sampler_rmse[4] * 4
    # The droop event is visible in the reconstruction.
    assert lo < 0.97


def test_tracking_captures_droop_depth(benchmark, design):
    """The reconstructed minimum brackets the true rail minimum."""
    rail, rec, *_ = benchmark.pedantic(
        lambda: run_tracking(design), rounds=1, iterations=1,
    )
    true_min = rail.min_over(0, 490 * NS)
    est_min, _ = rec.extremes()
    lsb = quantization_step(design.bit_thresholds_code011)
    assert est_min == pytest.approx(true_min, abs=2 * lsb)
