"""A12 — chaos campaign: the declarative drill under injected faults.

The resilience claim is end-to-end: a characterization sweep should
survive *worker kills* (OOM/segfault) and *vandalized cache entries*
(killed writer, disk hiccup) — and still produce results
bit-identical to a clean run.  Since the campaign subsystem landed,
the drill is no longer hand-staged: it is a ``campaign/v1`` spec
whose ``[chaos]`` block declares the fault schedule, and the
acceptance bar is :func:`~repro.campaign.diff_campaign` reporting
zero divergences against the clean run of the *same* spec:

1. a clean campaign run seeds the shared task cache and freezes the
   reference manifest + per-stage results;
2. the same spec reruns with ``chaos = {corrupt_cache = 2,
   kill_worker_tasks = 1}``: the runner vandalizes two warm cache
   entries, then SIGKILLs the pool worker of one recomputed task on
   its first attempt (``workers=2, retries=2``);
3. ``diff_campaign(chaos, clean)`` at ``float_tol=0`` must find
   nothing — chaos is excluded from the spec hash, so both runs
   share one cache/golden identity by construction;
4. separately, a stuck-at fault is injected into the event-driven
   array, caught by the production screen, and the word re-decoded
   in degraded mode with the suspect stages masked.

The acceptance bar: zero divergences (bit-identical), every
corrupted entry healed on disk, the crash recovered within the
retry budget, and the degraded decode still brackets the clean one.
"""

from __future__ import annotations

from dataclasses import dataclass

from benchmarks._report import emit, fmt_rows
from repro.campaign import (
    CAMPAIGN_SCHEMA,
    DiffReport,
    diff_campaign,
    run_campaign,
    spec_from_mapping,
)
from repro.core.array import SensorArray
from repro.core.degraded import DegradedArray
from repro.core.faults import FaultInjector, FaultType, screen_suspects
from repro.runtime import ResultCache


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of one chaos campaign drill.

    Attributes:
        n_tasks: Sweep size (one sim-threshold bisection per bit).
        corrupted: Cache entries vandalized before the chaos run.
        killed_tasks: Task indices whose first recompute attempt
            killed its worker.
        crashes: Worker crashes the chaos run absorbed.
        pool_rebuilds: Pool rebuilds those crashes forced.
        retries: Retries the chaos run spent.
        diff: The golden diff of the chaos run vs the clean run.
        healed: Every cache entry reads back cleanly afterwards.
        masked_bits: Stages the production screen implicated.
        clean_range: Decoded range of the healthy array at the probe
            level.
        degraded_range: Masked-decode range at the same level.
    """

    n_tasks: int
    corrupted: int
    killed_tasks: tuple[int, ...]
    crashes: int
    pool_rebuilds: int
    retries: int
    diff: DiffReport
    healed: bool
    masked_bits: tuple[int, ...]
    clean_range: tuple[float, float]
    degraded_range: tuple[float, float]


def _drill_spec(*, chaos: bool, code: int, tol: float,
                n_corrupt: int, seed: int):
    """The drill as a spec mapping (chaos rides in one extra block)."""
    raw = {
        "schema": CAMPAIGN_SCHEMA,
        "name": "chaos-campaign-drill",
        "description": "sim-threshold sweep under kills + vandalism",
        "seed": 2009,
        "backend": {"spec": "kernel"},
        "runtime": {"workers": 2, "retries": 2,
                    "failure_policy": "partial"},
        "stages": [{
            "id": "sweep",
            "kind": "threshold_sweep",
            "params": {"code": code, "tol": tol},
            "checks": [
                {"kind": "monotone", "field": "thresholds",
                 "strict": True},
                {"kind": "equals", "field": "n_failed", "value": 0},
            ],
        }],
    }
    if chaos:
        raw["chaos"] = {"seed": seed, "corrupt_cache": n_corrupt,
                        "kill_worker_tasks": 1}
    return spec_from_mapping(raw, source="<bench>")


def run_drill(design, work_dir, *, code: int = 3, tol: float = 5e-3,
              n_corrupt: int = 2, seed: int = 1337) -> CampaignReport:
    """Stage the full drill; see the module docstring for the plot."""
    work = work_dir
    clean_spec = _drill_spec(chaos=False, code=code, tol=tol,
                             n_corrupt=n_corrupt, seed=seed)
    chaos_spec = _drill_spec(chaos=True, code=code, tol=tol,
                             n_corrupt=n_corrupt, seed=seed)
    # Chaos is an execution condition, not an identity: both runs
    # must share one spec hash (and hence one cache/golden identity).
    assert clean_spec.spec_hash() == chaos_spec.spec_hash()

    cache_root = work / "cache"

    # 1. Clean run: reference manifest + warm task cache.
    clean = run_campaign(clean_spec, out_dir=work / "clean",
                         cache=cache_root)
    assert clean.ok, clean.outcome

    # 2-3. Chaos rerun on the same cache: the runner vandalizes
    # entries, the sweep re-executes (chaos bypasses stage-cache
    # reads) and one recomputed task kills its worker.
    chaos = run_campaign(chaos_spec, out_dir=work / "chaos",
                         cache=cache_root)
    sweep = chaos.record("sweep")

    diff = diff_campaign(work / "chaos", work / "clean", float_tol=0.0)

    # Healing: every entry in the shared cache — the vandalized ones
    # included — must read back as a clean hit now.
    probe = ResultCache(cache_root)
    healed = all(probe.get(p.stem)[0] for p in probe.entries()) \
        and probe.stats()["errors"] == 0

    # 4. Stuck-at stage -> screen -> masked decode.
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_FAIL, 2)
    masked = screen_suspects(injector, code=code)
    array = SensorArray(design)
    ladder = array.supply_thresholds(code)
    level = 0.5 * (ladder[2] + ladder[3])
    clean_rng = array.decode(array.measure(code, vdd_n=level).word,
                             code, strict=False)
    degraded = DegradedArray(design, masked).measure(code, vdd_n=level)

    return CampaignReport(
        n_tasks=sweep.volatile["tasks"],
        corrupted=n_corrupt,
        killed_tasks=tuple(sweep.volatile["killed_task_indices"]),
        crashes=sweep.volatile["crashes"],
        pool_rebuilds=sweep.volatile["pool_rebuilds"],
        retries=sweep.volatile["retries"],
        diff=diff,
        healed=healed,
        masked_bits=masked,
        clean_range=(clean_rng.lo, clean_rng.hi),
        degraded_range=(degraded.decoded.lo, degraded.decoded.hi),
    )


def test_chaos_campaign(design, tmp_path):
    rep = run_drill(design, tmp_path)
    rows = [
        ["tasks", str(rep.n_tasks)],
        ["cache entries corrupted", str(rep.corrupted)],
        ["worker killed on task", str(list(rep.killed_tasks))],
        ["crashes / pool rebuilds",
         f"{rep.crashes} / {rep.pool_rebuilds}"],
        ["retries spent", str(rep.retries)],
        ["golden-diff divergences", str(len(rep.diff.divergences))],
        ["stages payload-compared", str(rep.diff.compared_stages)],
        ["corrupted entries healed", str(rep.healed)],
        ["stages masked by screen", str(rep.masked_bits)],
    ]
    emit("chaos_campaign", fmt_rows(["drill", "outcome"], rows) + (
        f"\nclean decode    ({rep.clean_range[0]:.4f}, "
        f"{rep.clean_range[1]:.4f}] V"
        f"\ndegraded decode ({rep.degraded_range[0]:.4f}, "
        f"{rep.degraded_range[1]:.4f}] V"
        "\nshape: one campaign/v1 spec, run twice (clean, then with "
        "a [chaos] block); diff_campaign proves bit-identity"
    ))
    # The headline: the chaos run diverges from the clean run in
    # exactly nothing, at float_tol=0 (bit-identical payloads).
    assert rep.diff.ok, [str(d) for d in rep.diff.divergences]
    assert rep.diff.compared_stages == ["sweep"]
    assert rep.healed
    assert rep.crashes >= 1 and rep.pool_rebuilds >= 1
    assert rep.killed_tasks, "chaos never got to kill a worker"
    assert 2 in rep.masked_bits
    # The degraded range must still contain the clean one (correct,
    # merely wider where masked rungs used to split it).
    assert rep.degraded_range[0] <= rep.clean_range[0]
    assert rep.degraded_range[1] >= rep.clean_range[1]
