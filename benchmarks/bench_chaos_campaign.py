"""A12 — chaos campaign: the sweep runtime under injected faults.

The resilience claim is end-to-end: a characterization sweep should
survive *worker kills* (OOM/segfault), *vandalized cache entries*
(killed writer, disk hiccup) and a *stuck-at sensor stage* — and
still produce results bit-identical to a clean serial run on every
surviving bit.  This bench stages exactly that drill, seeded and
reproducible:

1. a serial, cached sim-threshold sweep seeds the on-disk cache and
   fixes the clean reference values;
2. :class:`~repro.runtime.chaos.ChaosMonkey` corrupts a subset of the
   cache entries (truncate / garble / zero);
3. the sweep reruns with ``workers=2, retries=2,
   failure_policy="partial"`` while a
   :class:`~repro.runtime.chaos.KillOnceTask` SIGKILLs the worker of
   one recomputed task on its first attempt;
4. separately, a stuck-at fault is injected into the event-driven
   array, caught by the production screen, and the word is re-decoded
   in degraded mode with the suspect stages masked.

The acceptance bar: chaos results == clean results (bit-identical),
every corrupted entry healed on disk, the crash recovered within the
retry budget, and the degraded decode still brackets the clean one.
"""

from __future__ import annotations

from dataclasses import dataclass

from benchmarks._report import emit, fmt_rows
from repro.core.array import SensorArray
from repro.core.characterization import _sim_bracket, _sim_threshold_task
from repro.core.degraded import DegradedArray
from repro.core.faults import FaultInjector, FaultType, screen_suspects
from repro.core.sensor import SenseRail
from repro.runtime import (
    ChaosMonkey,
    KillOnceTask,
    ResultCache,
    RunStats,
    design_fingerprint,
    resilient_cached_map,
    task_key,
)
from repro.runtime.chaos import enumerate_for


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of one chaos campaign.

    Attributes:
        n_tasks: Sweep size (one sim-threshold bisection per bit).
        corrupted: Cache entries vandalized before the chaos run.
        kill_index: Task whose first recompute attempt killed its
            worker.
        stats: Runtime counters of the chaos run.
        identical: Chaos results == clean serial results, bitwise.
        healed: Every corrupted entry reads back cleanly afterwards.
        masked_bits: Stages the production screen implicated.
        clean_range: Decoded range of the healthy array at the probe
            level.
        degraded_range: Masked-decode range at the same level.
    """

    n_tasks: int
    corrupted: int
    kill_index: int
    stats: RunStats
    identical: bool
    healed: bool
    masked_bits: tuple[int, ...]
    clean_range: tuple[float, float]
    degraded_range: tuple[float, float]


def _threshold_specs(design, code: int, tol: float) -> list[tuple]:
    """The (design, bit, code, rail, tech, v_lo, v_hi, tol) payloads a
    sim-method sweep dispatches (mirrors ``_solve_sim_thresholds``)."""
    specs = []
    for b in range(1, design.n_bits + 1):
        est = design.bit_threshold(b, code)
        v_lo, v_hi = _sim_bracket(est, SenseRail.VDD, 0.15)
        specs.append((design, b, code, SenseRail.VDD, None,
                      v_lo, v_hi, tol))
    return specs


def run_campaign(design, work_dir, *, code: int = 3,
                 tol: float = 5e-3, n_corrupt: int = 2,
                 seed: int = 1337) -> CampaignReport:
    """Stage the full drill; see the module docstring for the plot."""
    work_dir = str(work_dir)
    specs = _threshold_specs(design, code, tol)
    fp = design_fingerprint(design)
    keys = [task_key("chaos-threshold", fp, b, code, tol)
            for b in range(1, design.n_bits + 1)]

    # 1. Clean serial seed run: reference values + warm cache.
    cache = ResultCache(f"{work_dir}/cache")
    clean = resilient_cached_map(
        _sim_threshold_task, specs, keys=keys, cache=cache,
    ).results

    # 2. Vandalize entries; map the victim files back to task indices
    #    so the worker kill targets a task that will actually recompute
    #    (cache hits never reach the pool).
    monkey = ChaosMonkey(seed)
    victims = monkey.corrupt_cache(cache, n_entries=n_corrupt)
    by_path = {str(cache._path(k)): i for i, k in enumerate(keys)}
    miss_indices = sorted(by_path[str(p)] for p in victims)
    kill_index = miss_indices[0]

    # 3. Chaos rerun: two workers, one kill, bounded retries.
    killer = KillOnceTask(fn=_sim_threshold_task,
                          kill_indices=frozenset({kill_index}),
                          marker_dir=work_dir)
    chaos_cache = ResultCache(cache.root)
    outcome = resilient_cached_map(
        killer, enumerate_for(specs), keys=keys, cache=chaos_cache,
        workers=2, retries=2, failure_policy="partial",
    )
    identical = outcome.results == clean and not outcome.failures

    # Healing: every victim entry must read back as a clean hit now.
    probe = ResultCache(cache.root)
    healed = all(probe.get(keys[i]) == (True, clean[i])
                 for i in miss_indices)

    # 4. Stuck-at stage -> screen -> masked decode.
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_FAIL, 2)
    masked = screen_suspects(injector, code=code)
    array = SensorArray(design)
    ladder = array.supply_thresholds(code)
    level = 0.5 * (ladder[2] + ladder[3])
    clean_rng = array.decode(array.measure(code, vdd_n=level).word,
                             code, strict=False)
    degraded = DegradedArray(design, masked).measure(code, vdd_n=level)

    return CampaignReport(
        n_tasks=len(specs),
        corrupted=len(victims),
        kill_index=kill_index,
        stats=outcome.stats,
        identical=identical,
        healed=healed,
        masked_bits=masked,
        clean_range=(clean_rng.lo, clean_rng.hi),
        degraded_range=(degraded.decoded.lo, degraded.decoded.hi),
    )


def test_chaos_campaign(design, tmp_path):
    rep = run_campaign(design, tmp_path)
    s = rep.stats
    rows = [
        ["tasks", str(rep.n_tasks)],
        ["cache entries corrupted", str(rep.corrupted)],
        ["worker killed on task", str(rep.kill_index)],
        ["crashes / pool rebuilds", f"{s.crashes} / {s.pool_rebuilds}"],
        ["retries spent", str(s.retries)],
        ["cache hits / misses", f"{s.cache_hits} / {s.cache_misses}"],
        ["bit-identical to clean run", str(rep.identical)],
        ["corrupted entries healed", str(rep.healed)],
        ["stages masked by screen", str(rep.masked_bits)],
    ]
    emit("chaos_campaign", fmt_rows(["drill", "outcome"], rows) + (
        f"\nclean decode    ({rep.clean_range[0]:.4f}, "
        f"{rep.clean_range[1]:.4f}] V"
        f"\ndegraded decode ({rep.degraded_range[0]:.4f}, "
        f"{rep.degraded_range[1]:.4f}] V"
        "\nshape: kills + corrupt cache + stuck stage; the sweep "
        "completes, heals, and stays bit-identical on surviving bits"
    ))
    assert rep.identical
    assert rep.healed
    assert s.crashes >= 1 and s.pool_rebuilds >= 1
    assert 2 in rep.masked_bits
    # The degraded range must still contain the clean one (correct,
    # merely wider where masked rungs used to split it).
    assert rep.degraded_range[0] <= rep.clean_range[0]
    assert rep.degraded_range[1] >= rep.clean_range[1]
