"""E3 — Fig. 4: sensor-sensitivity characterization.

Paper: "the VDD-n value below which the FF fails as a function of the
capacitance C.  For example, if C=2pF ... the VDD-n value below which
the FF fails is 0.9360V.  Note that the characteristic has a linear
behavior within the VDD-n range of interest (0.9V - 1.1V)."
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.characterization import (
    linearity_report,
    threshold_vs_capacitance,
)
from repro.runtime import env_workers
from repro.units import PF, to_pf

SIM_CAPS = (1.85 * PF, 2.0 * PF, 2.15 * PF)


def run_fig4(design):
    caps = [(1.75 + 0.05 * i) * PF for i in range(11)]
    return threshold_vs_capacitance(design, caps)


def run_fig4_sim(design, *, workers=None, cache=None):
    """The bisection-backed crosscheck sweep (the slow part of this
    bench): parallel/cached via repro.runtime, ``$REPRO_WORKERS``
    honored when ``workers`` is not given."""
    return threshold_vs_capacitance(
        design, SIM_CAPS, method="sim", tol=0.25e-3,
        workers=env_workers(workers) if workers is None else workers,
        cache=cache,
    )


def test_fig4_threshold_vs_capacitance(benchmark, design):
    points = benchmark.pedantic(lambda: run_fig4(design),
                                rounds=1, iterations=1)
    rows = [[f"{to_pf(c):.2f}", f"{v:.4f}"] for c, v in points]
    in_band = [(c, v) for c, v in points if 0.9 <= v <= 1.1]
    rep = linearity_report(in_band)
    anchor = threshold_vs_capacitance(design, [2 * PF])[0][1]
    emit("fig4_threshold_vs_cap", fmt_rows(
        ["C [pF]", "VDD-n threshold [V]"], rows,
    ) + f"\nanchor: C=2pF -> {anchor:.4f} V (paper: 0.9360 V)"
        f"\nlinearity in 0.9-1.1 V: R^2={rep['r_squared']:.5f}, "
        f"max residual={rep['max_residual'] * 1e3:.2f} mV "
        f"(paper: 'linear behavior within the range of interest')")
    assert anchor == pytest.approx(0.9360, abs=5e-4)
    assert rep["r_squared"] > 0.995
    vals = [v for _, v in points]
    assert all(b > a for a, b in zip(vals, vals[1:]))


def test_fig4_sim_crosscheck(benchmark, design):
    """Event-simulated bisection at three caps must land on the
    analytic curve (the ELDO-equivalence check)."""
    sim_pts = benchmark.pedantic(lambda: run_fig4_sim(design),
                                 rounds=1, iterations=1)
    ana_pts = threshold_vs_capacitance(design, list(SIM_CAPS))
    rows = [
        [f"{to_pf(c):.2f}", f"{vs:.4f}", f"{va:.4f}",
         f"{(vs - va) * 1e3:+.2f}"]
        for (c, vs), (_, va) in zip(sim_pts, ana_pts)
    ]
    emit("fig4_sim_crosscheck", fmt_rows(
        ["C [pF]", "sim threshold [V]", "analytic [V]", "diff [mV]"],
        rows,
    ))
    for (_, vs), (_, va) in zip(sim_pts, ana_pts):
        assert vs == pytest.approx(va, abs=1e-3)
