"""A5 — load-capacitance spacing ablation.

The paper states the array capacitances "increase linearly so that each
FF has a different threshold".  The anchor-fitted caps are close to but
not exactly linear; this ablation compares three ladders over the same
span — anchor-fitted, exactly linear, geometric — on threshold
uniformity and decode error.

Shape expectation: linear caps give near-uniform threshold steps (the
paper's design intent); geometric spacing skews the steps and degrades
worst-case decode error at one end of the range.
"""

import numpy as np

from benchmarks._report import emit, fmt_rows
from repro.analysis.converter_metrics import linearity
from repro.analysis.statistics import tracking_rmse
from repro.core.array import SensorArray


def ladders(design):
    lo, hi = design.load_caps[0], design.load_caps[-1]
    n = design.n_bits
    linear = tuple(lo + (hi - lo) * i / (n - 1) for i in range(n))
    geometric = tuple(lo * (hi / lo) ** (i / (n - 1)) for i in range(n))
    return {
        "anchor-fitted": design.load_caps,
        "linear": linear,
        "geometric": geometric,
    }


def run_spacing(design):
    sweep = np.arange(0.84, 1.05, 0.005)
    out = []
    for name, caps in ladders(design).items():
        d = design.with_load_caps(caps)
        arr = SensorArray(d)
        ts = arr.supply_thresholds(3)
        lin = linearity(ts)
        ranges, truths = [], []
        for v in sweep:
            rng = arr.decode(arr.measure(3, vdd_n=float(v)).word, 3)
            if rng.bounded:
                ranges.append(rng)
                truths.append(float(v))
        out.append((
            name, ts[0], ts[-1],
            lin.max_dnl, lin.max_inl,
            tracking_rmse(ranges, truths),
        ))
    return out


def test_cap_spacing_ablation(benchmark, design):
    results = benchmark.pedantic(lambda: run_spacing(design),
                                 rounds=1, iterations=1)
    rows = [
        [name, f"{lo:.3f}", f"{hi:.3f}", f"{dnl:.3f}",
         f"{inl:.3f}", f"{rmse * 1e3:.1f}"]
        for name, lo, hi, dnl, inl, rmse in results
    ]
    emit("ablation_cap_spacing", fmt_rows(
        ["ladder", "lo [V]", "hi [V]", "max |DNL| [LSB]",
         "max |INL| [LSB]", "decode RMSE [mV]"],
        rows,
    ) + "\nshape: fitted ~= linear (the paper's claim); all ladders "
        "share the range endpoints; flash-ADC linearity metrics "
        "(DNL/INL) grade the rung uniformity")
    fitted, linear, geometric = results
    # Fitted and linear ladders are close in every metric.
    assert abs(fitted[5] - linear[5]) < 5e-3
    # All ladders share the endpoints (same first/last cap).
    for r in results:
        assert r[1] == fitted[1] and r[2] == fitted[2]
    # Linear caps give the most uniform rungs.
    assert linear[3] <= fitted[3] + 1e-9
    assert linear[3] <= geometric[3] + 1e-9
