"""Campaign-scheduler perf regression: the tracked BENCH_campaign.json.

Two DAG shapes through :func:`~repro.campaign.run_campaign`, gated on
bit-identity *before* any timing claim:

* ``wide_dag`` — eight mutually independent ``synthetic`` stages (each
  emulating an instrument dwell, the latency shape real corner/cap/
  yield stages have: pool dispatch, subprocess waits, measurement
  settling) plus one join stage needing all eight.  Serial pays the
  dwells end to end; the ready-set scheduler overlaps them across its
  stage-worker pool, so the expected speedup on 4 workers is ~wave
  count: ``8 dwells / ceil(8/4) waves`` ≈ 3-4x.  Gate:
  :func:`~repro.campaign.diff_campaign` between the serial and
  parallel trees at ``float_tol=0`` reports zero divergences.
* ``chain_dag`` — six stages in a straight dependency chain: zero
  exploitable parallelism, so ``parallel - serial`` wall-clock is the
  scheduler's pure bookkeeping overhead (thread-pool spin-up, ready-set
  scans, future wakeups).  Same bit-identity gate.

Dwell-based synthetic stages keep the bench honest on small CI boxes:
the claim under test is *latency overlap by the scheduler*, not CPU
parallelism, so the numbers hold on a single-core runner.

Every timed call runs cold — fresh out dir and cache root per
invocation — so resume hits can never flatter either side.

Run standalone (``python -m benchmarks.bench_campaign`` or ``repro
bench campaign``) with ``--smoke`` for CI-sized dwells and
``--assert-speedup N`` to enforce a wide-DAG floor; the JSON lands in
``benchmarks/reports/BENCH_campaign.json`` and, with ``--out``, at a
tracked repo-root copy.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
from pathlib import Path
from typing import Any

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows
from repro.campaign import (
    CAMPAIGN_SCHEMA,
    diff_campaign,
    run_campaign,
    spec_from_mapping,
)

#: Stage-worker pool width the parallel legs run with (the acceptance
#: criterion's "4 workers").
STAGE_WORKERS = 4


def _wide_spec(n_stages: int, dwell_ms: float, join_dwell_ms: float):
    """``n_stages`` independent dwell stages + one join needing all."""
    stages: list[dict[str, Any]] = [
        {
            "id": f"corner{i}",
            "kind": "synthetic",
            "params": {"value": 1.0 + 0.25 * i, "dwell_ms": dwell_ms},
            "checks": [
                {"kind": "equals", "field": "stage",
                 "value": f"corner{i}"},
                {"kind": "bounds", "field": "scaled", "min": 0.0},
            ],
        }
        for i in range(n_stages)
    ]
    stages.append({
        "id": "join",
        "kind": "synthetic",
        "needs": [s["id"] for s in stages],
        "params": {"value": 99.0, "dwell_ms": join_dwell_ms},
        "checks": [{"kind": "equals", "field": "value",
                    "value": 99.0}],
    })
    return spec_from_mapping({
        "schema": CAMPAIGN_SCHEMA,
        "name": "bench-wide-dag",
        "description": f"{n_stages} independent dwell stages + join",
        "seed": 2009,
        "backend": {"spec": "kernel"},
        "runtime": {"stage_workers": STAGE_WORKERS},
        "stages": stages,
    }, source="<bench>")


def _chain_spec(n_stages: int, dwell_ms: float):
    """A straight chain: no parallelism for the scheduler to find."""
    stages = [
        {
            "id": f"link{i}",
            "kind": "synthetic",
            "needs": [f"link{i - 1}"] if i else [],
            "params": {"value": float(i), "dwell_ms": dwell_ms},
        }
        for i in range(n_stages)
    ]
    return spec_from_mapping({
        "schema": CAMPAIGN_SCHEMA,
        "name": "bench-chain-dag",
        "description": f"{n_stages}-stage chain (overhead probe)",
        "seed": 2009,
        "backend": {"spec": "kernel"},
        "runtime": {"stage_workers": STAGE_WORKERS},
        "stages": stages,
    }, source="<bench>")


def _run_cold(spec, execution: str, out_dir: Path | None = None) -> None:
    """One cold campaign run: fresh out dir + cache, no resume hits.

    ``out_dir`` given: keep the tree (for the bit-identity gate);
    omitted: run in scratch and delete it (the timed form).
    """
    scratch = None
    if out_dir is None:
        scratch = Path(tempfile.mkdtemp(prefix="bench-campaign-"))
        out_dir = scratch / "out"
    try:
        run = run_campaign(spec, out_dir=out_dir,
                           execution=execution)
        assert run.ok, f"{spec.name} {execution}: {run.outcome}"
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _parity_gate(spec, work: Path) -> int:
    """Serial vs parallel at float_tol=0; returns stages compared."""
    _run_cold(spec, "serial", work / "serial")
    _run_cold(spec, "threads", work / "threads")
    report = diff_campaign(work / "threads", work / "serial",
                           float_tol=0.0)
    assert report.ok, [str(d) for d in report.divergences]
    return len(report.compared_stages)


def run(*, smoke: bool = False, repeats: int = 2,
        out: str | None = None) -> dict[str, Any]:
    """Gate bit-identity, then time serial vs parallel; persist."""
    n_wide = 8
    n_chain = 6
    dwell_ms = 150.0 if smoke else 400.0
    join_ms = 30.0 if smoke else 60.0
    chain_ms = 25.0 if smoke else 50.0

    wide = _wide_spec(n_wide, dwell_ms, join_ms)
    chain = _chain_spec(n_chain, chain_ms)

    gate_dir = Path(tempfile.mkdtemp(prefix="bench-campaign-gate-"))
    try:
        wide_compared = _parity_gate(wide, gate_dir / "wide")
        chain_compared = _parity_gate(chain, gate_dir / "chain")
    finally:
        shutil.rmtree(gate_dir, ignore_errors=True)

    workloads: dict[str, Any] = {
        "wide_dag": {
            "serial": time_workload(
                lambda: _run_cold(wide, "serial"),
                repeats=repeats, warmup=0,
            ),
            "parallel": time_workload(
                lambda: _run_cold(wide, "threads"),
                repeats=repeats, warmup=0,
            ),
            "grid": {"independent_stages": n_wide, "join_stages": 1,
                     "dwell_ms": dwell_ms,
                     "stage_workers": STAGE_WORKERS},
            "stages_compared": wide_compared,
        },
        "chain_dag": {
            "serial": time_workload(
                lambda: _run_cold(chain, "serial"),
                repeats=repeats, warmup=0,
            ),
            "parallel": time_workload(
                lambda: _run_cold(chain, "threads"),
                repeats=repeats, warmup=0,
            ),
            "grid": {"chain_stages": n_chain, "dwell_ms": chain_ms,
                     "stage_workers": STAGE_WORKERS},
            "stages_compared": chain_compared,
        },
    }
    for w in workloads.values():
        w["speedup"] = w["serial"]["best_s"] / w["parallel"]["best_s"]
    workloads["chain_dag"]["scheduler_overhead_s"] = (
        workloads["chain_dag"]["parallel"]["best_s"]
        - workloads["chain_dag"]["serial"]["best_s"]
    )

    payload: dict[str, Any] = {
        "bench": "campaign",
        "mode": "smoke" if smoke else "full",
        "stage_workers": STAGE_WORKERS,
        "workloads": workloads,
        "parity": {
            "float_tol": 0.0,
            "wide_stages_compared": wide_compared,
            "chain_stages_compared": chain_compared,
            "divergences": 0,
        },
    }
    write_bench_json("BENCH_campaign", payload, out=out)

    rows = [
        [name,
         f"{w['serial']['best_s'] * 1e3:.0f}",
         f"{w['parallel']['best_s'] * 1e3:.0f}",
         f"{w['speedup']:.2f}x"]
        for name, w in workloads.items()
    ]
    emit("campaign_perf", fmt_rows(
        ["workload", "serial ms", "parallel ms", "speedup"], rows,
    ) + (
        f"\nchain overhead: "
        f"{workloads['chain_dag']['scheduler_overhead_s'] * 1e3:+.0f}ms "
        f"(parallel minus serial on a no-parallelism DAG)"
        "\ngate: serial-vs-parallel diff_campaign at float_tol=0, "
        "zero divergences"
    ))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="campaign scheduler: serial vs parallel DAG wall-clock"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized dwells (fast)")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the wide DAG beats X times "
                             "the serial runner")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_campaign.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_speedup is not None:
        speedup = payload["workloads"]["wide_dag"]["speedup"]
        if speedup < args.assert_speedup:
            print(f"FAIL: wide-DAG speedup {speedup:.2f}x below the "
                  f"{args.assert_speedup}x floor")
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_campaign_bench(benchmark):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    assert payload["workloads"]["wide_dag"]["speedup"] > 1.5
    assert payload["parity"]["divergences"] == 0


if __name__ == "__main__":
    raise SystemExit(main())
