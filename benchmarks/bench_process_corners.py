"""E10 — §III-A: process-variation-aware delay-code retrimming.

Paper: "a variation of P and CP, conveniently trimmed, allows ... to
compensate the different sensor behavior in presence of process
variations".

Two scenarios are benched:

* **PG tracks corner** (everything on-die): the drive shift cancels;
  only the Vth shift moves the characteristic — sub-code, no retrim
  needed;
* **external timing reference**: the full corner shift lands on the
  sensor inverter and the policy moves whole codes to restore the
  reference range.

Direction note: the paper asserts "in slow conditions ... the VDD-n
threshold value is lower"; under this reproduction's symmetric model a
slow corner with an external reference shifts thresholds *up* (slower
inverter, same deadline).  The compensation mechanism is identical in
either direction; the bench reports the measured shifts.
"""

from benchmarks._report import emit, fmt_rows
from repro.core.trimming import retrim_for_corner
from repro.devices.corners import CORNERS
from repro.runtime import env_workers, map_tasks


def _retrim_task(spec):
    """Picklable adapter: retrim one (corner, reference mode) pair."""
    design, corner, pg_tracks = spec
    return retrim_for_corner(design, corner, pg_tracks_corner=pg_tracks)


def run_corners(design, pg_tracks, *, workers=None):
    """Per-corner retrims, fanned across the corner set.

    Corners are independent characterize-and-pick problems, so this is
    the bench-level analogue of the yield study's per-die fan-out;
    ``$REPRO_WORKERS`` sets the default pool size.
    """
    names = [name for name in CORNERS if name != "TT"]
    results = map_tasks(
        _retrim_task,
        [(design, CORNERS[name], pg_tracks) for name in names],
        workers=env_workers(workers) if workers is None else workers,
    )
    return dict(zip(names, results))


def test_corner_retrimming(benchmark, design):
    tracked = run_corners(design, True)
    external = benchmark.pedantic(
        lambda: run_corners(design, False), rounds=1, iterations=1,
    )
    rows = []
    for name in ("SS", "FF", "SF", "FS"):
        t, e = tracked[name], external[name]
        rows.append([
            name,
            f"{t.untrimmed_residual * 1e3:.1f}",
            format(t.chosen_code, "03b"),
            f"{e.untrimmed_residual * 1e3:.1f}",
            format(e.chosen_code, "03b"),
            f"{e.residual * 1e3:.1f}",
        ])
    emit("process_corners", fmt_rows(
        ["corner", "tracked shift [mV]", "tracked code",
         "external shift [mV]", "retrimmed code", "residual [mV]"],
        rows,
    ) + "\nreference: code 011 range 0.827-1.053 V at TT"
        "\nshape: retrimming recovers the reference characteristic; "
        "with an on-die PG the corners nearly self-compensate")
    # External-reference corners actually need (and get) new codes.
    assert external["SS"].chosen_code != 3
    assert external["FF"].chosen_code != 3
    for name in ("SS", "FF", "SF", "FS"):
        assert external[name].residual < external[name].untrimmed_residual
    # Tracked corners stay within one code of the reference.
    for name in ("SS", "FF"):
        assert abs(tracked[name].chosen_code - 3) <= 1
