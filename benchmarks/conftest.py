"""Bench fixtures: the calibrated paper design, shared session-wide."""

from __future__ import annotations

import pytest

from repro.core.calibration import fit_paper_design


@pytest.fixture(scope="session")
def design():
    return fit_paper_design()
