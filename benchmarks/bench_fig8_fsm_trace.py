"""E8 — Fig. 8: CNTR FSM flow conformance.

The bench drives the behavioural FSM through a two-measure burst and
prints the per-cycle state/P/CP trace — the flow of the paper's Fig. 8
(IDLE -> READY -> S_PRP0 -> S_PRP -> [S_SNS0] -> S_SNS -> loop), plus a
state-coverage summary.
"""

from benchmarks._report import emit, fmt_rows
from repro.core.control import ControlFSM, ControlState


def run_trace():
    fsm = ControlFSM()
    fsm.tick()  # IDLE -> READY
    fsm.request_measures(2)
    outs = []
    for _ in range(9):
        outs.append(fsm.tick())
    return outs


def test_fig8_fsm_trace(benchmark):
    outs = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    rows = [
        [k, o.state.name, o.p, o.cp,
         "PREPARE" if o.prepare_sample else
         ("SENSE" if o.sense_sample else "")]
        for k, o in enumerate(outs, start=1)
    ]
    visited = {o.state for o in outs} | {ControlState.READY}
    emit("fig8_fsm_trace", fmt_rows(
        ["cycle", "state", "P", "CP", "sample"], rows,
    ) + f"\nstates visited: {sorted(s.name for s in visited)}"
        "\npaper: PREPARE (S_PRP0 neg CP edge, S_PRP pos edge P=1) then "
        "SENSE (neg edge, then P=0 with pos edge), iterated per measure")
    # Every operational state of Fig. 8 is exercised.
    assert visited >= {
        ControlState.READY, ControlState.S_PRP0, ControlState.S_PRP,
        ControlState.S_SNS0, ControlState.S_SNS,
    }
    # Two sense samples for two requested measures.
    assert sum(o.sense_sample for o in outs) == 2
