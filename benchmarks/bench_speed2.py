"""Raw-speed tier 2 perf regression: the tracked BENCH_speed2.json.

Three workloads, each comparing the tier-1 kernel path against the
tier-2 fast path (fused solve+decode kernels and the zero-copy
shared-memory pool broadcast), each gated on agreement *before* any
timing claim:

* ``yield_fused`` — the yield-study lot reduction.  Tier 1: the
  per-die :func:`~repro.analysis.yield_study._score_from_thresholds`
  loop (one word/diff/decode pass per die).  Tier 2: one
  :func:`~repro.kernels.score_lot_grids` call across the whole lot.
  Gate: every :class:`~repro.analysis.yield_study._DieScore` field is
  *exactly* equal.
* ``mc_fused`` — Monte-Carlo trip counting over a fixed draw cube.
  Tier 1: the per-draw delay-law margin evaluation (the
  :func:`~repro.kernels.s_curve_trip_probability` core — one
  ``voltage_factor_grid`` power per draw).  Tier 2: solve the per-bit
  thresholds once and count by compare
  (:func:`~repro.kernels.trip_counts_from_thresholds`; the solve is
  *inside* the timed region).  Gates: counts exactly equal — both over
  the cube and through the full fused-vs-unfused s-curve kernels with
  their seeded draws — plus a minimum draw-to-root distance (in ulps)
  so the compare-form equivalence cannot be decided by float rounding.
* ``pool_broadcast`` — a guardband sweep over one large draw cube
  through the process pool.  Tier 1: every task payload pickles the
  cube (the pre-shm transport).  Tier 2: the cube rides shared memory
  via ``map_tasks(..., shared=...)``; payloads carry only the
  per-task guardband delta.  Gates: pickled, shm-pool and shm-serial
  results all bit-identical.

A ``float32`` section measures the opt-in reduced-precision path
against the float64 oracle: max threshold error (asserted within
:data:`~repro.kernels.dtype.FLOAT32_THRESHOLD_BOUND_V`) and the
decoded-word agreement wherever the supply margin exceeds that bound.
``--dtype float32`` additionally times the fused workloads in float32.

Run standalone (``python -m benchmarks.bench_speed2`` or ``repro bench
speed2``) with ``--smoke`` for CI-sized grids and ``--assert-speedup
N`` to enforce a floor; the JSON lands in
``benchmarks/reports/BENCH_speed2.json`` and, with ``--out``, at a
tracked path (the repo commits ``BENCH_speed2.json`` at the root).
"""

from __future__ import annotations

import argparse
import math
from typing import Any

import numpy as np

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows

CODES = tuple(range(8))

#: Guardband deltas swept by the pool_broadcast workload, volts.  Every
#: task re-evaluates the whole cube at thresholds + delta, so each one
#: needs the full broadcast arrays.
GUARDBANDS_V = tuple(d * 1e-3 for d in
                     (-6, -5, -4, -3, -2, -1, 1, 2, 3, 4, 5, 6))


# -- yield_fused ----------------------------------------------------------


def _yield_tier1(grid, supplies, ladder):
    from repro.analysis.yield_study import _score_from_thresholds

    return [_score_from_thresholds(grid[i], supplies, ladder)
            for i in range(grid.shape[0])]


def _yield_tier2(grid, supplies, ladder):
    from repro.analysis.yield_study import _scores_from_lot_grid

    return _scores_from_lot_grid(grid, supplies, ladder)


def _check_yield(grid, supplies, ladder) -> None:
    """Every _DieScore field must be exactly equal, tier 1 vs tier 2."""
    tier1 = _yield_tier1(grid, supplies, ladder)
    tier2 = _yield_tier2(grid, supplies, ladder)
    assert len(tier1) == len(tier2)
    for a, b in zip(tier1, tier2):
        assert a == b, f"die score diverged: {a} != {b}"


# -- mc_fused -------------------------------------------------------------


def _mc_kwargs(design, seeds, *, n_per_level):
    return dict(code=3, noise_rms=0.01, n_per_level=n_per_level,
                seeds=seeds, n_levels=15)


def _mc_tier1(design, cube, code):
    """Tier-1 counting: per-draw delay-law margin evaluation (the
    ``s_curve_trip_probability`` core on a fixed cube)."""
    from repro.kernels.delay_law import voltage_factor_grid
    from repro.kernels.montecarlo import _bits_array, _delay_law_terms

    idx = _bits_array(design, None)
    window = design.effective_window(code, None)
    c_total, k_eff, vth, alpha = _delay_law_terms(design, idx, None)
    g = voltage_factor_grid(cube, vth, alpha)
    scale = k_eff * c_total
    with np.errstate(invalid="ignore"):
        margins = window - scale[:, None, None] * g
    return np.count_nonzero(margins > 0.0, axis=-1)


def _mc_tier2(design, cube, code):
    """Tier-2 counting: solve the roots once, then one compare per
    draw (the solve is deliberately inside the timed region)."""
    from repro.kernels import threshold_grid, trip_counts_from_thresholds

    thresholds = threshold_grid(design, (code,))[:, 0]
    return trip_counts_from_thresholds(cube, thresholds)


def _check_mc(design, seeds, cube, code, *, n_per_level) -> float:
    """Exact count parity; returns the min draw-to-root ulps."""
    from repro.kernels import (
        s_curve_trip_probability,
        s_curve_trip_probability_fused,
        threshold_grid,
    )

    assert np.array_equal(_mc_tier1(design, cube, code),
                          _mc_tier2(design, cube, code)), \
        "margin-form and compare-form counts diverged on the cube"
    kw = _mc_kwargs(design, seeds, n_per_level=n_per_level)
    lv1, p1 = s_curve_trip_probability(design, **kw)
    lv2, p2 = s_curve_trip_probability_fused(design, **kw)
    assert np.array_equal(lv1, lv2), "level grids diverged"
    assert np.array_equal(p1, p2), (
        f"trip probabilities diverged: max |dp| = "
        f"{np.max(np.abs(p1 - p2)):.3e}"
    )
    # The compare form flips only for draws within float rounding of
    # the solved root: check the closest draw in the cube sits
    # comfortably many ulps away from its bit's threshold.
    thresholds = threshold_grid(design, (code,))[:, 0]
    min_ulps = math.inf
    for i, t in enumerate(thresholds):
        gap = np.min(np.abs(cube[i] - t))
        min_ulps = min(min_ulps, gap / np.spacing(t))
    assert min_ulps > 4, f"a draw sits {min_ulps:.1f} ulps from a root"
    return float(min_ulps)


# -- pool_broadcast (module-level tasks: must pickle) ---------------------


def _sweep_task_pickled(payload):
    """Tier-1 transport: the payload carries the whole cube."""
    from repro.kernels import trip_counts_from_thresholds

    cube, thresholds, delta = payload
    return trip_counts_from_thresholds(cube, thresholds + delta)


def _sweep_task_shm(delta, arrays):
    """Tier-2 transport: the cube rides shared memory."""
    from repro.kernels import trip_counts_from_thresholds

    return trip_counts_from_thresholds(arrays["cube"],
                                       arrays["thresholds"] + delta)


def _sweep_tier1(cube, thresholds, workers):
    from repro.runtime import map_tasks

    return map_tasks(
        _sweep_task_pickled,
        [(cube, thresholds, d) for d in GUARDBANDS_V],
        workers=workers,
    )


def _sweep_tier2(cube, thresholds, workers):
    from repro.runtime import map_tasks

    return map_tasks(
        _sweep_task_shm, list(GUARDBANDS_V), workers=workers,
        shared={"cube": cube, "thresholds": thresholds},
    )


def _check_sweep(cube, thresholds, workers) -> None:
    """Pickled, shm-pool and shm-serial results all bit-identical."""
    tier1 = _sweep_tier1(cube, thresholds, workers)
    tier2 = _sweep_tier2(cube, thresholds, workers)
    serial = _sweep_tier2(cube, thresholds, 1)
    for a, b, c in zip(tier1, tier2, serial):
        assert np.array_equal(a, b), "shm pool diverged from pickling"
        assert np.array_equal(b, c), "shm pool diverged from serial"


# -- float32 error bounds -------------------------------------------------


def _float32_section(design, seeds, *, n_per_level) -> dict[str, Any]:
    """Measured float32-vs-float64 error, gated on the documented bound."""
    from repro.kernels import (
        FLOAT32_THRESHOLD_BOUND_V,
        decode_counts,
        s_curve_trip_probability_fused,
        threshold_grid,
    )

    t64 = threshold_grid(design, CODES)
    t32 = threshold_grid(design, CODES, dtype=np.float32)
    max_err = float(np.max(np.abs(t32.astype(np.float64) - t64)))
    assert max_err <= FLOAT32_THRESHOLD_BOUND_V, (
        f"float32 threshold error {max_err:.3e} V exceeds the "
        f"documented bound {FLOAT32_THRESHOLD_BOUND_V:.0e} V"
    )

    # Decoded words must agree wherever the supply margin exceeds the
    # bound: probe a dense grid, mask the near-threshold band, compare.
    v = np.linspace(float(t64.min()) - 0.05,
                    float(t64.max()) + 0.05, 4001)
    mismatches = 0
    checked = 0
    for j in range(len(CODES)):
        k64, _ = decode_counts(v, t64[:, j])
        k32, _ = decode_counts(v.astype(np.float32), t32[:, j],
                               dtype=np.float32)
        margin = np.min(np.abs(v[:, None] - t64[None, :, j]), axis=1)
        safe = margin > FLOAT32_THRESHOLD_BOUND_V
        checked += int(np.sum(safe))
        mismatches += int(np.sum(k64[safe] != k32[safe]))
    assert mismatches == 0, (
        f"{mismatches} decoded words differ outside the float32 band"
    )

    kw = _mc_kwargs(design, seeds, n_per_level=n_per_level)
    _, p64 = s_curve_trip_probability_fused(design, **kw)
    _, p32 = s_curve_trip_probability_fused(design, dtype=np.float32,
                                            **kw)
    return {
        "threshold_bound_v": FLOAT32_THRESHOLD_BOUND_V,
        "max_threshold_err_v": max_err,
        "decode_points_checked": checked,
        "decode_mismatches_outside_band": mismatches,
        "max_prob_delta": float(np.max(np.abs(p64 - p32))),
    }


# -- the bench ------------------------------------------------------------


def run(*, smoke: bool = False, repeats: int = 3, out: str | None = None,
        dtype: str = "float64", workers: int = 2) -> dict[str, Any]:
    """Gate agreement, then time tier 1 vs tier 2; persist the report."""
    from repro.analysis.yield_study import lot_threshold_grid
    from repro.core.calibration import paper_design
    from repro.devices.variation import VariationModel
    from repro.kernels import (
        KERNEL_LAYOUT_VERSION,
        s_curve_trip_probability_fused,
        score_lot_grids,
        spawn_bit_seeds,
        threshold_grid,
    )
    from repro.runtime.shm import shm_counters, shm_enabled

    design = paper_design()
    code = 3
    n_dies = 60 if smoke else 400
    n_supplies = 25 if smoke else 65
    n_per_level = 400 if smoke else 2000
    n_trials = 20_000 if smoke else 60_000

    grid = np.asarray(lot_threshold_grid(
        design,
        VariationModel().sample_lot(n_dies, design.n_bits, seed=2024),
        code,
    ))
    full = threshold_grid(design, CODES)
    ladder = tuple(float(v) for v in full[:, code])
    supplies = tuple(
        float(v) for v in np.linspace(ladder[0] - 0.01,
                                      ladder[-1] + 0.01, n_supplies)
    )
    seeds = spawn_bit_seeds(2024, design.n_bits)
    rng = np.random.default_rng(2024)
    thresholds = full[:, code]
    cube = thresholds[:, None, None] + rng.normal(
        0.0, 0.01, size=(design.n_bits, 15, n_trials)
    )

    # Agreement gates first: no timing claim without exact parity.
    _check_yield(grid, supplies, ladder)
    min_ulps = _check_mc(design, seeds, cube, code,
                         n_per_level=n_per_level)
    _check_sweep(cube, thresholds, workers)
    f32 = _float32_section(design, seeds, n_per_level=n_per_level)

    mc_kw = _mc_kwargs(design, seeds, n_per_level=n_per_level)
    yield_points = n_dies * (design.n_bits + n_supplies)
    mc_points = cube.size
    sweep_points = len(GUARDBANDS_V) * cube.size
    workloads = {
        "yield_fused": {
            "tier1": time_workload(
                lambda: _yield_tier1(grid, supplies, ladder),
                repeats=repeats, points=yield_points,
            ),
            "tier2": time_workload(
                lambda: _yield_tier2(grid, supplies, ladder),
                repeats=repeats, points=yield_points,
            ),
            "grid": {"dies": n_dies, "bits": design.n_bits,
                     "supplies": n_supplies},
        },
        "mc_fused": {
            "tier1": time_workload(
                lambda: _mc_tier1(design, cube, code),
                repeats=repeats, points=mc_points,
            ),
            "tier2": time_workload(
                lambda: _mc_tier2(design, cube, code),
                repeats=repeats, points=mc_points,
            ),
            "grid": {"bits": design.n_bits, "levels": 15,
                     "trials": n_trials},
            "min_draw_to_root_ulps": min_ulps,
        },
        "pool_broadcast": {
            "tier1": time_workload(
                lambda: _sweep_tier1(cube, thresholds, workers),
                repeats=repeats, points=sweep_points,
            ),
            "tier2": time_workload(
                lambda: _sweep_tier2(cube, thresholds, workers),
                repeats=repeats, points=sweep_points,
            ),
            "grid": {"tasks": len(GUARDBANDS_V), "workers": workers,
                     "cube_mb": round(cube.nbytes / 1e6, 1)},
            "shm_enabled": shm_enabled(),
        },
    }
    for w in workloads.values():
        w["speedup"] = w["tier1"]["best_s"] / w["tier2"]["best_s"]

    if dtype == "float32":
        workloads["yield_fused"]["tier2_float32"] = time_workload(
            lambda: score_lot_grids(grid, supplies, ladder,
                                    dtype=np.float32),
            repeats=repeats, points=yield_points,
        )
        workloads["mc_fused"]["tier2_float32"] = time_workload(
            lambda: s_curve_trip_probability_fused(
                design, dtype=np.float32, **mc_kw),
            repeats=repeats, points=mc_points,
        )

    payload: dict[str, Any] = {
        "bench": "speed2",
        "kernel_layout": KERNEL_LAYOUT_VERSION,
        "mode": "smoke" if smoke else "full",
        "dtype": dtype,
        "workloads": workloads,
        "float32": f32,
        "shm": shm_counters(),
    }
    write_bench_json("BENCH_speed2", payload, out=out)

    rows = [
        [name,
         f"{w['tier1']['best_s'] * 1e3:.1f}",
         f"{w['tier2']['best_s'] * 1e3:.1f}",
         f"{w['speedup']:.1f}x",
         f"{w['tier2']['points_per_s']:.3g}"]
        for name, w in workloads.items()
    ]
    emit("speed2_perf", fmt_rows(
        ["workload", "tier1 ms", "tier2 ms", "speedup", "tier2 pts/s"],
        rows,
    ))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="raw-speed tier 2: fused kernels + shm pools"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized grids (fast)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the broadcast workload")
    parser.add_argument("--dtype", choices=("float64", "float32"),
                        default="float64",
                        help="additionally time the fused workloads "
                             "in float32 (parity gates stay float64)")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every workload beats X times "
                             "the tier-1 path")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_speed2.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out,
                  dtype=args.dtype, workers=args.workers)
    if args.assert_speedup is not None:
        slow = {
            name: w["speedup"]
            for name, w in payload["workloads"].items()
            if w["speedup"] < args.assert_speedup
        }
        if slow:
            print(f"FAIL: speedup floor {args.assert_speedup}x not met: "
                  + ", ".join(f"{n}={s:.1f}x" for n, s in slow.items()))
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_speed2_bench(benchmark, design):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    f32 = payload["float32"]
    assert f32["max_threshold_err_v"] <= f32["threshold_bound_v"]
    assert f32["decode_mismatches_outside_band"] == 0
    assert payload["workloads"]["mc_fused"]["min_draw_to_root_ulps"] > 4
    for name, w in payload["workloads"].items():
        assert w["speedup"] > 0, name  # parity gated; timing informative


if __name__ == "__main__":
    raise SystemExit(main())
