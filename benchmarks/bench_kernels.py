"""Kernel-vs-scalar perf regression: the tracked BENCH_kernels.json.

Two workloads, each timed both ways and cross-checked for agreement:

* ``fig5_grid`` — the full analytic Fig. 5 characterization: every
  (bit x delay-code) threshold plus a dense word/decode sweep across
  the dynamic.  Kernel path: one
  :func:`~repro.kernels.threshold_grid` solve + grid decode.  Scalar
  oracle: per-point ``brentq`` (``SensorDesign.bit_threshold``) +
  per-word Python decode.
* ``yield_200`` — the 200-die Monte-Carlo yield study at code 011.
  Kernel path: the batched :func:`~repro.analysis.yield_study.
  run_yield_study` lot solve.  Scalar oracle: the pre-kernel per-die
  loop (``_score_die_scalar``).

Agreement gates the timing claim: thresholds must match the oracle to
within 2e-9 V (its own ``xtol``) and every word/decode/score output
must be identical, else the bench fails regardless of speedup.

Run standalone (``python -m benchmarks.bench_kernels`` or
``repro bench kernels``) with ``--smoke`` for the CI-sized grids and
``--assert-speedup N`` to enforce a floor; the JSON lands in
``benchmarks/reports/BENCH_kernels.json`` and, with ``--out``, at a
tracked path (the repo commits ``BENCH_kernels.json`` at the root).
"""

from __future__ import annotations

import argparse
import math
from typing import Any

import numpy as np

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows

CODES = tuple(range(8))


def _fig5_scalar(design, supplies):
    """Scalar oracle: per-point brentq + per-word Python decode."""
    from repro.analysis.thermometer import ThermometerWord, decode_word

    thresholds = {
        code: tuple(design.bit_threshold(b, code)
                    for b in range(1, design.n_bits + 1))
        for code in CODES
    }
    decoded = []
    for code in CODES:
        ladder = thresholds[code]
        for v in supplies:
            word = ThermometerWord(
                tuple(1 if v > t else 0 for t in ladder)
            )
            rng = decode_word(word, ladder, strict=False)
            decoded.append((word.bits, rng.lo, rng.hi))
    return thresholds, decoded


def _fig5_kernel(design, supplies):
    """Kernel path: one grid solve + grid decode."""
    from repro.kernels import (
        decode_bounds,
        ones_count_grid,
        threshold_grid,
        word_grid,
    )

    grid = threshold_grid(design, CODES)          # (bits, codes)
    v = np.asarray(supplies, dtype=float)
    # word_grid broadcasts the bit axis last; build (codes, supplies,
    # bits) explicitly since each code has its own ladder.
    words = np.stack([word_grid(v, grid[:, j]) for j in range(len(CODES))])
    ks = ones_count_grid(words)
    bounds = [decode_bounds(grid[:, j], ks[j]) for j in range(len(CODES))]
    return grid, words, ks, bounds


def _yield_scalar(design, lot, supplies, ladder, code):
    from repro.analysis.yield_study import _score_die_scalar

    return [
        _score_die_scalar(design, s, code, supplies, ladder)
        for s in lot
    ]


def _yield_kernel(design, lot, supplies, ladder, code):
    from repro.analysis.yield_study import (
        _score_from_thresholds,
        lot_threshold_grid,
    )

    grid = lot_threshold_grid(design, lot, code)
    return [
        _score_from_thresholds(grid[i], supplies, ladder)
        for i in range(len(lot))
    ]


def _check_fig5(design, supplies) -> float:
    """Max |kernel - oracle| threshold delta; word/decode must match."""
    thresholds, decoded = _fig5_scalar(design, supplies)
    grid, words, ks, bounds = _fig5_kernel(design, supplies)
    delta = max(
        abs(grid[b - 1, j] - thresholds[code][b - 1])
        for j, code in enumerate(CODES)
        for b in range(1, design.n_bits + 1)
    )
    # Words/decodes computed from the *kernel* ladder must equal the
    # scalar decode of the same ladder exactly — compare kernel decode
    # against a scalar decode run on the kernel thresholds.
    from repro.analysis.thermometer import ThermometerWord, decode_word

    for j in range(len(CODES)):
        ladder = tuple(float(t) for t in grid[:, j])
        lo, hi = bounds[j]
        for i, v in enumerate(supplies):
            word = ThermometerWord(
                tuple(1 if v > t else 0 for t in ladder)
            )
            assert tuple(int(b) for b in words[j, i]) == word.bits
            rng = decode_word(word, ladder, strict=False)
            assert rng.lo == lo[i] and rng.hi == hi[i]
    return float(delta)


def _check_yield(design, lot, supplies, ladder, code) -> float:
    """Max per-bit threshold delta; every other score field must match."""
    scalar = _yield_scalar(design, lot, supplies, ladder, code)
    kernel = _yield_kernel(design, lot, supplies, ladder, code)
    delta = 0.0
    for s, k in zip(scalar, kernel):
        delta = max(delta, max(
            abs(a - b) for a, b in zip(s.thresholds, k.thresholds)
        ))
        assert s.monotone == k.monotone
        assert s.bubbled == k.bubbled
    return float(delta)


def run(*, smoke: bool = False, repeats: int = 3,
        out: str | None = None) -> dict[str, Any]:
    """Time both workloads both ways; return (and persist) the report."""
    from repro.core.calibration import paper_design
    from repro.devices.variation import VariationModel
    from repro.kernels import KERNEL_LAYOUT_VERSION, threshold_grid

    design = paper_design()
    n_supplies = 200 if smoke else 2000
    n_dies = 20 if smoke else 200
    code = 3

    grid = threshold_grid(design, CODES)
    supplies = tuple(
        float(v) for v in np.linspace(float(grid.min()) - 0.02,
                                      float(grid.max()) + 0.02,
                                      n_supplies)
    )
    ladder = tuple(float(v) for v in grid[:, code])
    lot = VariationModel().sample_lot(n_dies, design.n_bits, seed=2024)
    yield_supplies = tuple(
        float(v) for v in np.linspace(ladder[0] + 0.005,
                                      ladder[-1] - 0.005, 17)
    )

    fig5_delta = _check_fig5(design, supplies)
    yield_delta = _check_yield(design, lot, yield_supplies, ladder, code)
    assert fig5_delta <= 2e-9, f"fig5 kernel drifted: {fig5_delta:.3e} V"
    assert yield_delta <= 2e-9, f"yield kernel drifted: {yield_delta:.3e} V"

    fig5_points = design.n_bits * len(CODES) + len(CODES) * n_supplies
    yield_points = n_dies * (design.n_bits + len(yield_supplies))
    workloads = {
        "fig5_grid": {
            "scalar": time_workload(
                lambda: _fig5_scalar(design, supplies),
                repeats=repeats, points=fig5_points,
            ),
            "kernel": time_workload(
                lambda: _fig5_kernel(design, supplies),
                repeats=repeats, points=fig5_points,
            ),
            "grid": {"bits": design.n_bits, "codes": len(CODES),
                     "supplies": n_supplies},
            "max_abs_delta_v": fig5_delta,
        },
        "yield_200": {
            "scalar": time_workload(
                lambda: _yield_scalar(design, lot, yield_supplies,
                                      ladder, code),
                repeats=repeats, points=yield_points,
            ),
            "kernel": time_workload(
                lambda: _yield_kernel(design, lot, yield_supplies,
                                      ladder, code),
                repeats=repeats, points=yield_points,
            ),
            "grid": {"dies": n_dies, "bits": design.n_bits,
                     "supplies": len(yield_supplies)},
            "max_abs_delta_v": yield_delta,
        },
    }
    for w in workloads.values():
        w["speedup"] = w["scalar"]["best_s"] / w["kernel"]["best_s"]

    payload: dict[str, Any] = {
        "bench": "kernels",
        "kernel_layout": KERNEL_LAYOUT_VERSION,
        "mode": "smoke" if smoke else "full",
        "tolerance_v": 2e-9,
        "workloads": workloads,
    }
    write_bench_json("BENCH_kernels", payload, out=out)

    rows = [
        [name,
         f"{w['scalar']['best_s'] * 1e3:.1f}",
         f"{w['kernel']['best_s'] * 1e3:.1f}",
         f"{w['speedup']:.1f}x",
         f"{w['kernel']['points_per_s']:.3g}",
         f"{w['max_abs_delta_v']:.2e}"]
        for name, w in workloads.items()
    ]
    emit("kernels_perf", fmt_rows(
        ["workload", "scalar ms", "kernel ms", "speedup",
         "kernel pts/s", "max |dV|"], rows,
    ))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="kernel vs scalar-oracle perf bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized grids (fast)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every workload beats X times "
                             "the scalar oracle")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_kernels.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_speedup is not None:
        slow = {
            name: w["speedup"]
            for name, w in payload["workloads"].items()
            if w["speedup"] < args.assert_speedup
        }
        if slow:
            print(f"FAIL: speedup floor {args.assert_speedup}x not met: "
                  + ", ".join(f"{n}={s:.1f}x" for n, s in slow.items()))
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_kernel_perf_bench(benchmark, design):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    for name, w in payload["workloads"].items():
        assert w["max_abs_delta_v"] <= 2e-9, name
        assert w["speedup"] > 1.0, (name, w["speedup"])
    assert not math.isnan(payload["workloads"]["fig5_grid"]["speedup"])


if __name__ == "__main__":
    raise SystemExit(main())
