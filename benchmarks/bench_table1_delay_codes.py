"""E5 — §III-B delay-code table.

Paper: "Delay Code 000 001 010 011 100 101 110 111 /
        CP delay [ps] 26 40 50 65 77 92 100 107"

The bench measures the *structural* PG (tap elements + matched mux
trees) in the event simulator and compares against both the behavioural
PG and the paper's table.
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.pulsegen import PulseGenerator, PulseGeneratorHarness
from repro.units import PS, to_ps

PAPER_PS = (26, 40, 50, 65, 77, 92, 100, 107)


def test_table1_delay_codes(benchmark, design):
    harness = PulseGeneratorHarness(design)
    structural = benchmark.pedantic(harness.measure_table,
                                    rounds=1, iterations=1)
    behavioural = PulseGenerator(design).delay_table()
    rows = []
    for code in range(8):
        rows.append([
            format(code, "03b"),
            PAPER_PS[code],
            f"{to_ps(behavioural[code]):.2f}",
            f"{to_ps(structural[code]):.2f}",
        ])
    emit("table1_delay_codes", fmt_rows(
        ["delay code", "paper [ps]", "behavioural [ps]",
         "structural sim [ps]"],
        rows,
    ))
    for code in range(8):
        assert structural[code] == pytest.approx(PAPER_PS[code] * PS,
                                                 abs=0.5 * PS)


def test_table1_mux_insertion_cancels(benchmark, design):
    """The matched-tree property: realized skew is independent of the
    common-mode mux/driver insertion."""
    harness = PulseGeneratorHarness(design)

    def run():
        return harness.measure_skew(3)

    skew = benchmark.pedantic(run, rounds=1, iterations=1)
    assert skew == pytest.approx(65 * PS, abs=0.5 * PS)
