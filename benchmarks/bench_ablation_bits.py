"""A4 — bit-count ablation: quantization error vs. thermometer width.

The paper picks 7 bits "in this example".  This ablation rebuilds the
array at widths 3..15 (interpolating the trim-cap ladder over the same
span) and scores quantization error on a uniform supply sweep — the
cost/resolution trade a user of the sensor would tune.

Shape expectation: LSB and RMS decoded error shrink ~1/N while the
measurable range endpoints stay put.
"""

import numpy as np

from benchmarks._report import emit, fmt_rows
from repro.analysis.statistics import quantization_step, tracking_rmse
from repro.core.array import SensorArray


def widen_design(design, n_bits):
    """Same cap span, n_bits rungs (linear interpolation)."""
    lo, hi = design.load_caps[0], design.load_caps[-1]
    caps = tuple(
        lo + (hi - lo) * i / (n_bits - 1) for i in range(n_bits)
    )
    return design.with_load_caps(caps)


def run_bits(design):
    out = []
    sweep = np.arange(0.84, 1.05, 0.005)
    for n_bits in (3, 5, 7, 11, 15):
        d = widen_design(design, n_bits)
        arr = SensorArray(d)
        thresholds = arr.supply_thresholds(3)
        ranges = []
        truths = []
        for v in sweep:
            m = arr.measure(3, vdd_n=float(v))
            rng = arr.decode(m.word, 3)
            if rng.bounded:
                ranges.append(rng)
                truths.append(float(v))
        rmse = tracking_rmse(ranges, truths)
        out.append((n_bits, quantization_step(thresholds),
                    thresholds[0], thresholds[-1], rmse))
    return out


def test_bit_count_ablation(benchmark, design):
    results = benchmark.pedantic(lambda: run_bits(design),
                                 rounds=1, iterations=1)
    rows = [
        [n, f"{lsb * 1e3:.1f}", f"{lo:.3f}", f"{hi:.3f}",
         f"{rmse * 1e3:.1f}"]
        for n, lsb, lo, hi, rmse in results
    ]
    emit("ablation_bits", fmt_rows(
        ["stages", "LSB [mV]", "range lo [V]", "range hi [V]",
         "decode RMSE [mV]"],
        rows,
    ) + "\nshape: error shrinks ~1/N at fixed range; the paper's 7 "
        "stages sit at ~30 mV resolution")
    lsbs = [lsb for _, lsb, _, _, _ in results]
    rmses = [r for *_, r in results]
    assert all(b < a for a, b in zip(lsbs, lsbs[1:]))
    assert rmses[-1] < rmses[0] / 2
    # Range endpoints unchanged by the ladder density.
    los = [lo for _, _, lo, _, _ in results]
    his = [hi for _, _, _, hi, _ in results]
    assert max(los) - min(los) < 1e-9
    assert max(his) - min(his) < 1e-9
