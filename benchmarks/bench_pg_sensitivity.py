"""E5b — PG robustness: why the paper demands matched routing.

§III-B: "P and CP require also an accurate routing as they were a
differential pair (a delay introduced by routing on both does not
influence the measure but only the moment in which the measure is
executed, while the skew between them must be accurately checked)."

Two quantitative forms of that sentence:

* **common-mode immunity** — adding the *same* extra delay to both
  paths must leave the realized skew and the thresholds untouched;
* **differential sensitivity** — an *unmatched* extra delay shifts the
  window 1:1, moving every threshold by ~dV/dD (≈ 8 mV/ps near code
  011) — the number that tells a layout engineer the matching budget.

Plus the second-order effect the PG inherits from its own rail: a
droop on the *nominal* supply stretches the skew and biases the
measurement of the noisy one.
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.pulsegen import PulseGenerator, build_pg_netlist
from repro.core.sensor import SensorBit
from repro.sim.engine import SimulationEngine
from repro.units import NS, PS, to_ps


def measure_structural_skew(design, *, common_extra=0.0,
                            cp_only_extra=0.0):
    """Realized P/CP skew with deliberate routing capacitance added."""
    nl, ports = build_pg_netlist(design, prefix="pgx")
    nl.nets[ports.p_out].extra_cap += common_extra
    nl.nets[ports.cp_out].extra_cap += common_extra + cp_only_extra
    engine = SimulationEngine(nl)
    for s, b in zip(ports.selects, (1, 1, 0)):  # code 011
        engine.set_initial(s, b)
    engine.set_initial(ports.p_in, 0)
    engine.set_initial(ports.cp_in, 0)
    engine.settle()
    engine.schedule_stimulus(ports.p_in, 1, 2 * NS)
    engine.schedule_stimulus(ports.cp_in, 1, 2 * NS)
    engine.run(7 * NS)
    p_edge = [t for t in engine.trace.edges(ports.p_out, rising=True)
              if t >= 2 * NS][0]
    cp_edge = [t for t in engine.trace.edges(ports.cp_out, rising=True)
               if t >= 2 * NS][0]
    return cp_edge - p_edge


def test_common_mode_routing_cancels(benchmark, design):
    """Equal extra load on both outputs: skew unchanged (the
    'differential pair' property)."""
    def run():
        base = measure_structural_skew(design)
        loaded = measure_structural_skew(design, common_extra=20e-15)
        return base, loaded

    base, loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("pg_common_mode", fmt_rows(
        ["routing", "skew [ps]"],
        [["matched (baseline)", f"{to_ps(base):.2f}"],
         ["matched + 20 fF on both", f"{to_ps(loaded):.2f}"]],
    ) + "\nshape: common-mode routing shifts WHEN the measure happens, "
        "not WHAT it reads (skew unchanged)")
    assert loaded == pytest.approx(base, abs=0.05 * PS)


def test_differential_mismatch_budget(benchmark, design):
    """Unmatched CP load: skew error, converted to threshold error —
    the layout matching budget."""
    def run():
        rows = []
        base = measure_structural_skew(design)
        bit = SensorBit(design, 4)
        t_ref = bit.threshold(3)
        # dV/dD from the code table: thresholds shift ~(t(010)-t(011))
        # per (50-65) ps of window.
        dv_dd = (design.bit_threshold(4, 2) - design.bit_threshold(4, 3)) \
            / (design.delay_codes[2] - design.delay_codes[3])
        for extra_ff in (1e-15, 2e-15, 5e-15):
            skew = measure_structural_skew(design, cp_only_extra=extra_ff)
            d_err = skew - base
            v_err = -d_err * dv_dd  # larger window -> lower threshold
            rows.append((extra_ff, d_err, v_err))
        return base, t_ref, dv_dd, rows

    base, t_ref, dv_dd, rows = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    table = [[f"{c * 1e15:.0f}", f"{to_ps(d):+.2f}",
              f"{v * 1e3:+.1f}"] for c, d, v in rows]
    emit("pg_mismatch_budget", fmt_rows(
        ["CP-only extra load [fF]", "skew error [ps]",
         "threshold shift [mV]"],
        table,
    ) + f"\nsensitivity: {abs(dv_dd) * 1e3 * 1e-12:.1f} mV per ps of "
        f"skew error — one LSB (~32 mV) is burned by ~4 ps of "
        f"unmatched routing; hence the paper's differential-pair rule")
    errors = [abs(d) for _, d, _ in rows]
    assert all(b > a for a, b in zip(errors, errors[1:]))
    # 5 fF of mismatch already costs > 1 ps.
    assert errors[-1] > 1 * PS


def test_pg_supply_droop_biases_skew(benchmark, design):
    """A droop on the PG's own (nominal) rail stretches the skew —
    the control-rail integrity requirement of Fig. 6."""
    def run():
        pg = PulseGenerator(design)
        return {v: pg.skew(3, supply_v=v) for v in (1.0, 0.97, 0.95)}

    skews = benchmark.pedantic(run, rounds=1, iterations=1)
    bit = SensorBit(design, 4)
    dv_dd = (design.bit_threshold(4, 2) - design.bit_threshold(4, 3)) \
        / (design.delay_codes[2] - design.delay_codes[3])
    rows = []
    for v, s in skews.items():
        err = s - skews[1.0]
        rows.append([f"{v:.2f}", f"{to_ps(s):.2f}",
                     f"{-err * dv_dd * 1e3:+.1f}"])
    emit("pg_supply_droop", fmt_rows(
        ["PG rail [V]", "code-011 skew [ps]",
         "induced threshold bias [mV]"],
        rows,
    ) + "\nshape: the sensor's *own* rail must be clean (the paper "
        "gives the control system 'a dedicated power supply pin'); a "
        "3-5% droop there biases readings by a fraction of an LSB")
    assert skews[0.95] > skews[0.97] > skews[1.0]
