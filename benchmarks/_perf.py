"""Perf-regression measurement helpers.

The scientific benches (``bench_fig*.py``) time whole experiments
incidentally; this module is for benches whose *payload is the timing*:
repeatable wall-clock measurements, a machine fingerprint so numbers
from different hosts are never compared blindly, and a JSON emitter so
every PR leaves a ``BENCH_*.json`` trajectory to diff against.

Conventions:

* a *workload* is a zero-argument callable timed with
  :func:`time_workload` — best-of-N wall time plus derived points/s;
* JSON reports are written under ``benchmarks/reports/`` (gitignored
  scratch) via :func:`write_bench_json`; benches that *commit* a
  trajectory copy the same payload to a tracked path.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable

from benchmarks._report import REPORT_DIR


def machine_fingerprint() -> dict[str, Any]:
    """Enough host identity to judge whether two timings are comparable.

    Folds the *numeric stack* in as well as the host: numbers produced
    with the numba-compiled kernel backend are not comparable to
    pure-NumPy ones, so the fingerprint records the numba version (or
    ``"none"``) and which backend was actually active.
    """
    import numpy

    from repro.kernels import active_backend, numba_version

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "numba": numba_version() or "none",
        "kernel_backend": active_backend(),
    }


def time_workload(fn: Callable[[], Any], *, repeats: int = 3,
                  warmup: int = 1, points: int | None = None
                  ) -> dict[str, Any]:
    """Best-of-``repeats`` wall time of ``fn`` after ``warmup`` calls.

    Args:
        fn: The workload; its return value is discarded.
        repeats: Timed calls; the *minimum* is the headline number
            (robust against scheduler noise on shared CI hosts).
        warmup: Untimed calls first (caches, allocator, JIT-free but
            BLAS threads still spin up).
        points: Grid cells the workload evaluates; when given, the
            report includes ``points_per_s`` derived from the best time.
    """
    for _ in range(max(0, warmup)):
        fn()
    times: list[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    best = min(times)
    out: dict[str, Any] = {
        "best_s": best,
        "mean_s": sum(times) / len(times),
        "repeats": len(times),
        "warmup": max(0, warmup),
    }
    if points is not None:
        out["points"] = int(points)
        out["points_per_s"] = (points / best) if best > 0 else None
    return out


def write_bench_json(name: str, payload: dict[str, Any], *,
                     out: str | os.PathLike[str] | None = None) -> Path:
    """Persist a perf payload as ``benchmarks/reports/<name>.json``.

    Args:
        name: Report stem, e.g. ``"BENCH_kernels"``.
        payload: JSON-serializable report body; ``machine`` and
            ``timestamp`` keys are filled in when absent.
        out: Optional extra path to mirror the same JSON to (e.g. a
            repo-root tracked trajectory file).

    Returns:
        The path written under ``benchmarks/reports/``.
    """
    body = dict(payload)
    body.setdefault("machine", machine_fingerprint())
    body.setdefault(
        "timestamp", time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
    )
    text = json.dumps(body, indent=2, sort_keys=False) + "\n"
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.json"
    path.write_text(text)
    if out is not None:
        Path(out).expanduser().write_text(text)
    return path
