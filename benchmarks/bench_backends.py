"""Backend-layer throughput: the tracked BENCH_backends.json.

The backend seam (:mod:`repro.backends`) promises that swapping the
driver changes *speed*, never *answers*.  This bench enforces that
ordering explicitly — parity gates first, timing second:

* **words** — the sim and kernel drivers must return identical words
  at decode-ladder midpoint levels (away from every boundary);
* **thresholds** — kernel-vs-brentq within the kernel layer's 2e-9 V
  bound; sim-vs-kernel within the bisection-tolerance-dominated bound
  documented in ``tests/test_backends_parity.py``;
* **replay** — a campaign recorded through
  :class:`~repro.backends.RecordingBackend` must replay back
  *bit-identically* before its replay rate means anything.

Only then is throughput measured: kernel ``measure_batch`` levels/s,
the event-driven sim's levels/s (its per-level event loop is the
whole reason the kernel driver is the default), replay levels/s over
an in-memory recording, and the JSONL/CSV codec round-trip rate.

Run standalone (``python -m benchmarks.bench_backends`` or
``repro bench backends``) with ``--smoke`` for the CI-sized sweep and
``--assert-speedup N`` to enforce a kernel-over-sim floor; the JSON
lands in ``benchmarks/reports/BENCH_backends.json`` and, with
``--out``, at a tracked path (the repo commits ``BENCH_backends.json``
at the root).
"""

from __future__ import annotations

import argparse
from typing import Any

import numpy as np

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows

CODE = 3
KERNEL_TOL_V = 2e-9
SIM_TOL_V = 0.5e-3
SIM_VS_KERNEL_V = 2.0 * SIM_TOL_V


def _midpoint_levels(design, n: int) -> np.ndarray:
    """n levels cycling over decode-ladder midpoints (exact-parity
    territory: every level is maximally far from a boundary)."""
    from repro.backends import KernelBackend

    bk = KernelBackend()
    bk.configure(design)
    th = np.asarray(bk.bit_thresholds(CODE))
    edges = np.concatenate(([th[0] - 0.03], th, [th[-1] + 0.03]))
    mids = 0.5 * (edges[:-1] + edges[1:])
    return np.tile(mids, n // mids.size + 1)[:n]


def _verify(design, sim_levels: np.ndarray) -> dict[str, Any]:
    """Cross-driver agreement checks; AssertionError on violation."""
    from repro.backends import (
        KernelBackend,
        RecordingBackend,
        ReplayBackend,
        SimBackend,
    )

    kernel = KernelBackend()
    sim = SimBackend(tol=SIM_TOL_V)
    kernel.configure(design)
    sim.configure(design)

    kw = kernel.measure_batch(sim_levels, code=CODE)
    sw = sim.measure_batch(sim_levels, code=CODE)
    assert np.array_equal(kw, sw), \
        "sim and kernel words diverged at midpoint levels"

    k_th = np.asarray(kernel.bit_thresholds(CODE))
    oracle = np.array([design.bit_threshold(b, CODE)
                       for b in range(1, design.n_bits + 1)])
    kernel_err = float(np.max(np.abs(k_th - oracle)))
    assert kernel_err <= KERNEL_TOL_V, kernel_err

    s_th = np.asarray(sim.bit_thresholds(CODE))
    sim_err = float(np.max(np.abs(s_th - k_th)))
    assert sim_err <= SIM_VS_KERNEL_V, sim_err

    rec = RecordingBackend(KernelBackend())
    rec.configure(design)
    live = rec.measure_batch(sim_levels, code=CODE)
    rec.close()
    replay = ReplayBackend(rec.trace)
    replay.configure(design)
    again = replay.measure_batch(sim_levels, code=CODE)
    assert np.array_equal(live, again), \
        "replay diverged from its own recording"

    return {
        "words_equal": True,
        "replay_bit_identical": True,
        "kernel_vs_brentq_v": kernel_err,
        "kernel_bound_v": KERNEL_TOL_V,
        "sim_vs_kernel_v": sim_err,
        "sim_bound_v": SIM_VS_KERNEL_V,
    }


def run(*, smoke: bool = False, repeats: int = 3,
        out: str | None = None) -> dict[str, Any]:
    """Gate parity, then time each driver's measurement throughput."""
    from repro.backends import (
        KernelBackend,
        RecordingBackend,
        ReplayBackend,
        SimBackend,
    )
    from repro.backends.trace import dump_jsonl, parse_jsonl
    from repro.core.calibration import paper_design

    design = paper_design()
    n_kernel = 400 if smoke else 4000
    n_sim = 16 if smoke else 64

    kernel_levels = _midpoint_levels(design, n_kernel)
    sim_levels = _midpoint_levels(design, n_sim)
    agreement = _verify(design, sim_levels)

    kernel = KernelBackend()
    kernel.configure(design)
    kernel_timing = time_workload(
        lambda: kernel.measure_batch(kernel_levels, code=CODE),
        repeats=repeats, points=n_kernel,
    )

    sim = SimBackend(tol=SIM_TOL_V)
    sim.configure(design)
    sim_timing = time_workload(
        lambda: sim.measure_batch(sim_levels, code=CODE),
        repeats=repeats, points=n_sim,
    )

    rec = RecordingBackend(KernelBackend())
    rec.configure(design)
    rec.measure_batch(kernel_levels, code=CODE)
    rec.close()
    replay = ReplayBackend(rec.trace)

    def _replay_pass():
        replay.rewind()
        replay.configure(design)
        replay.measure_batch(kernel_levels, code=CODE)

    replay_timing = time_workload(
        _replay_pass, repeats=repeats, points=n_kernel,
    )

    codec_timing = time_workload(
        lambda: parse_jsonl(dump_jsonl(rec.trace)),
        repeats=repeats, points=n_kernel,
    )

    speedup = (kernel_timing["points_per_s"]
               / sim_timing["points_per_s"])
    payload: dict[str, Any] = {
        "bench": "backends",
        "mode": "smoke" if smoke else "full",
        "sweep": {
            "code": CODE,
            "n_levels_kernel": n_kernel,
            "n_levels_sim": n_sim,
            "sim_tol_v": SIM_TOL_V,
        },
        "agreement": agreement,
        "kernel": kernel_timing,
        "sim": sim_timing,
        "replay": replay_timing,
        "jsonl_codec": codec_timing,
        "kernel_over_sim_speedup": speedup,
    }
    write_bench_json("BENCH_backends", payload, out=out)

    rows = [
        ["kernel", f"{kernel_timing['best_s'] * 1e3:.2f}",
         f"{kernel_timing['points_per_s']:.3g}"],
        ["sim", f"{sim_timing['best_s'] * 1e3:.2f}",
         f"{sim_timing['points_per_s']:.3g}"],
        ["replay", f"{replay_timing['best_s'] * 1e3:.2f}",
         f"{replay_timing['points_per_s']:.3g}"],
        ["jsonl codec", f"{codec_timing['best_s'] * 1e3:.2f}",
         f"{codec_timing['points_per_s']:.3g}"],
    ]
    emit("backends_perf", fmt_rows(
        ["driver", "best ms", "levels/s"], rows,
    ))
    print(f"kernel-over-sim speedup: {speedup:.1f}x")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="measurement-backend throughput bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized sweep")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless kernel beats sim by X times")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_backends.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_speedup is not None:
        speedup = payload["kernel_over_sim_speedup"]
        if speedup < args.assert_speedup:
            print(f"FAIL: kernel only {speedup:.2f}x over sim, floor "
                  f"{args.assert_speedup:g}x")
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_backends_perf_bench(benchmark, design):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    assert payload["agreement"]["words_equal"]
    assert payload["agreement"]["replay_bit_identical"]


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
