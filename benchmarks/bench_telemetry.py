"""Streaming telemetry throughput: the tracked BENCH_telemetry.json.

The workload is the full online-monitoring path — ring staging,
chunked kernel decode, Welford/P²/histogram/EWMA aggregation and droop
detection — over a synthetic million-sample PSN trace with injected
droop events and rail noise.  Correctness gates the timing claim:

* **chunked == batch** — before anything is timed, the pipeline's
  chunk-at-a-time decode is compared elementwise (``==``, not
  ``allclose``) against :func:`~repro.telemetry.pipeline.batch_decode`
  of the same trace; any mismatch fails the bench regardless of
  throughput;
* **bounded memory** — the per-site ring's high watermark must stay at
  or below the configured capacity;
* **P² accuracy** — every tracked quantile must land within one
  interior decode-interval width of exact ``np.quantile`` on the full
  trace (the quantization bound documented in
  :mod:`repro.telemetry.aggregate`).

Run standalone (``python -m benchmarks.bench_telemetry`` or
``repro bench telemetry``) with ``--smoke`` for the CI-sized trace and
``--assert-throughput N`` (samples/s) to enforce a floor; the JSON
lands in ``benchmarks/reports/BENCH_telemetry.json`` and, with
``--out``, at a tracked path (the repo commits ``BENCH_telemetry.json``
at the root).
"""

from __future__ import annotations

import argparse
from typing import Any

import numpy as np

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows

CHUNK = 1024
CAPACITY = 8192
BLOCK = 4096


def _make_pipeline(design, *, on_decoded=None):
    from repro.telemetry import TelemetryPipeline

    return TelemetryPipeline(
        design, code=3, chunk=CHUNK, capacity=CAPACITY,
        policy="drop_oldest", min_duration=2, refractory=8,
        on_decoded=on_decoded,
    )


def _stream(design, times, volts, *, on_decoded=None):
    from repro.telemetry import array_source

    pipeline = _make_pipeline(design, on_decoded=on_decoded)
    pipeline.ingest_all(
        array_source("bench", times, volts, block=BLOCK)
    )
    pipeline.flush()
    return pipeline


def _verify(design, times, volts) -> dict[str, Any]:
    """Agreement checks; raises AssertionError on any violation."""
    from repro.telemetry import batch_decode

    collected: list[np.ndarray] = []
    pipeline = _stream(
        design, times, volts,
        on_decoded=lambda site, ts, ks, ms: collected.append(ms),
    )
    streamed = np.concatenate(collected)
    _, _, batch_mids = batch_decode(pipeline.ladder, volts)
    assert streamed.shape == batch_mids.shape, (
        f"sample loss: streamed {streamed.shape}, batch "
        f"{batch_mids.shape}"
    )
    assert np.array_equal(streamed, batch_mids), \
        "chunked decode diverged from one-shot batch decode"

    snap = pipeline.snapshot()
    ring = snap["sites"]["bench"]["ring"]
    assert ring["high_watermark"] <= CAPACITY, ring
    assert ring["dropped"] == 0, ring

    # P² vs exact quantiles: within one interior rung width.
    ladder = pipeline.ladder
    mid_levels = np.concatenate(
        ([ladder[0]], 0.5 * (ladder[1:] + ladder[:-1]), [ladder[-1]])
    )
    bound = float(np.max(np.diff(mid_levels)))
    q_err = {}
    for q, est in snap["sites"]["bench"]["quantiles"].items():
        exact = float(np.quantile(batch_mids, float(q)))
        q_err[q] = abs(est - exact)
        assert q_err[q] <= bound, (q, est, exact, bound)
    return {
        "chunked_equals_batch": True,
        "high_watermark": ring["high_watermark"],
        "capacity": CAPACITY,
        "p2_bound_v": bound,
        "p2_abs_err_v": q_err,
        "events": snap["totals"]["events"],
    }


def run(*, smoke: bool = False, repeats: int = 3,
        out: str | None = None) -> dict[str, Any]:
    """Verify agreement, then time the streaming workload."""
    from repro.core.calibration import paper_design
    from repro.telemetry import synthetic_droop_trace

    design = paper_design()
    n_samples = 100_000 if smoke else 1_000_000
    times, volts, onsets = synthetic_droop_trace(
        n_samples=n_samples, dt=1e-9, n_droops=4, depth=0.15,
        noise_rms=5e-3, seed=2024,
    )

    agreement = _verify(design, times, volts)

    timing = time_workload(
        lambda: _stream(design, times, volts),
        repeats=repeats, points=n_samples,
    )
    # Decode-only timing isolates the kernel path from the Python-loop
    # aggregators (P²/EWMA/detector are inherently sequential).
    from repro.telemetry import batch_decode as _bd

    decode_timing = time_workload(
        lambda: _bd(_make_pipeline(design).ladder, volts),
        repeats=repeats, points=n_samples,
    )

    payload: dict[str, Any] = {
        "bench": "telemetry",
        "mode": "smoke" if smoke else "full",
        "trace": {
            "n_samples": n_samples,
            "dt_s": 1e-9,
            "n_droops": len(onsets),
            "noise_rms_v": 5e-3,
        },
        "pipeline": {
            "chunk": CHUNK,
            "capacity": CAPACITY,
            "block": BLOCK,
            "policy": "drop_oldest",
        },
        "agreement": agreement,
        "streaming": timing,
        "batch_decode_only": decode_timing,
    }
    write_bench_json("BENCH_telemetry", payload, out=out)

    rows = [
        ["streaming pipeline", f"{timing['best_s'] * 1e3:.1f}",
         f"{timing['points_per_s']:.3g}"],
        ["batch decode only", f"{decode_timing['best_s'] * 1e3:.1f}",
         f"{decode_timing['points_per_s']:.3g}"],
    ]
    emit("telemetry_perf", fmt_rows(
        ["workload", "best ms", "samples/s"], rows,
    ))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming telemetry throughput bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized trace (1e5 samples)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--assert-throughput", type=float, default=None,
                        metavar="SAMPLES_PER_S",
                        help="fail below this streaming rate")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_telemetry.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_throughput is not None:
        rate = payload["streaming"]["points_per_s"]
        if rate < args.assert_throughput:
            print(f"FAIL: {rate:.3g} samples/s below floor "
                  f"{args.assert_throughput:.3g}")
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_telemetry_perf_bench(benchmark, design):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    assert payload["agreement"]["chunked_equals_batch"]
    assert payload["agreement"]["high_watermark"] <= CAPACITY
    assert payload["streaming"]["points_per_s"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
