"""E7 — §III-B claim: "The critical path of the whole control system at
90nm is 1.22ns, thus it can work with most of the typical CUTs system
clock."

The bench runs the supply-aware STA engine over the gate-level control
netlist (FSM + counter + ENC) and reports the path, then re-times it
under a 5 % supply droop — the ref-[9]-style PSN-aware STA variant.
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.control import build_control_netlist
from repro.sta.analysis import analyze
from repro.sta.delay_calc import DelayCalculator
from repro.units import NS, to_ns, to_ps


def test_critical_path_1p22ns(benchmark, design):
    nl, _ = build_control_netlist(design)
    report = benchmark.pedantic(
        lambda: analyze(nl, clock_period=2 * NS), rounds=1, iterations=1,
    )
    rows = [
        [seg.instance, f"{seg.input_pin}->{seg.output_pin}",
         f"{to_ps(seg.delay):.1f}", f"{to_ps(seg.cumulative):.1f}"]
        for seg in report.critical_path
    ]
    emit("critical_path", fmt_rows(
        ["instance", "arc", "delay [ps]", "cumulative [ps]"], rows,
    ) + f"\nmin clock period: {to_ns(report.min_period):.4f} ns "
        f"(paper: 1.22 ns)"
        f"\nslack at a 2 ns (500 MHz) CUT clock: "
        f"{to_ps(report.wns):.1f} ps")
    assert report.min_period == pytest.approx(1.22 * NS, rel=0.02)
    assert report.wns > 0  # closes at the typical CUT clock


def test_critical_path_under_droop(benchmark, design):
    """PSN-aware STA: the same netlist timed at a 5 % drooped rail."""
    nl, _ = build_control_netlist(design)

    def run():
        nl.set_supply_waveform("VDD", 0.95)
        try:
            calc = DelayCalculator(nl)
            return analyze(nl, calculator=calc)
        finally:
            nl.set_supply_waveform("VDD", 1.0)

    drooped = benchmark.pedantic(run, rounds=1, iterations=1)
    nominal = analyze(nl)
    emit("critical_path_droop", fmt_rows(
        ["supply", "min period [ns]"],
        [["1.00 V", f"{to_ns(nominal.min_period):.4f}"],
         ["0.95 V", f"{to_ns(drooped.min_period):.4f}"]],
    ) + "\nshape: droop slows the control system, as ref [9]'s "
        "PSN-aware STA predicts")
    assert drooped.min_period > nominal.min_period
