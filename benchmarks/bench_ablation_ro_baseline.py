"""A2 — ring-oscillator baseline (ref [7]).

Paper §I on the RO approach: "it cannot distinguish between power and
ground voltage variations".  The bench pits the RO against the
thermometer's separated HS/LS arrays on three scenarios: clean rails, a
50 mV VDD droop, and a 50 mV ground bounce.  The RO reads the last two
identically; the thermometer attributes each to the right rail.
"""

from benchmarks._report import emit, fmt_rows
from repro.baselines.ring_oscillator import RingOscillatorSensor
from repro.core.array import SensorArray
from repro.core.sensor import SenseRail
from repro.units import NS


SCENARIOS = (
    ("clean", 1.00, 0.00),
    ("VDD droop 50 mV", 0.95, 0.00),
    ("GND bounce 50 mV", 1.00, 0.05),
)


def run_comparison(design):
    ro = RingOscillatorSensor(design.tech)
    hs = SensorArray(design, SenseRail.VDD)
    ls = SensorArray(design, SenseRail.GND)
    window = 200 * NS
    out = []
    for name, vdd, gnd in SCENARIOS:
        count = ro.count(window, vdd_n=vdd, gnd_n=gnd)
        ro_estimate = ro.estimate_supply(count, window)
        hs_word = hs.word_for(3, vdd_n=vdd)
        ls_word = ls.word_for(3, gnd_n=gnd)
        out.append((name, count, ro_estimate, hs_word, ls_word))
    return out


def test_ro_cannot_separate_rails(benchmark, design):
    results = benchmark.pedantic(lambda: run_comparison(design),
                                 rounds=1, iterations=1)
    rows = [
        [name, count, f"{est:.3f}", hs_word, ls_word]
        for name, count, est, hs_word, ls_word in results
    ]
    emit("ablation_ro_baseline", fmt_rows(
        ["scenario", "RO count", "RO 'VDD' estimate [V]",
         "thermometer HS word", "thermometer LS word"],
        rows,
    ) + "\nshape: RO reads droop and bounce identically (wrong rail "
        "blamed); the thermometer's HS word moves only on the droop "
        "and its LS word only on the bounce")
    clean, droop, bounce = results
    # RO conflates the two disturbances...
    assert droop[1] == bounce[1]
    # ...while the thermometer separates them.
    assert droop[3] != clean[3] and droop[4] == clean[4]
    assert bounce[4] != clean[4] and bounce[3] == clean[3]


def test_ro_averages_transients(benchmark, design):
    """A droop occupying half the counting window reads as a half-depth
    average — the RO smears events the thermometer samples."""
    from repro.sim.waveform import StepWaveform

    ro = RingOscillatorSensor(design.tech)
    window = 200 * NS

    def run():
        half_droop = StepWaveform(1.0, 0.9, 100 * NS)
        c = ro.count(window, vdd_n=half_droop)
        return ro.estimate_supply(c, window)

    smeared = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_ro_averaging",
         f"true rail: 1.00 V for 100 ns then 0.90 V for 100 ns\n"
         f"RO window-average estimate: {smeared:.3f} V\n"
         f"thermometer per-measure readings: 1.00 V measure -> "
         f"{SensorArray(design).word_for(3, vdd_n=1.0)}, 0.90 V "
         f"measure -> {SensorArray(design).word_for(3, vdd_n=0.9)}\n"
         "shape: RO reports neither level; the sampled thermometer "
         "reports both")
    assert 0.92 < smeared < 0.98
