"""Shared helpers for the reproduction benches.

Every bench prints the rows/series the paper reports *and* saves them
under ``benchmarks/reports/`` so the output survives pytest's stdout
capture.  Benches use ``benchmark.pedantic`` with a single round when
the measured function is a whole experiment (the timing numbers are
incidental; the scientific payload is the report).
"""

from __future__ import annotations

import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def emit(name: str, text: str) -> None:
    """Print a bench report and persist it to benchmarks/reports/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_rows(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width ASCII table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
