"""E9 — the GND-n characteristic the paper omits "for sake of brevity".

§III-A: "Similar characteristics have been generated for other delay
codes and for the GND-n measure, but not reported for sake of
brevity."  We generate it: the LOW-SENSE array's per-bit tolerable
ground-bounce thresholds for the three plotted codes, mirroring Fig. 5.
"""

import pytest

from benchmarks._report import emit, fmt_rows
from repro.core.characterization import characterize_bit_thresholds
from repro.core.sensor import SenseRail
from repro.units import to_mv


def run_gnd(design):
    return {
        code: characterize_bit_thresholds(design, code,
                                          rail=SenseRail.GND)
        for code in (1, 2, 3)
    }


def test_gnd_sense_characteristic(benchmark, design):
    tables = benchmark.pedantic(lambda: run_gnd(design),
                                rounds=1, iterations=1)
    rows = []
    for bit in range(1, design.n_bits + 1):
        rows.append([bit] + [
            f"{to_mv(tables[code][bit - 1]):+.1f}"
            for code in (1, 2, 3)
        ])
    emit("gnd_sense_characteristic", fmt_rows(
        ["bit", "code 001 [mV]", "code 010 [mV]", "code 011 [mV]"],
        rows,
    ) + "\n(tolerable GND-n rise per bit; negative = the stage already "
        "fails at a quiet ground, mirroring VDD thresholds above "
        "nominal)\nshape: complements the Fig. 5 VDD ladder: "
        "gnd* = vdd_nominal - vdd*")
    vdd_ts = characterize_bit_thresholds(design, 3)
    for g, v in zip(tables[3], vdd_ts):
        assert g == pytest.approx(design.tech.vdd_nominal - v, abs=1e-9)
    # Larger cap -> less tolerable bounce (descending per bit).
    assert all(b < a for a, b in zip(tables[3], tables[3][1:]))
