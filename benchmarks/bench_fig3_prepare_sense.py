"""E2 — Fig. 3: two PREPARE/SENSE measures.

Paper: "The first for a nominal VDD = 1V and the second for a
VDD = 0.95V ... the first measure gives a '1' while the second gives a
'0' as the set-up time is violated."
"""

from benchmarks._report import emit, fmt_rows
from repro.core.sensor import SensorBit, SensorBitHarness
from repro.sim.waveform import StepWaveform
from repro.units import NS, to_ps


def run_fig3(design):
    harness = SensorBitHarness(design, 5)  # threshold 0.992 V
    rail = StepWaveform(1.00, 0.95, 7 * NS)
    return harness.run_measures(3, [4 * NS, 10 * NS], vdd_n=rail)


def test_fig3_prepare_sense(benchmark, design):
    results = benchmark.pedantic(lambda: run_fig3(design),
                                 rounds=1, iterations=1)
    rows = []
    for k, (v, r) in enumerate(zip((1.00, 0.95), results), start=1):
        rows.append([
            k, f"{v:.2f}",
            f"{to_ps(r.ds_delay):.2f}",
            r.value,
            "respected" if r.passed else "violated",
        ])
    emit("fig3_prepare_sense", fmt_rows(
        ["measure", "VDD [V]", "DS delay [ps]", "OUT", "setup time"],
        rows,
    ) + "\npaper: first measure '1' (setup respected), second '0' "
        "(setup violated)")
    assert results[0].value == 1
    assert results[1].value == 0
