"""A9 — who tests the tester: fault screening coverage.

The paper positions the sensor as scan-chain-grade DFT infrastructure;
this bench turns the DFT lens back on the sensor.  Every stuck-at
fault on every stage is injected into the event-driven array (via the
simulator's force mechanism) and screened with the measurement
protocol's built-in checks plus the tester's expected-word check.
"""

from benchmarks._report import emit, fmt_rows
from repro.core.faults import FaultInjector, FaultType, coverage_study


def test_fault_screening_coverage(benchmark, design):
    cov = benchmark.pedantic(lambda: coverage_study(design),
                             rounds=1, iterations=1)
    rows = [[fault.value, f"{cov[fault.value]:.0%}"]
            for fault in FaultType]
    rows.append(["overall", f"{cov['overall']:.0%}"])
    emit("fault_coverage", fmt_rows(
        ["fault class (x 7 stages)", "detected"], rows,
    ) + "\nchecks: PREPARE all-fail word + SENSE bubble check "
        "(in-field) + expected word at two known tester levels"
        "\nshape: 100% stuck-at coverage with the two-level protocol; "
        "in-field checks alone miss a top stage stuck at fail")
    assert cov["overall"] == 1.0


def test_in_field_blind_spot(benchmark, design):
    """Quantify the in-field-only blind spot the reference check
    closes: a top stage stuck at fail reads as a valid lower word."""
    def run():
        injector = FaultInjector(design)
        injector.inject(FaultType.OUT_STUCK_FAIL, design.n_bits)
        high = design.bit_threshold(design.n_bits, 3) + 0.05
        in_field = injector.screen(vdd_n=high)
        tester = injector.screen(vdd_n=high, reference_level=high)
        return in_field, tester

    in_field, tester = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fault_blind_spot",
         f"fault: OUT stage 7 stuck at fail; rail above the ladder\n"
         f"in-field checks: PREPARE {in_field.prepare_word}, SENSE "
         f"{in_field.sense_word} -> detected={in_field.detected}\n"
         f"tester expected-word check -> detected={tester.detected}, "
         f"suspects={tester.suspect_bits}\n"
         "shape: the sensor's own telemetry cannot distinguish 'top "
         "stage dead' from 'supply a little lower'; a known reference "
         "level can")
    assert not in_field.detected
    assert tester.detected
