"""Monte-Carlo/transient kernel perf regression: BENCH_montecarlo.json.

Two workloads, each timed kernel-vs-scalar and cross-checked for
agreement *before* any timing (same gate-then-time pattern as
``bench_kernels.py``):

* ``s_curve_sweep`` — the Fig. 4/Fig. 5 statistical ladder sweep: an
  S-curve per stage, ``n_levels x n_per_level`` seeded noisy measures
  each.  Kernel path: one
  :func:`~repro.kernels.montecarlo.s_curve_trip_probability` call for
  the whole (bit x level x trial) draw cube.  Scalar oracle: the
  original per-draw loop (``measure_s_curve(method="scalar")``).  The
  two must agree *exactly* — same Generator streams under the
  ``MC_SEED_SCHEME`` spawn scheme, same elementwise pass/fail
  arithmetic — so the gate is float-for-float equality, not a
  tolerance.
* ``pdn_transient`` — a long droop trace through the lumped RLC PDN.
  Kernel path: exact-ZOH stepping
  (:func:`~repro.kernels.transient.step_rail`).  Scalar oracle: the
  trapezoidal Python loop (``PDNModel.simulate(method="trapezoid")``).
  Both discretize the same continuous system, so they differ by the
  input-hold skew, bounded by ``0.5 * omega * dt`` of the rail swing
  per step; the gate asserts that documented tolerance.

Run standalone (``python -m benchmarks.bench_montecarlo`` or
``repro bench montecarlo``) with ``--smoke`` for CI-sized workloads
and ``--assert-speedup N`` to enforce a floor; the JSON lands in
``benchmarks/reports/BENCH_montecarlo.json`` and, with ``--out``, at a
tracked path (the repo commits ``BENCH_montecarlo.json`` at the root).
"""

from __future__ import annotations

import argparse
import math
from typing import Any

import numpy as np

from benchmarks._perf import time_workload, write_bench_json
from benchmarks._report import emit, fmt_rows


def _s_curve_scalar(design, seeds, *, noise_rms, code, n_levels,
                    n_per_level):
    from repro.analysis.repeatability import measure_s_curve

    return [
        measure_s_curve(design, bit, noise_rms=noise_rms, code=code,
                        n_levels=n_levels, n_per_level=n_per_level,
                        seed=seeds[bit - 1], method="scalar")
        for bit in range(1, design.n_bits + 1)
    ]


def _s_curve_kernel(design, seeds, *, noise_rms, code, n_levels,
                    n_per_level):
    from repro.kernels.montecarlo import s_curve_trip_probability

    return s_curve_trip_probability(
        design, code=code, noise_rms=noise_rms,
        n_per_level=n_per_level, seeds=seeds, n_levels=n_levels,
    )


def _check_s_curves(design, seeds, **kw) -> None:
    """Kernel probabilities must equal the scalar oracle exactly."""
    curves = _s_curve_scalar(design, seeds, **kw)
    levels, probs = _s_curve_kernel(design, seeds, **kw)
    for bit, curve in enumerate(curves, start=1):
        assert tuple(float(v) for v in levels[bit - 1]) == curve.levels
        assert tuple(float(p) for p in probs[bit - 1]) \
            == curve.pass_probability, f"bit {bit} probs drifted"


def _pdn_load(n: int, dt: float) -> np.ndarray:
    """A busy synthetic CUT draw: step bursts riding on a tone."""
    t = np.arange(n + 1) * dt
    burst = ((t * 7e6) % 1.0 < 0.4).astype(float) * 2.0
    return burst + 1.0 + 0.5 * np.sin(2.0 * np.pi * 31e6 * t)


def _pdn_scalar(model, i_samples, *, t_end, dt):
    return model.simulate(i_samples, t_end=t_end, dt=dt,
                          method="trapezoid")


def _pdn_kernel(model, i_samples, *, t_end, dt):
    return model.simulate(i_samples, t_end=t_end, dt=dt, method="lti")


def _check_pdn(model, i_samples, *, t_end, dt) -> tuple[float, float]:
    """LTI-vs-trapezoid skew must stay under the documented bound.

    Returns ``(max_abs_delta, tolerance)`` — both in volts.
    """
    trap = _pdn_scalar(model, i_samples, t_end=t_end, dt=dt)
    lti = _pdn_kernel(model, i_samples, t_end=t_end, dt=dt)
    delta = float(np.max(np.abs(trap.values - lti.values)))
    swing = float(trap.values.max() - trap.values.min())
    omega = 2.0 * math.pi * model.params.resonant_frequency
    tol = 0.5 * omega * dt * max(swing, 1e-6)
    assert delta <= tol, (
        f"LTI drifted from trapezoid oracle: {delta:.3e} V > "
        f"bound {tol:.3e} V"
    )
    return delta, tol


def run(*, smoke: bool = False, repeats: int = 3,
        out: str | None = None) -> dict[str, Any]:
    """Time both workloads both ways; return (and persist) the report."""
    from repro.core.calibration import paper_design
    from repro.kernels import KERNEL_LAYOUT_VERSION
    from repro.kernels.montecarlo import MC_SEED_SCHEME, spawn_bit_seeds
    from repro.psn.pdn import PDNModel, PDNParameters

    design = paper_design()
    sweep = {
        "noise_rms": 5e-3,
        "code": 3,
        "n_levels": 9 if smoke else 17,
        "n_per_level": 40 if smoke else 250,
    }
    seeds = spawn_bit_seeds(2024, design.n_bits)

    params = PDNParameters()
    model = PDNModel(params)
    n_steps = 50_000 if smoke else 1_000_000
    dt = 0.04 / params.resonant_frequency
    t_end = n_steps * dt
    i_samples = _pdn_load(n_steps, dt)

    _check_s_curves(design, seeds, **sweep)
    pdn_delta, pdn_tol = _check_pdn(model, i_samples, t_end=t_end, dt=dt)

    sweep_points = design.n_bits * sweep["n_levels"] * sweep["n_per_level"]
    workloads = {
        "s_curve_sweep": {
            "scalar": time_workload(
                lambda: _s_curve_scalar(design, seeds, **sweep),
                repeats=repeats, points=sweep_points,
            ),
            "kernel": time_workload(
                lambda: _s_curve_kernel(design, seeds, **sweep),
                repeats=repeats, points=sweep_points,
            ),
            "grid": {"bits": design.n_bits,
                     "levels": sweep["n_levels"],
                     "trials": sweep["n_per_level"]},
            "agreement": "exact",
        },
        "pdn_transient": {
            "scalar": time_workload(
                lambda: _pdn_scalar(model, i_samples,
                                    t_end=t_end, dt=dt),
                repeats=repeats, points=n_steps,
            ),
            "kernel": time_workload(
                lambda: _pdn_kernel(model, i_samples,
                                    t_end=t_end, dt=dt),
                repeats=repeats, points=n_steps,
            ),
            "grid": {"steps": n_steps, "dt_s": dt},
            "agreement": "zoh-vs-trapezoid skew",
            "max_abs_delta_v": pdn_delta,
            "tolerance_v": pdn_tol,
        },
    }
    for w in workloads.values():
        w["speedup"] = w["scalar"]["best_s"] / w["kernel"]["best_s"]

    payload: dict[str, Any] = {
        "bench": "montecarlo",
        "kernel_layout": KERNEL_LAYOUT_VERSION,
        "seed_scheme": MC_SEED_SCHEME,
        "mode": "smoke" if smoke else "full",
        "workloads": workloads,
    }
    write_bench_json("BENCH_montecarlo", payload, out=out)

    rows = [
        [name,
         f"{w['scalar']['best_s'] * 1e3:.1f}",
         f"{w['kernel']['best_s'] * 1e3:.1f}",
         f"{w['speedup']:.1f}x",
         f"{w['kernel']['points_per_s']:.3g}",
         w["agreement"]]
        for name, w in workloads.items()
    ]
    emit("montecarlo_perf", fmt_rows(
        ["workload", "scalar ms", "kernel ms", "speedup",
         "kernel pts/s", "agreement"], rows,
    ))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Monte-Carlo/transient kernel vs scalar-oracle bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads (fast)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every workload beats X times "
                             "the scalar oracle")
    parser.add_argument("--out", default=None,
                        help="extra path to mirror BENCH_montecarlo.json "
                             "to (e.g. the tracked repo-root copy)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke, repeats=args.repeats, out=args.out)
    if args.assert_speedup is not None:
        slow = {
            name: w["speedup"]
            for name, w in payload["workloads"].items()
            if w["speedup"] < args.assert_speedup
        }
        if slow:
            print(f"FAIL: speedup floor {args.assert_speedup}x not met: "
                  + ", ".join(f"{n}={s:.1f}x" for n, s in slow.items()))
            return 1
    return 0


# -- pytest wrapper (runs with `pytest benchmarks`) -----------------------


def test_montecarlo_perf_bench(benchmark, design):
    payload = benchmark.pedantic(
        lambda: run(smoke=True, repeats=1), rounds=1, iterations=1,
    )
    for name, w in payload["workloads"].items():
        assert w["speedup"] > 1.0, (name, w["speedup"])
    pdn = payload["workloads"]["pdn_transient"]
    assert pdn["max_abs_delta_v"] <= pdn["tolerance_v"]


if __name__ == "__main__":
    raise SystemExit(main())
