"""A7 — overhead accounting and simulation cost.

Paper abstract: "The sensor system shows very low overhead in terms of
power and area".  Without a layout we account overhead the way the
reproduction can: standard-cell counts of each block (the area proxy),
plus the event-simulation cost of a measurement burst (the engine's
throughput for users scaling the harness up).
"""

from benchmarks._report import emit, fmt_rows
from repro.core.control import build_control_netlist
from repro.core.pulsegen import build_pg_netlist
from repro.core.system import SensorSystem


def test_cell_count_overhead(benchmark, design):
    def run():
        system = SensorSystem(design)
        return system.cell_stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    pg_nl, _ = build_pg_netlist(design)
    ctl_nl, _ = build_control_netlist(design)
    rows = [
        ["sensor arrays (HS+LS: INV+FF)", 2 * 2 * design.n_bits],
        ["pulse generators (2x)", pg_nl.stats()["#instances"] * 2],
        ["CP routes", 2],
        ["control system (FSM+counter+ENC)",
         ctl_nl.stats()["#instances"]],
    ]
    total = sum(r[1] for r in rows)
    rows.append(["TOTAL standard cells", total])
    emit("overhead_cells", fmt_rows(["block", "cells"], rows)
         + "\nshape: a ~200-cell sensor system — negligible against "
           "any realistic CUT (the paper's 'very low overhead'), and "
           "per-point replication adds only the 14-cell INV+FF array")
    assert total < 400
    # Replicating a measurement point costs only one array.
    assert 2 * design.n_bits == 14


def test_measurement_burst_cost(benchmark, design):
    """Event count and wall time of a 10-measure burst — the number a
    user sizing a many-point scan chain cares about."""
    system = SensorSystem(design, include_ls=False)

    def run():
        return system.run(10, vdd_n=0.97)

    result = benchmark(run)
    emit("overhead_simulation",
         f"10-measure burst: {result.events_processed} events, "
         f"{len(result.hs)} decoded measures\n"
         f"(timing statistics in the pytest-benchmark table)")
    assert len(result.hs) == 10
    assert result.events_processed < 10_000


def test_power_overhead(benchmark, design):
    """Measured switching energy of the sensor — the paper's 'very low
    overhead in terms of power', quantified by the engine's 1/2*C*V^2
    accounting."""
    system = SensorSystem(design, include_ls=False)

    def run():
        return system.run(10, vdd_n=1.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    energy = result.switching_energy
    duration = result.schedule.end_time
    per_measure = energy / 10
    burst_power = energy / duration
    duty_power_1mhz = per_measure * 1e6  # one measure every 1 us
    emit("overhead_power",
         f"10-measure burst: {energy * 1e12:.1f} pJ total, "
         f"{per_measure * 1e12:.1f} pJ per measure\n"
         f"average power during burst: {burst_power * 1e3:.2f} mW\n"
         f"duty-cycled at 1 Msample/s: {duty_power_1mhz * 1e6:.1f} uW\n"
         "shape: dominated by the pF-scale trim caps (the paper's own "
         "sizing); microwatt-class at realistic monitoring rates — "
         "negligible against any CUT")
    assert 5e-12 < per_measure < 100e-12
    assert duty_power_1mhz < 100e-6
