"""Full sensor-system tests (Fig. 6 assembly, Fig. 9 behaviour)."""

import pytest

from repro.core.sensor import SenseRail
from repro.core.system import SensorSystem
from repro.devices.corners import corner_by_name
from repro.errors import ConfigurationError
from repro.sim.waveform import StepWaveform, SumWaveform, ConstantWaveform, DampedSineWaveform
from repro.units import NS


@pytest.fixture(scope="module")
def system(design):
    return SensorSystem(design)


def test_fig9_sequence(system):
    wf = StepWaveform(1.0, 0.9, 16 * NS)
    run = system.run(2, vdd_n=wf)
    assert run.hs[0].word.to_string() == "0011111"
    assert run.hs[1].word.to_string() == "0000011"


def test_fig9_decoded_ranges(system):
    wf = StepWaveform(1.0, 0.9, 16 * NS)
    run = system.run(2, vdd_n=wf)
    r1, r2 = run.hs[0].decoded, run.hs[1].decoded
    assert (r1.lo, r1.hi) == (pytest.approx(0.992, abs=5e-4),
                              pytest.approx(1.021, abs=5e-4))
    assert (r2.lo, r2.hi) == (pytest.approx(0.896, abs=5e-4),
                              pytest.approx(0.929, abs=5e-4))


def test_prepare_word_all_zero(system):
    """Fig. 9: 'during the PREPARE phase the sensor output is
    0000000'."""
    run = system.run(1, vdd_n=1.0)
    assert run.hs[0].prepare_word == "0000000"


def test_oute_encoding(system):
    run = system.run(1, vdd_n=1.0)
    assert run.hs[0].encoded.oute == 5
    assert run.hs[0].encoded.valid


def test_ls_chain_reads_ground(system):
    run = system.run(1, gnd_n=0.05)
    assert run.ls[0].decoded.contains(0.05)


def test_hs_ls_isolation(system):
    """Ground bounce must NOT disturb the HS reading and vice versa —
    the separation argument of Fig. 6."""
    clean = system.run(1, vdd_n=1.0, gnd_n=0.0)
    bounced = system.run(1, vdd_n=1.0, gnd_n=0.06)
    assert clean.hs[0].word == bounced.hs[0].word
    assert clean.ls[0].word != bounced.ls[0].word


def test_decoded_ranges_bracket_truth(system):
    for v in (0.87, 0.93, 1.01):
        run = system.run(1, vdd_n=v)
        assert run.hs[0].decoded.contains(v), f"at {v}"


def test_different_codes_for_hs_ls(system):
    run = system.run(1, code_hs=3, code_ls=2, vdd_n=0.97)
    assert run.hs[0].decoded.contains(0.97)


def test_measure_times_spaced_by_fsm(system):
    run = system.run(3, vdd_n=1.0)
    times = [m.time for m in run.hs]
    diffs = [b - a for a, b in zip(times, times[1:])]
    assert all(d == pytest.approx(4 * system.clock_period)
               for d in diffs)


def test_droop_event_detected_mid_burst(design):
    """A resonant droop between measures shows up in exactly the
    measures that overlap it."""
    system = SensorSystem(design, include_ls=False)
    droop = SumWaveform([
        ConstantWaveform(1.0),
        DampedSineWaveform(base=0.0, amplitude=-0.12, freq=30e6,
                           decay=15 * NS, t0=18 * NS),
    ])
    run = system.run(4, vdd_n=droop)
    readings = [m.decoded.midpoint for m in run.hs]
    assert min(readings[1:3]) < readings[0] - 0.02


def test_code_out_of_range_rejected(system):
    with pytest.raises(ConfigurationError):
        system.run(1, code_hs=8)


def test_nonpositive_measures_rejected(system):
    with pytest.raises(ConfigurationError):
        system.run(0)


def test_clock_period_minimum_enforced(design):
    with pytest.raises(ConfigurationError):
        SensorSystem(design, clock_period=0.2 * NS)


def test_hs_only_system(design):
    system = SensorSystem(design, include_ls=False)
    run = system.run(1, vdd_n=0.95)
    assert run.ls == ()
    assert run.hs[0].decoded.contains(0.95)


def test_corner_system_still_brackets(design):
    """At a process corner, the corner-characterized decode still
    brackets the true supply (sim and analytic shift together)."""
    ss = corner_by_name("SS").apply(design.tech)
    system = SensorSystem(design, tech=ss, include_ls=False)
    run = system.run(1, vdd_n=0.95)
    assert run.hs[0].decoded.contains(0.95)


def test_cell_stats_accounting(system):
    stats = system.cell_stats()
    assert stats["Inverter"] == 14  # 7 HS + 7 LS sensor INVs
    assert stats["DFlipFlop"] == 14
    assert stats["#instances"] > 50
