"""Zero-copy shared-memory broadcast: equivalence and accounting.

The shm layer's contract is *bit-identity with degradation*: a task
sees the same bytes whether the array rode a POSIX shared block, an
inline pickle fallback, or a serial read-only view.  These tests pin
the round trip, every fallback path, the counters, and the wiring
through ``map_tasks``/``resilient_map`` and the service job executor.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime import shm as shm_mod
from repro.runtime.cache import ResultCache
from repro.runtime.executor import map_tasks
from repro.runtime.shm import (
    SharedArrayHandle,
    SharedArrayPool,
    SharedTask,
    resolve_handle,
    shm_counters,
    shm_enabled,
)


# -- module-level task callables (pool workers need picklable fns) ----


def _dot_task(payload, arrays):
    """Reduce the broadcast matrix against a per-task vector."""
    idx = payload["row"]
    return float(arrays["mat"][idx] @ arrays["vec"])


def _sum_task(payload, arrays):
    return float(payload + np.sum(arrays["data"]))


def _flaky_task(payload, arrays):
    if payload == 2:
        raise ValueError("die 2 is cursed")
    return float(arrays["data"][payload])


def _cache_stats_task(root):
    """Miss + put + hit inside a pool worker, with an explicit flush.

    ``atexit`` is not guaranteed to run in pool workers torn down by
    the executor, so the worker flushes its counters itself — exactly
    what long-lived service workers do.
    """
    cache = ResultCache(root)
    key = "shm-stats-probe"
    hit, _ = cache.get(key)  # miss
    cache.put(key, 42)
    hit2, value = cache.get(key)  # hit
    cache.flush_stats()
    return (hit, hit2, value)


# -- handle round trip -------------------------------------------------


class TestSharedArrayPool:
    def test_round_trip_bit_identical(self):
        arrays = {
            "a": np.arange(12.0).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int32),
        }
        with SharedArrayPool(arrays) as pool:
            for key, src in arrays.items():
                view = resolve_handle(pool.handles[key])
                assert view.shape == src.shape
                assert view.dtype == src.dtype
                np.testing.assert_array_equal(view, src)

    def test_views_are_read_only(self):
        with SharedArrayPool({"a": np.ones(4)}) as pool:
            view = resolve_handle(pool.handles["a"])
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 99.0

    def test_blocks_unlinked_on_exit(self):
        with SharedArrayPool({"a": np.ones(64)}) as pool:
            handle = pool.handles["a"]
        if handle.name is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=handle.name)

    def test_empty_array_rides_inline(self):
        with SharedArrayPool({"a": np.empty(0)}) as pool:
            handle = pool.handles["a"]
            assert handle.name is None
            assert resolve_handle(handle).size == 0

    def test_counters_account_blocks_and_avoided_bytes(self):
        before = shm_counters()
        arr = np.arange(1000.0)
        with SharedArrayPool({"a": arr}) as pool:
            assert pool.shared_bytes == arr.nbytes
            pool.charge_tasks(11)
        after = shm_counters()
        assert after["blocks"] - before["blocks"] == 1
        assert after["bytes_shared"] - before["bytes_shared"] \
            == arr.nbytes
        # shared once, would have been pickled 11 times: 10 avoided.
        assert after["bytes_avoided"] - before["bytes_avoided"] \
            == arr.nbytes * 10

    def test_charge_single_task_avoids_nothing(self):
        before = shm_counters()["bytes_avoided"]
        with SharedArrayPool({"a": np.ones(16)}) as pool:
            pool.charge_tasks(1)
        assert shm_counters()["bytes_avoided"] == before


class TestDegradation:
    def test_env_kill_switch_forces_inline(self, monkeypatch):
        monkeypatch.setenv(shm_mod.SHM_ENV, "0")
        assert not shm_enabled()
        before = shm_counters()
        with SharedArrayPool({"a": np.arange(5.0)}) as pool:
            handle = pool.handles["a"]
            assert handle.name is None
            assert handle.inline is not None
            np.testing.assert_array_equal(
                resolve_handle(handle), np.arange(5.0)
            )
        after = shm_counters()
        assert after["fallbacks"] - before["fallbacks"] == 1
        assert after["blocks"] == before["blocks"]

    @pytest.mark.parametrize("raw", ["off", "false", "no"])
    def test_kill_switch_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(shm_mod.SHM_ENV, raw)
        assert not shm_enabled()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(shm_mod.SHM_ENV, raising=False)
        assert shm_enabled()

    def test_allocation_failure_falls_back_per_array(self, monkeypatch):
        """A block that fails to allocate rides inline; the campaign
        still runs with identical bytes."""

        class _Boom:
            def __init__(self, *a, **kw):
                raise OSError("no shm for you")

        monkeypatch.setattr(shm_mod._shm, "SharedMemory", _Boom)
        before = shm_counters()["fallbacks"]
        arr = np.arange(7.0)
        with SharedArrayPool({"a": arr}) as pool:
            handle = pool.handles["a"]
            assert handle.name is None
            np.testing.assert_array_equal(resolve_handle(handle), arr)
        assert shm_counters()["fallbacks"] == before + 1

    def test_inline_handle_view_read_only(self):
        handle = SharedArrayHandle(name=None, shape=(3,), dtype="<f8",
                                   inline=np.ones(3))
        view = resolve_handle(handle)
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 5.0


class TestSharedTask:
    def test_pickles_small_regardless_of_array_size(self):
        big = np.zeros(200_000)  # 1.6 MB
        with SharedArrayPool({"data": big}) as pool:
            if pool.handles["data"].name is None:
                pytest.skip("shared memory unavailable on this host")
            task = SharedTask(_sum_task, pool.handles)
            assert len(pickle.dumps(task)) < 2000

    def test_calls_fn_with_resolved_arrays(self):
        with SharedArrayPool({"data": np.arange(4.0)}) as pool:
            task = SharedTask(_sum_task, pool.handles)
            assert task(10.0) == 10.0 + 6.0


# -- map_tasks wiring --------------------------------------------------


class TestMapTasksShared:
    def _expected(self, mat, vec):
        return [float(mat[i] @ vec) for i in range(mat.shape[0])]

    def test_serial_shared_views(self):
        rng = np.random.default_rng(7)
        mat = rng.normal(size=(6, 5))
        vec = rng.normal(size=5)
        got = map_tasks(_dot_task, [{"row": i} for i in range(6)],
                        workers=1, shared={"mat": mat, "vec": vec})
        assert got == self._expected(mat, vec)

    def test_pool_bit_identical_to_serial(self):
        rng = np.random.default_rng(11)
        mat = rng.normal(size=(8, 16))
        vec = rng.normal(size=16)
        payloads = [{"row": i} for i in range(8)]
        serial = map_tasks(_dot_task, payloads, workers=1,
                           shared={"mat": mat, "vec": vec})
        pooled = map_tasks(_dot_task, payloads, workers=2,
                           shared={"mat": mat, "vec": vec})
        assert pooled == serial

    def test_pool_with_kill_switch_still_identical(self, monkeypatch):
        monkeypatch.setenv(shm_mod.SHM_ENV, "0")
        rng = np.random.default_rng(13)
        mat = rng.normal(size=(4, 3))
        vec = rng.normal(size=3)
        got = map_tasks(_dot_task, [{"row": i} for i in range(4)],
                        workers=2, shared={"mat": mat, "vec": vec})
        assert got == self._expected(mat, vec)

    def test_resilient_partial_with_shared(self):
        data = np.arange(5.0)
        outcome = map_tasks(_flaky_task, list(range(5)), workers=2,
                            retries=0, failure_policy="partial",
                            shared={"data": data})
        assert outcome.results[2] is None
        assert [r for i, r in enumerate(outcome.results) if i != 2] \
            == [0.0, 1.0, 3.0, 4.0]
        assert len(outcome.failures) == 1
        assert outcome.failures[0].index == 2


# -- service wiring ----------------------------------------------------


class TestServiceShm:
    def test_execute_job_resolves_levels_handle(self):
        from repro.service.fleet import execute_job

        levels = [1.08, 1.10, 1.12]
        baseline = execute_job({
            "kind": "measure", "params": {"levels": levels, "code": 3},
        })
        with SharedArrayPool({"levels": np.asarray(levels)}) as pool:
            via_shm = execute_job({
                "kind": "measure", "params": {"code": 3},
                "levels_shm": pool.handles["levels"],
            })
        assert via_shm["measures"] == baseline["measures"]


# -- cache lifetime stats across pool workers --------------------------


class TestCacheLifetimeStats:
    def test_pool_worker_stats_aggregate(self, tmp_path):
        root = str(tmp_path / "cache")
        outcomes = map_tasks(_cache_stats_task, [root, root, root],
                             workers=2)
        # later tasks may hit the first writer's entry on their first
        # get; everyone sees the value on the second.
        assert all(o[1:] == (True, 42) for o in outcomes)
        fresh = ResultCache(root)
        lifetime = fresh.lifetime_stats()
        assert lifetime["hits"] >= 3
        assert lifetime["misses"] >= 1  # first writer misses for sure
        assert "lifetime" in fresh.stats()

    def test_lifetime_includes_unflushed_local_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.get("nope")  # unflushed miss
        assert cache.lifetime_stats()["misses"] >= 1

    def test_lifetime_survives_torn_log_line(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.get("nope")
        cache.flush_stats()
        log = tmp_path / "c" / "_stats.log"
        log.write_text(log.read_text() + "garbage not numbers\n")
        assert ResultCache(str(tmp_path / "c")) \
            .lifetime_stats()["misses"] >= 1
