"""Structural-Razor tests: the event-driven stage matches the analytic
model."""

import pytest

from repro.baselines.razor import RazorHarness, RazorOutcome, RazorStage
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def harness(design):
    return RazorHarness(design.tech)


@pytest.fixture(scope="module")
def analytic(design, harness):
    """Analytic stage parameterized from the measured structural path."""
    ff = harness.netlist.instances["ff_main"].cell
    return RazorStage(
        design.tech,
        path_delay_nominal=harness.path_delay_nominal(),
        clock_period=harness.clock_period,
        delta=harness.delta,
        setup_time=ff.setup_time,
    )


def test_no_error_at_nominal(harness):
    assert harness.observe(1.0).outcome is RazorOutcome.NO_ERROR


def test_detects_deep_droop(harness):
    assert harness.observe(0.80).outcome is RazorOutcome.DETECTED_ERROR


def test_silent_failure_below_shadow(harness, analytic):
    lo, _ = analytic.detection_window()
    obs = harness.observe(lo - 0.03)
    assert obs.outcome is RazorOutcome.UNDETECTED_FAILURE


def test_path_delay_matches_analytic(harness, analytic):
    for v in (1.0, 0.9, 0.8):
        assert harness.observe(v).path_delay == pytest.approx(
            analytic.path_delay(v), rel=1e-6
        )


def test_outcomes_match_analytic_across_sweep(harness, analytic):
    """The two views classify every probed supply identically (away
    from the metastable boundaries)."""
    for v in (1.0, 0.9, 0.84, 0.80, 0.76, 0.70):
        structural = harness.observe(v).outcome
        model = analytic.observe(v).outcome
        assert structural is model, f"at {v} V"


def test_error_flag_is_xor_of_captures(harness, analytic):
    t = analytic.error_threshold()
    obs = harness.observe(t - 0.01)
    assert obs.outcome is RazorOutcome.DETECTED_ERROR


def test_harness_validation(design):
    with pytest.raises(ConfigurationError):
        RazorHarness(design.tech, n_stages=3)  # odd
    with pytest.raises(ConfigurationError):
        RazorHarness(design.tech, n_stages=0)
