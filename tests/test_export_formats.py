"""VCD, Verilog and Liberty exporter tests."""

import io

import pytest

from repro.cells.liberty import write_liberty
from repro.cells.library import default_library
from repro.core.control import build_control_netlist
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.trace import Trace
from repro.sim.vcd import write_vcd
from repro.sim.verilog import write_verilog
from repro.units import NS


def simple_trace():
    t = Trace()
    t.record("a", 0.0, 0)
    t.record("b", 0.0, None)
    t.record("a", 1 * NS, 1)
    t.record("b", 1.5 * NS, 1)
    t.record("a", 2 * NS, 0)
    return t


# -- VCD ------------------------------------------------------------------

def test_vcd_header_and_vars():
    buf = io.StringIO()
    write_vcd(simple_trace(), buf)
    text = buf.getvalue()
    assert "$timescale 1 fs $end" in text
    assert "$var wire 1" in text
    assert " a $end" in text and " b $end" in text
    assert "$enddefinitions $end" in text


def test_vcd_initial_values_in_dumpvars():
    buf = io.StringIO()
    write_vcd(simple_trace(), buf)
    text = buf.getvalue()
    dump = text.split("$dumpvars")[1].split("$end")[0]
    assert "0" in dump  # a starts low
    assert "x" in dump  # b starts unknown


def test_vcd_ticks_in_femtoseconds():
    buf = io.StringIO()
    write_vcd(simple_trace(), buf)
    assert "#1000000\n" in buf.getvalue()  # 1 ns = 1e6 fs
    assert "#1500000\n" in buf.getvalue()


def test_vcd_net_selection():
    buf = io.StringIO()
    n = write_vcd(simple_trace(), buf, nets=["a"])
    assert " b $end" not in buf.getvalue()
    assert n == 3  # initial + two changes


def test_vcd_unknown_net_rejected():
    with pytest.raises(ConfigurationError):
        write_vcd(simple_trace(), io.StringIO(), nets=["zz"])


def test_vcd_timescale_validated():
    with pytest.raises(ConfigurationError):
        write_vcd(simple_trace(), io.StringIO(), timescale=0.0)


def test_vcd_from_real_simulation(design):
    from repro.core.sensor import SensorBitHarness

    h = SensorBitHarness(design, 1)
    h.bind_rails(vdd_n=0.95)
    engine = SimulationEngine(h.netlist)
    engine.set_initial("P", 1)
    engine.set_initial("CP", 0)
    engine.settle()
    engine.set_initial("OUT", 0)
    engine.schedule_stimulus("P", 0, 4 * NS)
    engine.schedule_stimulus("CP", 1, 4 * NS + 65e-12)
    engine.run(6 * NS)
    buf = io.StringIO()
    changes = write_vcd(engine.trace, buf)
    assert changes >= 8
    assert "DS" in buf.getvalue()


# -- Verilog ---------------------------------------------------------------

def test_verilog_control_netlist_exports(design):
    nl, _ = build_control_netlist(design)
    buf = io.StringIO()
    count = write_verilog(nl, buf)
    text = buf.getvalue()
    assert count == nl.stats()["#instances"]
    assert "module control_system (" in text
    assert "endmodule" in text
    assert "DFF" in text and "XOR2" in text


def test_verilog_ports_are_external_inputs(design):
    nl, ports = build_control_netlist(design)
    buf = io.StringIO()
    write_verilog(nl, buf)
    text = buf.getvalue()
    assert f"input  wire {ports.clock}" in text
    assert f"input  wire {ports.enable}" in text


def test_verilog_primitives_emitted(design):
    nl, _ = build_control_netlist(design)
    buf = io.StringIO()
    write_verilog(nl, buf)
    text = buf.getvalue()
    assert "module DFF (" in text
    assert "always @(posedge CP) Q <= D;" in text
    assert "module AND2 (" in text


def test_verilog_primitives_suppressed(design):
    nl, _ = build_control_netlist(design)
    buf = io.StringIO()
    write_verilog(nl, buf, emit_primitives=False)
    assert "module DFF (" not in buf.getvalue()


def test_verilog_sanitizes_names():
    from repro.cells.combinational import Inverter
    from repro.devices.technology import TECH_90NM

    nl = Netlist("weird design!")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a.in")
    nl.add_net("1out")
    nl.mark_external_input("a.in")
    nl.add_instance("u-1", Inverter(TECH_90NM),
                    {"A": "a.in", "Y": "1out"}, vdd="VDD", gnd="GND")
    buf = io.StringIO()
    write_verilog(nl, buf)
    text = buf.getvalue()
    assert "a_in" in text
    assert "n_1out" in text
    assert "u_1" in text


# -- Liberty -----------------------------------------------------------------

@pytest.fixture(scope="module")
def liberty_text(design):
    buf = io.StringIO()
    lib = default_library(design.tech)
    write_liberty(lib, buf, strengths=(1.0,),
                  supplies=[0.8, 0.9, 1.0, 1.1, 1.2])
    return buf.getvalue()


def test_liberty_header(liberty_text, design):
    assert 'library ("repro90")' in liberty_text
    assert "delay_model : table_lookup;" in liberty_text
    assert f"nom_voltage : {design.tech.vdd_nominal:.3f};" \
        in liberty_text


def test_liberty_all_cells_present(liberty_text):
    for cell in ("INV", "NAND2", "MUX2", "DFF"):
        assert f'cell ("{cell}_X1")' in liberty_text


def test_liberty_tables_have_axes(liberty_text):
    assert "index_1" in liberty_text
    assert "index_2" in liberty_text
    assert "values (" in liberty_text


def test_liberty_ff_constraints(liberty_text):
    assert "setup:" in liberty_text
    assert "hold:" in liberty_text
    assert "clock : true;" in liberty_text


def test_liberty_strength_suffixes(design):
    buf = io.StringIO()
    write_liberty(default_library(design.tech), buf,
                  strengths=(1.0, 2.0),
                  supplies=[0.9, 1.0, 1.1])
    text = buf.getvalue()
    assert 'cell ("INV_X1")' in text
    assert 'cell ("INV_X2")' in text


def test_liberty_empty_strengths_rejected(design):
    with pytest.raises(ConfigurationError):
        write_liberty(default_library(design.tech), io.StringIO(),
                      strengths=())
