"""Statistical process-variation tests."""

import numpy as np
import pytest

from repro.devices.technology import TECH_90NM
from repro.devices.variation import VariationModel, VariationSample
from repro.errors import ConfigurationError


@pytest.fixture()
def model():
    return VariationModel()


def test_sample_deterministic_for_seed(model):
    a = model.sample_die(7, seed=42)
    b = model.sample_die(7, seed=42)
    assert a == b


def test_different_seeds_differ(model):
    a = model.sample_die(7, seed=1)
    b = model.sample_die(7, seed=2)
    assert a != b


def test_sample_instance_count(model):
    s = model.sample_die(7, seed=0)
    assert s.n_instances == 7
    assert len(s.instance_drive_scales) == 7


def test_zero_instances_allowed(model):
    s = model.sample_die(0, seed=0)
    assert s.n_instances == 0


def test_negative_instances_rejected(model):
    with pytest.raises(ConfigurationError):
        model.sample_die(-1, seed=0)


def test_technology_for_applies_both_components(model):
    s = model.sample_die(3, seed=5)
    t = s.technology_for(TECH_90NM, 0)
    expected_vth = (TECH_90NM.vth + s.die_vth_shift
                    + s.instance_vth_shifts[0])
    assert t.vth == pytest.approx(expected_vth)


def test_technology_for_out_of_range(model):
    s = model.sample_die(3, seed=5)
    with pytest.raises(ConfigurationError):
        s.technology_for(TECH_90NM, 3)


def test_die_technology_ignores_instances(model):
    s = model.sample_die(3, seed=5)
    t = s.die_technology(TECH_90NM)
    assert t.vth == pytest.approx(TECH_90NM.vth + s.die_vth_shift)


def test_clipping_bounds_shifts():
    m = VariationModel(clip_sigmas=2.0)
    shifts = [m.sample_die(1, seed=k).die_vth_shift for k in range(200)]
    assert max(abs(s) for s in shifts) <= 2.0 * m.sigma_vth_inter + 1e-12


def test_lot_sampling_decorrelated(model):
    lot = model.sample_lot(5, 7, seed=3)
    assert len(lot) == 5
    shifts = [d.die_vth_shift for d in lot]
    assert len(set(shifts)) == 5  # all distinct


def test_lot_deterministic(model):
    a = model.sample_lot(3, 2, seed=9)
    b = model.sample_lot(3, 2, seed=9)
    assert a == b


def test_inter_die_statistics():
    m = VariationModel()
    shifts = np.array([
        m.sample_die(0, seed=k).die_vth_shift for k in range(500)
    ])
    assert abs(np.mean(shifts)) < 3 * m.sigma_vth_inter / np.sqrt(500) * 2
    assert np.std(shifts) == pytest.approx(m.sigma_vth_inter, rel=0.25)


def test_drive_scales_positive(model):
    s = model.sample_die(50, seed=11)
    assert s.die_drive_scale > 0
    assert all(x > 0 for x in s.instance_drive_scales)


def test_rejects_negative_sigma():
    with pytest.raises(ConfigurationError):
        VariationModel(sigma_vth_inter=-0.01)


def test_rejects_nonpositive_clip():
    with pytest.raises(ConfigurationError):
        VariationModel(clip_sigmas=0.0)
