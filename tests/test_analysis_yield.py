"""Monte-Carlo yield-study tests."""

import numpy as np
import pytest

from repro.analysis.yield_study import (
    DieCharacteristic,
    die_characteristic,
    run_yield_study,
)
from repro.devices.variation import VariationModel
from repro.errors import ConfigurationError


NO_VARIATION = VariationModel(sigma_vth_inter=0.0, sigma_vth_intra=0.0,
                              sigma_drive_inter=0.0,
                              sigma_drive_intra=0.0)
MILD = VariationModel(sigma_vth_inter=5e-3, sigma_vth_intra=2e-3,
                      sigma_drive_inter=0.01, sigma_drive_intra=0.005)
HEAVY = VariationModel(sigma_vth_intra=20e-3, sigma_drive_intra=0.06)


def test_no_variation_reproduces_design(design):
    sample = NO_VARIATION.sample_die(design.n_bits, seed=1)
    die = die_characteristic(design, sample)
    for got, want in zip(die.thresholds,
                         design.bit_thresholds_code011):
        assert got == pytest.approx(want, abs=1e-9)
    assert die.monotone


def test_no_variation_perfect_yield(design):
    rep = run_yield_study(design, NO_VARIATION, n_dies=5)
    assert rep.monotone_fraction == 1.0
    assert rep.bubble_rate == 0.0
    assert rep.bracket_rate == 1.0
    assert rep.bracket_rate_calibrated == 1.0
    assert max(rep.threshold_sigma) < 1e-9


def test_mild_variation_mostly_clean(design):
    rep = run_yield_study(design, MILD, n_dies=40)
    assert rep.monotone_fraction > 0.7
    assert rep.bubble_rate < 0.05
    assert rep.bracket_rate > 0.7


def test_heavier_variation_more_bubbles(design):
    mild = run_yield_study(design, MILD, n_dies=40)
    heavy = run_yield_study(design, HEAVY, n_dies=40)
    assert heavy.bubble_rate > mild.bubble_rate
    assert heavy.monotone_fraction < mild.monotone_fraction


def test_calibrated_decode_beats_nominal(design):
    """Per-die characterization recovers what inter-die shift costs —
    the quantitative form of the paper's trimming argument."""
    rep = run_yield_study(design, VariationModel(), n_dies=40)
    assert rep.bracket_rate_calibrated > rep.bracket_rate
    assert rep.bracket_rate_calibrated > 0.85


def test_threshold_sigma_tracks_input_sigma(design):
    rep_small = run_yield_study(design, MILD, n_dies=40)
    rep_big = run_yield_study(design, VariationModel(), n_dies=40)
    assert np.mean(rep_big.threshold_sigma) > \
        np.mean(rep_small.threshold_sigma)


def test_study_deterministic(design):
    a = run_yield_study(design, MILD, n_dies=10, seed=7)
    b = run_yield_study(design, MILD, n_dies=10, seed=7)
    assert a == b


def test_die_word_bubbles_when_thresholds_swap():
    die = DieCharacteristic(thresholds=(0.90, 0.88, 0.95))
    word = die.word_at(0.89)
    # Bit 1 (t=0.90) fails, bit 2 (t=0.88) passes: a bubble.
    assert word.bits == (0, 1, 0)
    assert not word.is_valid_thermometer
    # Corrected decode against the sorted ladder still brackets.
    assert die.decode_at(0.89).contains(0.89)


def test_sample_size_validated(design):
    small = NO_VARIATION.sample_die(3, seed=0)
    with pytest.raises(ConfigurationError):
        die_characteristic(design, small)
    with pytest.raises(ConfigurationError):
        run_yield_study(design, MILD, n_dies=0)
