"""Pipeline-level telemetry tests: the PR's acceptance criteria.

* a million-sample trace streams through with peak buffered samples
  bounded by the ring capacity and decoded voltages bit-identical to a
  one-shot batch kernel decode;
* P² quantile estimates land within the documented one-rung bound of
  exact ``np.quantile`` on the full trace;
* the droop detector recovers injected episodes (count, ±1-sample
  boundaries, depth) from synthetic PSN waveforms, without chatter;
* overflow policies, source adapters, snapshots, alerts and JSONL
  export behave as specified.
"""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, TelemetryOverflowError
from repro.telemetry import (
    TelemetryPipeline,
    array_source,
    batch_decode,
    grid_transient_source,
    monitor_source,
    scan_chain_source,
    synthetic_droop_trace,
    waveform_source,
)


@pytest.fixture(scope="module")
def droop_trace():
    """200k-sample noisy trace with 3 injected droops (module-shared)."""
    return synthetic_droop_trace(
        n_samples=200_000, dt=1e-9, n_droops=3, depth=0.15,
        noise_rms=5e-3, seed=42,
    )


def _collecting_pipeline(design, **kwargs):
    chunks = {"ks": [], "mids": []}
    pipeline = TelemetryPipeline(
        design,
        on_decoded=lambda site, ts, ks, ms: (
            chunks["ks"].append(ks), chunks["mids"].append(ms)
        ),
        **kwargs,
    )
    return pipeline, chunks


# -- the headline acceptance test ----------------------------------------


def test_million_samples_bounded_memory_bit_identical(design):
    """>=1e6 samples: peak staged <= capacity, chunked == batch, P²
    within one rung of exact quantiles."""
    n = 1_000_000
    times, volts, _ = synthetic_droop_trace(
        n_samples=n, dt=1e-9, n_droops=4, depth=0.15,
        noise_rms=5e-3, seed=2024,
    )
    capacity, chunk, block = 8192, 1024, 4096
    pipeline, chunks = _collecting_pipeline(
        design, code=3, chunk=chunk, capacity=capacity,
        policy="drop_oldest",
    )
    snap = pipeline.run(array_source("s", times, volts, block=block))

    ring = snap["sites"]["s"]["ring"]
    assert ring["high_watermark"] <= capacity
    assert ring["dropped"] == 0 and ring["deferred"] == 0
    assert snap["sites"]["s"]["decoded"] == n

    streamed_mids = np.concatenate(chunks["mids"])
    streamed_ks = np.concatenate(chunks["ks"])
    words, ks, mids = batch_decode(pipeline.ladder, volts)
    assert np.array_equal(streamed_mids, mids)  # bit-identical floats
    assert np.array_equal(streamed_ks, ks)

    # P² against exact quantiles of the full decoded trace.
    ladder = pipeline.ladder
    levels = np.concatenate(
        ([ladder[0]], 0.5 * (ladder[1:] + ladder[:-1]), [ladder[-1]])
    )
    bound = float(np.max(np.diff(levels)))
    for q_str, est in snap["sites"]["s"]["quantiles"].items():
        exact = float(np.quantile(mids, float(q_str)))
        assert abs(est - exact) <= bound


def test_chunk_boundaries_do_not_change_decode(design, droop_trace):
    """Different (chunk, block) tilings give identical decoded runs."""
    times, volts, _ = droop_trace
    runs = []
    for chunk, block in ((1024, 4096), (997, 1499), (4096, 1024)):
        pipeline, chunks = _collecting_pipeline(
            design, chunk=chunk, capacity=8192, policy="block",
        )
        pipeline.run(array_source("s", times, volts, block=block))
        runs.append(np.concatenate(chunks["mids"]))
    assert np.array_equal(runs[0], runs[1])
    assert np.array_equal(runs[0], runs[2])


# -- droop recovery ------------------------------------------------------


def _reference_episodes(ks, enter, exit_, min_duration,
                        refractory=0):
    """Offline reference scan (independent of the streaming FSM)."""
    episodes = []
    in_ep = False
    holdoff = 0
    start = worst = None
    for i, k in enumerate(ks):
        if in_ep:
            if k >= exit_:
                in_ep = False
                if i - start >= min_duration:
                    episodes.append((start, i - 1, worst))
                    holdoff = refractory
            else:
                worst = min(worst, k)
        elif holdoff > 0:
            holdoff -= 1
        elif k <= enter:
            in_ep, start, worst = True, i, k
    if in_ep and len(ks) - start >= min_duration:
        episodes.append((start, len(ks) - 1, worst))
    return episodes


def test_detector_recovers_injected_droops(design, droop_trace):
    times, volts, onsets = droop_trace
    pipeline = TelemetryPipeline(
        design, code=3, chunk=1024, capacity=8192,
        min_duration=2, refractory=16,
    )
    snap = pipeline.run(array_source("s", times, volts))
    events = pipeline.events
    assert len(events) == len(onsets) == 3

    _, ks, mids = batch_decode(pipeline.ladder, volts)
    ref = _reference_episodes(
        ks, pipeline.enter_rung, pipeline.exit_rung, 2,
        refractory=16,
    )
    assert len(ref) == 3
    dt = float(times[1] - times[0])
    for event, (start_i, end_i, worst_k), t0 in zip(events, ref,
                                                    onsets):
        assert abs(event.start - times[start_i]) <= dt  # ±1 sample
        assert abs(event.end - times[end_i]) <= dt
        assert event.worst_rung == worst_k
        # Depth: the worst decoded level vs the quantized true dip.
        true_worst = float(mids[start_i:end_i + 1].min())
        assert event.depth_v == pytest.approx(
            pipeline.reference_v - true_worst
        )
        assert event.start >= t0  # droop cannot precede its onset
    assert snap["totals"]["events"] == 3


def test_no_droops_no_events(design):
    times, volts, _ = synthetic_droop_trace(
        n_samples=20_000, n_droops=0, noise_rms=5e-3, seed=1,
    )
    pipeline = TelemetryPipeline(design, min_duration=2)
    snap = pipeline.run(array_source("s", times, volts))
    assert snap["totals"]["events"] == 0
    assert snap["sites"]["s"]["events"]["max_depth_v"] is None


# -- overflow policies through the pipeline ------------------------------


def test_policy_block_is_lossless_even_when_tiny(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline, chunks = _collecting_pipeline(
        design, chunk=64, capacity=64, policy="block",
    )
    snap = pipeline.run(
        array_source("s", times[:50_000], volts[:50_000], block=999)
    )
    ring = snap["sites"]["s"]["ring"]
    assert ring["high_watermark"] <= 64
    assert ring["dropped"] == 0
    assert ring["deferred"] > 0  # backpressure actually engaged
    _, _, mids = batch_decode(pipeline.ladder, volts[:50_000])
    assert np.array_equal(np.concatenate(chunks["mids"]), mids)


def test_policy_drop_oldest_drops_and_alerts(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(
        design, chunk=128, capacity=128, policy="drop_oldest",
    )
    snap = pipeline.run(
        array_source("s", times[:10_000], volts[:10_000], block=1000)
    )
    assert snap["sites"]["s"]["ring"]["dropped"] > 0
    assert "sample-loss" in snap["sites"]["s"]["alerts"]
    assert snap["alerts"]["sample-loss"] == ["s"]
    assert snap["sites"]["s"]["decoded"] < 10_000


def test_policy_error_raises_through_pipeline(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(
        design, chunk=128, capacity=128, policy="error",
    )
    with pytest.raises(TelemetryOverflowError):
        pipeline.ingest_all(
            array_source("s", times[:10_000], volts[:10_000],
                         block=1000)
        )


# -- sources -------------------------------------------------------------


def test_word_source_matches_voltage_source(design, droop_trace):
    """Pre-quantized word streams decode to the same rungs/mids."""
    times, volts, _ = droop_trace
    times, volts = times[:5000], volts[:5000]
    p_volt, volt_chunks = _collecting_pipeline(design)
    p_volt.run(array_source("s", times, volts))

    words, _, _ = batch_decode(p_volt.ladder, volts)
    from repro.telemetry import SampleBlock

    p_word, word_chunks = _collecting_pipeline(design)
    p_word.run([SampleBlock(site="s", times=times,
                            values=words.astype(float), kind="word")])
    assert np.array_equal(np.concatenate(volt_chunks["mids"]),
                          np.concatenate(word_chunks["mids"]))


def test_waveform_source_samples_scalar_waveform(design):
    from repro.psn.noise import droop_event

    wave = droop_event(1.0, 0.15, 50e-9)
    pipeline = TelemetryPipeline(design, min_duration=1)
    snap = pipeline.run(waveform_source(
        "w", wave, t_start=0.0, t_stop=200e-9, n_samples=2000,
        block=256,
    ))
    assert snap["sites"]["w"]["decoded"] == 2000
    assert snap["totals"]["events"] >= 1


def test_grid_transient_source_streams_tiles(design):
    from repro.psn.grid import IRDropGrid
    from repro.psn.transient_grid import migrating_hotspot, \
        solve_transient

    grid = IRDropGrid(rows=4, cols=4, r_segment=0.05, r_pad=0.01)
    currents = migrating_hotspot(
        grid, total_current=5.0, path=[(1, 1), (2, 2)], dwell=50e-9,
    )
    transient = solve_transient(grid, currents, t_end=100e-9, dt=2e-9)
    pipeline = TelemetryPipeline(design)
    sites = [(1, 1), (2, 2)]
    snap = pipeline.run(grid_transient_source(transient, sites))
    assert set(snap["sites"]) == {"tile(1,1)", "tile(2,2)"}
    for s in snap["sites"].values():
        assert s["decoded"] == transient.times.size


def test_scan_chain_source_roundtrip(design):
    from repro.core.scanchain import PSNScanChain
    from repro.psn.grid import IRDropGrid

    grid = IRDropGrid(rows=5, cols=5, r_segment=0.05, r_pad=0.01)
    chain = PSNScanChain(design, grid, [(1, 1), (2, 3)], code=3)
    currents = grid.hotspot_currents(
        total_current=4.0, hotspot=(2, 2), hotspot_share=0.8,
    )
    shifts = []
    for k in range(3):
        measures = chain.measure_map(currents)
        shifts.append((k * 1e-6, chain.scan_out(measures)))
    pipeline = TelemetryPipeline(design)
    snap = pipeline.run(scan_chain_source(chain, shifts))
    assert set(snap["sites"]) == {"site(1,1)", "site(2,3)"}
    for s in snap["sites"].values():
        assert s["decoded"] == 3
        assert s["kind"] == "word"


def test_monitor_source_adapts_capture(design):
    from repro.core.monitor import NoiseMonitor
    from repro.sim.waveform import StepWaveform
    from repro.units import NS

    monitor = NoiseMonitor(design, auto_range=False)
    capture = monitor.capture(
        StepWaveform(1.0, 0.9, 40 * NS),
        t_start=20 * NS, t_stop=60 * NS, n_points=6,
    )
    pipeline = TelemetryPipeline(design)
    snap = pipeline.run(monitor_source(capture))
    assert snap["sites"]["monitor"]["decoded"] == 6
    hist = snap["sites"]["monitor"]["histogram"]
    assert sum(hist["counts"]) == 6


# -- snapshot / export / validation --------------------------------------


def test_snapshot_is_json_serializable(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(design, min_duration=2)
    snap = pipeline.run(array_source("s", times[:20_000],
                                     volts[:20_000]))
    parsed = json.loads(json.dumps(snap))
    assert parsed["config"]["code"] == 3
    assert parsed["sites"]["s"]["stats"]["count"] == 20_000
    occ = parsed["sites"]["s"]["histogram"]["occupancy"]
    assert sum(occ) == pytest.approx(1.0)


def test_events_jsonl_export(design, droop_trace, tmp_path):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(design, min_duration=2,
                                 refractory=16)
    pipeline.run(array_source("s", times, volts))
    path = tmp_path / "events.jsonl"
    n = pipeline.export_events_jsonl(path)
    rows = [json.loads(line) for line in
            path.read_text().splitlines()]
    assert len(rows) == n == len(pipeline.events)
    for row, event in zip(rows, pipeline.events):
        assert row == event.as_dict()


def test_droop_depth_alert(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(design, min_duration=2,
                                 alert_depth_v=0.05)
    snap = pipeline.run(array_source("s", times, volts))
    assert "droop-depth" in snap["sites"]["s"]["alerts"]
    quiet = TelemetryPipeline(design, min_duration=2,
                              alert_depth_v=10.0)
    snap = quiet.run(array_source("s", times, volts))
    assert "droop-depth" not in snap["sites"]["s"]["alerts"]


def test_multisite_fan_in(design, droop_trace):
    times, volts, _ = droop_trace
    pipeline = TelemetryPipeline(design)
    for k in range(3):
        pipeline.ingest_all(array_source(
            f"s{k}", times[:8000], volts[:8000] - 0.002 * k,
        ))
    pipeline.flush()
    snap = pipeline.snapshot()
    assert snap["totals"]["sites"] == 3
    assert snap["totals"]["decoded"] == 3 * 8000
    means = [snap["sites"][f"s{k}"]["stats"]["mean"] for k in range(3)]
    assert means[0] >= means[1] >= means[2]


def test_pipeline_validation(design, droop_trace):
    times, volts, _ = droop_trace
    with pytest.raises(ConfigurationError):
        TelemetryPipeline(design, code=9)
    with pytest.raises(ConfigurationError):
        TelemetryPipeline(design, chunk=0)
    with pytest.raises(ConfigurationError):
        TelemetryPipeline(design, chunk=256, capacity=128)

    pipeline = TelemetryPipeline(design)
    pipeline.ingest_all(array_source("s", times[:100], volts[:100]))
    with pytest.raises(ConfigurationError):  # time going backwards
        pipeline.ingest_all(array_source("s", times[:50], volts[:50]))
    from repro.telemetry import SampleBlock

    with pytest.raises(ConfigurationError):  # payload kind switch
        pipeline.ingest(SampleBlock(
            site="s", times=times[100:101] + 1.0,
            values=np.zeros((1, design.n_bits)), kind="word",
        ))


def test_ewma_baseline_tracks_mean(design):
    times, volts, _ = synthetic_droop_trace(
        n_samples=30_000, n_droops=0, noise_rms=3e-3, seed=8,
    )
    pipeline = TelemetryPipeline(design, ewma_alpha=0.05)
    snap = pipeline.run(array_source("s", times, volts))
    baseline = snap["sites"]["s"]["baseline"]
    assert baseline == pytest.approx(
        snap["sites"]["s"]["stats"]["mean"], abs=0.02
    )
    assert not math.isnan(baseline)
