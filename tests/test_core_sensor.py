"""Single-bit sensor tests: analytic model, event harness, agreement."""

import pytest

from repro.core.sensor import SenseRail, SensorBit, SensorBitHarness
from repro.errors import ConfigurationError
from repro.sim.waveform import StepWaveform
from repro.units import NS


# -- rail polarity -----------------------------------------------------------

def test_vdd_rail_phases():
    r = SenseRail.VDD
    assert r.prepare_p == 1 and r.sense_p == 0
    assert r.prepare_ds == 0 and r.pass_value == 1


def test_gnd_rail_phases_opposite():
    r = SenseRail.GND
    assert r.prepare_p == 0 and r.sense_p == 1
    assert r.prepare_ds == 1 and r.pass_value == 0


# -- analytic ----------------------------------------------------------------

def test_bit_index_validated(design):
    with pytest.raises(ConfigurationError):
        SensorBit(design, 0)
    with pytest.raises(ConfigurationError):
        SensorBit(design, 8)


def test_analytic_pass_above_threshold(design):
    bit = SensorBit(design, 1)
    t = bit.threshold(3)
    assert bit.measure(3, vdd_n=t + 0.02).passed
    assert not bit.measure(3, vdd_n=t - 0.02).passed


def test_analytic_boundary_is_exact_threshold(design):
    bit = SensorBit(design, 4)
    t = bit.threshold(3)
    assert bit.measure(3, vdd_n=t + 1e-6).passed
    assert not bit.measure(3, vdd_n=t - 1e-6).passed


def test_analytic_metastable_flag_near_threshold(design):
    bit = SensorBit(design, 1)
    t = bit.threshold(3)
    m = bit.measure(3, vdd_n=t + 1e-4)
    assert "metastable" in m.outcome
    assert m.out_delay > design.sense_flipflop().clk_to_q


def test_analytic_clean_far_from_threshold(design):
    bit = SensorBit(design, 1)
    m = bit.measure(3, vdd_n=1.0)
    assert m.outcome == "clean_capture"


def test_ds_delay_grows_as_supply_drops(design):
    bit = SensorBit(design, 1)
    d1 = bit.ds_delay(3, vdd_n=1.0)
    d2 = bit.ds_delay(3, vdd_n=0.9)
    assert d2 > d1


def test_gnd_rail_threshold_complements_vdd(design):
    vbit = SensorBit(design, 5)
    gbit = SensorBit(design, 5, SenseRail.GND)
    assert gbit.threshold(3) == pytest.approx(
        design.tech.vdd_nominal - vbit.threshold(3)
    )


def test_gnd_rail_fails_on_bounce(design):
    gbit = SensorBit(design, 5, SenseRail.GND)
    t = gbit.threshold(3)  # tolerable bounce
    assert gbit.measure(3, gnd_n=max(t - 0.01, 0.0)).passed
    assert not gbit.measure(3, gnd_n=t + 0.01).passed


def test_effective_supply_separation(design):
    """HS sees vdd_n only; LS sees gnd_n only — the interference
    isolation of Fig. 6."""
    vbit = SensorBit(design, 1)
    gbit = SensorBit(design, 1, SenseRail.GND)
    assert vbit.effective_supply(vdd_n=0.9, gnd_n=0.5) == 0.9
    assert gbit.effective_supply(vdd_n=0.5, gnd_n=0.05) == \
        pytest.approx(0.95)


# -- event-driven harness -----------------------------------------------------

def test_sim_agrees_with_analytic_at_boundary(design):
    """The headline invariant: sim pass/fail flips at the analytic
    threshold."""
    h = SensorBitHarness(design, 1)
    t = SensorBit(design, 1).threshold(3)
    assert h.measure_once(3, vdd_n=t + 0.002).passed
    assert not h.measure_once(3, vdd_n=t - 0.002).passed


@pytest.mark.parametrize("bit", [2, 5, 7])
def test_sim_boundary_other_bits(design, bit):
    h = SensorBitHarness(design, bit)
    t = SensorBit(design, bit).threshold(3)
    assert h.measure_once(3, vdd_n=t + 0.003).passed
    assert not h.measure_once(3, vdd_n=t - 0.003).passed


def test_sim_boundary_other_code(design):
    h = SensorBitHarness(design, 1)
    t = SensorBit(design, 1).threshold(2)
    assert h.measure_once(2, vdd_n=t + 0.003).passed
    assert not h.measure_once(2, vdd_n=t - 0.003).passed


def test_sim_ds_delay_close_to_analytic(design):
    h = SensorBitHarness(design, 1)
    m = h.measure_once(3, vdd_n=0.95)
    analytic = SensorBit(design, 1).ds_delay(3, vdd_n=0.95)
    assert m.ds_delay == pytest.approx(analytic, rel=1e-6)


def test_sim_fig3_two_measures(design):
    """Fig. 3: 1.00 V passes, 0.95 V fails (bit with threshold
    between)."""
    h = SensorBitHarness(design, 5)  # threshold 0.992
    wf = StepWaveform(1.0, 0.95, 7 * NS)
    results = h.run_measures(3, [4 * NS, 10 * NS], vdd_n=wf)
    assert results[0].passed and results[0].value == 1
    assert not results[1].passed and results[1].value == 0


def test_sim_gnd_rail(design):
    h = SensorBitHarness(design, 5, SenseRail.GND)
    assert h.measure_once(3, gnd_n=0.0).passed
    assert not h.measure_once(3, gnd_n=0.05).passed


def test_sim_metastable_near_boundary(design):
    h = SensorBitHarness(design, 1)
    t = SensorBit(design, 1).threshold(3)
    m = h.measure_once(3, vdd_n=t + 0.0005)
    assert "metastable" in m.outcome
    assert m.out_delay > design.sense_flipflop().clk_to_q


def test_sim_out_delay_grows_toward_failure(design):
    """Fig. 2's non-linear OUT delay growth."""
    h = SensorBitHarness(design, 1)
    t = SensorBit(design, 1).threshold(3)
    delays = [h.measure_once(3, vdd_n=t + dv).out_delay
              for dv in (0.05, 0.01, 0.002)]
    assert delays[0] < delays[1] < delays[2]


def test_measure_times_validation(design):
    h = SensorBitHarness(design, 1)
    with pytest.raises(ConfigurationError):
        h.run_measures(3, [])
    with pytest.raises(ConfigurationError):
        h.run_measures(3, [1 * NS])  # before PREPARE_LEAD
    with pytest.raises(ConfigurationError):
        h.run_measures(3, [4 * NS, 4.5 * NS])  # too dense
