"""Event-driven simulation of the gate-level control system.

The STA bench only needs the control netlist's structure; these tests
*run* it: clock the FSM + counter + encoder netlist in the event engine
and check the state machine walks Fig. 8's loop, iterating measures
while the counter says more are pending and falling back to READY at
terminal count — gate-level behaviour matching the behavioural
:class:`~repro.core.control.ControlFSM`.
"""

import pytest

from repro.core.control import ControlState, build_control_netlist
from repro.sim.engine import SimulationEngine
from repro.units import NS

CLOCK = 2 * NS


@pytest.fixture(scope="module")
def sim_run(design):
    """Clock the gate-level control system for 24 cycles.

    Counter width 3 -> terminal count after 7 increments, so the FSM
    iterates PREPARE/SENSE until the counter's 'burst finished' signal
    flips 'more' low.
    """
    nl, ports = build_control_netlist(design, counter_width=3)
    engine = SimulationEngine(nl)
    engine.set_initial(ports.clock, 0)
    engine.set_initial(ports.enable, 1)
    engine.set_initial(ports.start, 1)
    for q in ports.counter_bits:
        engine.set_initial(q, 0)
    for s in ports.state_bits:
        engine.set_initial(s, 0)  # IDLE
    for net in ports.encoder_inputs:
        engine.set_initial(net, 0)
    for net in ports.oute_bits:
        engine.set_initial(net, 0)
    engine.settle()

    states = []
    counts = []
    for k in range(24):
        t_rise = (k + 1) * 4 * CLOCK
        engine.schedule_stimulus(ports.clock, 1, t_rise)
        engine.schedule_stimulus(ports.clock, 0, t_rise + 2 * CLOCK)
        # Drop 'start' once the FSM has left READY.
        if k == 2:
            engine.schedule_stimulus(ports.start, 0,
                                     t_rise + 1 * CLOCK)
        engine.run(t_rise + 3.5 * CLOCK)
        state_val = 0
        for i, q in enumerate(ports.state_bits):
            state_val |= (engine.netlist.nets[q].value or 0) << i
        states.append(state_val)
        count_val = 0
        for i, q in enumerate(ports.counter_bits):
            count_val |= (engine.netlist.nets[q].value or 0) << i
        counts.append(count_val)
    return states, counts


def test_fsm_leaves_idle_and_enters_measure_loop(sim_run):
    states, _ = sim_run
    assert states[0] == ControlState.READY.value
    assert ControlState.S_PRP0.value in states
    assert ControlState.S_SNS.value in states


def test_fsm_walks_fig8_sequence(sim_run):
    states, _ = sim_run
    # Find the first PREPARE entry and check the 4-state loop follows.
    i = states.index(ControlState.S_PRP0.value)
    assert states[i:i + 4] == [
        ControlState.S_PRP0.value,
        ControlState.S_PRP.value,
        ControlState.S_SNS0.value,
        ControlState.S_SNS.value,
    ]


def test_fsm_iterates_while_counter_pending(sim_run):
    states, _ = sim_run
    # After the first S_SNS the FSM loops back to S_PRP0 (more=1).
    i = states.index(ControlState.S_SNS.value)
    assert states[i + 1] == ControlState.S_PRP0.value


def test_fsm_returns_to_ready_at_terminal_count(sim_run):
    states, counts = sim_run
    assert ControlState.READY.value in states[6:]
    # Once back in READY with start low, it stays there.
    last_ready = max(j for j, s in enumerate(states)
                     if s == ControlState.READY.value)
    assert all(s == ControlState.READY.value
               for s in states[last_ready:])


def test_counter_advances_during_burst(sim_run):
    _, counts = sim_run
    assert max(counts) == 7  # reached terminal count (width 3)
    # Strictly increasing while counting.
    rising = [c for c in counts if c > 0]
    assert rising == sorted(rising)


def test_gate_level_matches_behavioural_loop(design, sim_run):
    """The gate-level state sequence equals the behavioural FSM's for
    the same number of pending measures (2 full loops compared)."""
    from repro.core.control import ControlFSM

    states, _ = sim_run
    fsm = ControlFSM()
    fsm.tick()  # IDLE -> READY
    fsm.request_measures(2)
    behavioural = [fsm.tick().state.value for _ in range(8)]
    i = states.index(ControlState.S_PRP0.value)
    assert states[i:i + 8] == behavioural
