"""Golden-trace regression gate.

``tests/data/traces/`` holds committed recordings of a reference
kernel-backend campaign (both trace formats).  Replaying them pins
two different things:

* **the trace layer** — the files still parse under the current
  schema and replay *bit-identically* (any encoding change that loses
  a bit fails here first);
* **the physics** — the recorded words and thresholds still match
  what a *live* :class:`~repro.backends.KernelBackend` produces
  today, so an accidental change to the delay law, the threshold
  solver or the decode path is caught against a frozen reference.

The campaign's measurement levels are decode-ladder *midpoints*
(maximally far from every pass/fail boundary), so the word comparison
is exact across platforms; threshold floats are compared at the
solver's cross-platform agreement bound, not bit-wise.

Regenerate after an *intentional* physics change with::

    PYTHONPATH=src python tests/test_backends_golden.py

and review the fixture diff like any other golden update.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np
import pytest

from repro.backends import KernelBackend, RecordingBackend, ReplayBackend
from repro.backends.trace import TRACE_SCHEMA, Trace

TRACE_DIR = Path(__file__).parent / "data" / "traces"
GOLDEN = [TRACE_DIR / "kernel_campaign.jsonl",
          TRACE_DIR / "kernel_campaign.csv"]

#: Cross-platform threshold agreement bound for the live comparison:
#: the brentq solves behind the recorded values are xtol=1e-9-class,
#: so anything past a few of those is a real physics change.
GOLDEN_ATOL_V = 1e-8

#: The frozen campaign's sweep/sampling constants.
CODE = 3
S_CURVE_BIT = 4
S_CURVE_SEED = 2009
S_CURVE_N = 32
NOISE_RMS = 5e-3


def _campaign_levels(design):
    """Decode-ladder midpoints for the frozen code (plus one level
    beyond each end of the dynamic)."""
    bk = KernelBackend()
    bk.configure(design)
    th = np.asarray(bk.bit_thresholds(CODE))
    edges = np.concatenate(([th[0] - 0.03], th, [th[-1] + 0.03]))
    return 0.5 * (edges[:-1] + edges[1:])


def _run_campaign(bk, design):
    """The frozen reference campaign, against any driver."""
    bk.configure(design)
    levels = _campaign_levels(design)
    return {
        "words": bk.measure_batch(levels, code=CODE),
        "thresholds": np.asarray(bk.bit_thresholds(CODE)),
        "s_curve": bk.s_curve(S_CURVE_BIT, code=CODE,
                              noise_rms=NOISE_RMS,
                              n_per_level=S_CURVE_N,
                              seed=S_CURVE_SEED),
    }


@pytest.mark.parametrize("path", GOLDEN, ids=lambda p: p.suffix[1:])
def test_golden_traces_are_committed_and_parse(path):
    assert path.exists(), \
        f"{path} missing — regenerate with " \
        f"'PYTHONPATH=src python tests/test_backends_golden.py'"
    trace = Trace.load(path)
    assert trace.header.schema == TRACE_SCHEMA
    assert trace.header.backend == "kernel"
    assert len(trace.records) >= 3


@pytest.mark.parametrize("path", GOLDEN, ids=lambda p: p.suffix[1:])
def test_golden_replay_is_bit_identical_to_recording(design, path):
    """Replaying a golden file returns the recorded results verbatim
    and consumes the whole trace."""
    replay = ReplayBackend(path)
    got = _run_campaign(replay, design)
    assert replay.exhausted

    trace = Trace.load(path)
    by_op = {r["op"]: r for r in trace.records}
    assert np.array_equal(
        got["words"],
        np.asarray(by_op["measure_batch"]["words"], dtype=np.uint8))
    assert np.array_equal(
        np.asarray(got["thresholds"]),
        np.asarray(by_op["bit_thresholds"]["values"]), equal_nan=True)
    assert got["s_curve"] == (tuple(by_op["s_curve"]["levels"]),
                              tuple(by_op["s_curve"]["probs"]))


def test_both_golden_formats_carry_the_same_campaign():
    a, b = (Trace.load(p) for p in GOLDEN)
    from repro.backends.trace import records_equal

    assert a.header == b.header
    assert len(a.records) == len(b.records)
    assert all(records_equal(x, y)
               for x, y in zip(a.records, b.records))


def test_golden_campaign_matches_live_kernel(design):
    """The frozen reference still reproduces on today's kernel: exact
    words (midpoint levels), solver-bound thresholds, valid recorded
    S-curve probabilities."""
    golden = _run_campaign(ReplayBackend(GOLDEN[0]), design)
    live = _run_campaign(KernelBackend(), design)

    assert np.array_equal(golden["words"], live["words"])
    assert np.allclose(golden["thresholds"], live["thresholds"],
                       atol=GOLDEN_ATOL_V, rtol=0.0)
    g_levels, g_probs = golden["s_curve"]
    assert all(0.0 <= p <= 1.0 for p in g_probs)
    assert all(math.isfinite(v) for v in g_levels)


def regenerate() -> list[Path]:
    """Re-record the golden fixtures (both formats) from the live
    kernel.  Review the diff: every changed float is a deliberate
    physics change or a bug."""
    from repro.core.calibration import fit_paper_design

    d = fit_paper_design()
    out = []
    for path in GOLDEN:
        rec = RecordingBackend(KernelBackend(), path,
                               note="golden reference campaign")
        _run_campaign(rec, d)
        rec.close()
        out.append(path)
    return out


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    for p in regenerate():
        print(f"wrote {p}")
