"""End-to-end paper-reproduction integration tests.

One test per published artifact, exercising the *full* stack (event
simulation wherever the paper's own evidence is a waveform).  These are
the acceptance criteria of DESIGN.md §6.
"""

import pytest

from repro.core import paperdata
from repro.core.array import SensorArrayHarness
from repro.core.characterization import (
    characterize_array,
    linearity_report,
    threshold_vs_capacitance,
)
from repro.core.control import build_control_netlist
from repro.core.pulsegen import PulseGeneratorHarness
from repro.core.sensor import SensorBit, SensorBitHarness
from repro.core.system import SensorSystem
from repro.sim.waveform import StepWaveform
from repro.sta.analysis import min_clock_period
from repro.units import NS, PF, PS


def test_e1_fig2_delay_growth_and_failure(design):
    """Fig. 2: four linearly spaced VDD-n cases; DS delay grows, OUT
    delay grows non-linearly, case 4 fails."""
    bit = 1
    t_star = SensorBit(design, bit).threshold(3)
    h = SensorBitHarness(design, bit)
    cases = [t_star + dv for dv in (0.060, 0.040, 0.020, -0.001)]
    results = [h.measure_once(3, vdd_n=v) for v in cases]
    ds = [r.ds_delay for r in results]
    out = [r.out_delay for r in results]
    assert all(b > a for a, b in zip(ds, ds[1:]))       # DS delay grows
    assert all(b >= a for a, b in zip(out, out[1:]))    # OUT delay grows
    assert [r.passed for r in results] == [True, True, True, False]
    # Non-linearity: the last OUT-delay step dwarfs the first.
    assert (out[3] - out[2]) > 3 * (out[1] - out[0])


def test_e2_fig3_two_phase_measures(design):
    """Fig. 3: PREPARE/SENSE pairs at 1.00 V then 0.95 V -> 1 then 0."""
    h = SensorBitHarness(design, 5)  # threshold 0.992 V
    wf = StepWaveform(1.00, 0.95, 7 * NS)
    r = h.run_measures(3, [4 * NS, 10 * NS], vdd_n=wf)
    assert [m.value for m in r] == [
        paperdata.FIG3_MEASURES[0]["expected_out"],
        paperdata.FIG3_MEASURES[1]["expected_out"],
    ]


def test_e3_fig4_threshold_vs_cap(design):
    """Fig. 4: C=2 pF -> 0.9360 V; linear within 0.9-1.1 V."""
    pts = threshold_vs_capacitance(
        design, [(1.80 + 0.05 * i) * PF for i in range(9)]
    )
    anchor = threshold_vs_capacitance(design, [2 * PF])[0][1]
    assert anchor == pytest.approx(paperdata.FIG4_ANCHOR_THRESHOLD,
                                   abs=5e-4)
    in_range = [(c, v) for c, v in pts
                if paperdata.FIG4_LINEAR_RANGE[0] <= v
                <= paperdata.FIG4_LINEAR_RANGE[1]]
    rep = linearity_report(in_range)
    assert rep["r_squared"] > 0.998


def test_e4_fig5_three_code_characteristics(design):
    """Fig. 5: ranges per code; interior boundaries; monotone shift."""
    chars = characterize_array(design, codes=(1, 2, 3))
    assert chars[3].v_min == pytest.approx(0.827, abs=5e-4)
    assert chars[3].v_max == pytest.approx(1.053, abs=5e-4)
    assert chars[2].v_min == pytest.approx(0.951, abs=5e-4)
    assert chars[2].v_max == pytest.approx(1.237, abs=5e-4)
    assert chars[1].v_min > chars[2].v_min > chars[3].v_min
    # The quoted 0011111 interval under code 011:
    assert chars[3].thresholds[4] == pytest.approx(0.992, abs=5e-4)
    assert chars[3].thresholds[5] == pytest.approx(1.021, abs=5e-4)


def test_e5_delay_code_table(design):
    """§III-B table via the structural PG."""
    table = PulseGeneratorHarness(design).measure_table()
    for code_str, ps in paperdata.DELAY_CODE_TABLE_PS.items():
        code = int(code_str, 2)
        assert table[code] == pytest.approx(ps * PS, abs=0.5 * PS), \
            f"code {code_str}"


def test_e6_fig9_full_system(design):
    """Fig. 9: two system measures, delay code 011, exact words and
    decoded ranges."""
    system = SensorSystem(design, include_ls=False)
    wf = StepWaveform(
        paperdata.FIG9_MEASURES[0]["vdd_n"],
        paperdata.FIG9_MEASURES[1]["vdd_n"],
        16 * NS,
    )
    run = system.run(2, code_hs=int(paperdata.FIG9_DELAY_CODE, 2),
                     vdd_n=wf)
    for result, expected in zip(run.hs, paperdata.FIG9_MEASURES):
        assert result.word.to_string() == expected["expected_word"]
        lo, hi = expected["decoded_range"]
        assert result.decoded.lo == pytest.approx(lo, abs=5e-4)
        assert result.decoded.hi == pytest.approx(hi, abs=5e-4)
        assert result.prepare_word == "0000000"


def test_e7_critical_path(design):
    """§III-B: control-system critical path 1.22 ns at 90 nm."""
    nl, _ = build_control_netlist(design)
    assert min_clock_period(nl) == pytest.approx(
        paperdata.CRITICAL_PATH_S, rel=0.02
    )


def test_e9_gnd_sense_characteristic(design):
    """§III-A: the GND-n characteristic 'not reported for sake of
    brevity' — we generate it and check it mirrors the VDD one."""
    h = SensorArrayHarness(design)
    from repro.core.sensor import SenseRail

    hg = SensorArrayHarness(design, SenseRail.GND)
    # A bounce of (1 - 0.992) V fails the same number of stages that a
    # droop to 0.992 V does.
    droop = h.measure_once(3, vdd_n=0.99)
    bounce = hg.measure_once(3, gnd_n=0.01)
    assert droop.word.ones == bounce.word.ones


def test_full_stack_event_count_sane(design):
    """The Fig. 9 run should be small: tens of cells, hundreds of
    events (the 'very low overhead' claim in simulation terms)."""
    system = SensorSystem(design, include_ls=False)
    run = system.run(2, vdd_n=1.0)
    assert run.events_processed < 2000
