"""Alpha-power-law model tests: the physics the whole sensor rides on."""

import math

import numpy as np
import pytest

from repro.devices.mosfet import AlphaPowerModel, voltage_factor
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.units import FF


@pytest.fixture()
def model():
    return AlphaPowerModel(TECH_90NM)


def test_voltage_factor_decreasing():
    vs = np.linspace(0.5, 1.5, 50)
    g = voltage_factor(vs, 0.2, 1.3)
    assert np.all(np.diff(g) < 0)


def test_voltage_factor_infinite_at_threshold():
    assert math.isinf(voltage_factor(0.2, 0.2, 1.3))


def test_voltage_factor_infinite_below_threshold():
    assert math.isinf(voltage_factor(0.1, 0.2, 1.3))


def test_voltage_factor_scalar_type():
    assert isinstance(voltage_factor(1.0, 0.2, 1.3), float)


def test_voltage_factor_array_type():
    out = voltage_factor(np.array([0.9, 1.0]), 0.2, 1.3)
    assert isinstance(out, np.ndarray)


def test_delay_monotone_in_supply(model):
    d_hi = model.delay(1.1, 5 * FF)
    d_lo = model.delay(0.9, 5 * FF)
    assert d_lo > d_hi > 0


def test_delay_monotone_in_load(model):
    d_small = model.delay(1.0, 1 * FF)
    d_big = model.delay(1.0, 10 * FF)
    assert d_big > d_small


def test_delay_infinite_below_threshold(model):
    assert math.isinf(model.delay(TECH_90NM.vth / 2, 5 * FF))


def test_delay_rejects_negative_load(model):
    with pytest.raises(ConfigurationError):
        model.delay(1.0, -1 * FF)


def test_delay_slew_degradation(model):
    base = model.delay(1.0, 5 * FF)
    slewed = model.delay(1.0, 5 * FF, input_slew=20e-12)
    assert slewed == pytest.approx(
        base + TECH_90NM.slew_fraction * 20e-12
    )


def test_output_slew_twice_delay(model):
    assert model.output_slew(1.0, 5 * FF) == pytest.approx(
        2 * model.delay(1.0, 5 * FF)
    )


def test_strength_divides_delay():
    m1 = AlphaPowerModel(TECH_90NM, strength=1)
    m4 = AlphaPowerModel(TECH_90NM, strength=4)
    # Strong cell is faster into the same external load.
    assert m4.delay(1.0, 20 * FF) < m1.delay(1.0, 20 * FF)


def test_strength_scales_caps():
    m4 = AlphaPowerModel(TECH_90NM, strength=4)
    assert m4.input_cap == pytest.approx(4 * TECH_90NM.gate_cap_unit)
    assert m4.intrinsic_cap == pytest.approx(
        4 * TECH_90NM.intrinsic_cap_unit
    )


def test_rejects_nonpositive_strength():
    with pytest.raises(ConfigurationError):
        AlphaPowerModel(TECH_90NM, strength=0)


def test_supply_for_delay_inverts_delay(model):
    load = 5 * FF
    target = model.delay(0.95, load)
    v = model.supply_for_delay(target, load)
    assert v == pytest.approx(0.95, abs=1e-6)


def test_supply_for_delay_monotone(model):
    load = 5 * FF
    v_slow = model.supply_for_delay(model.delay(0.85, load), load)
    v_fast = model.supply_for_delay(model.delay(1.05, load), load)
    assert v_slow < v_fast


def test_supply_for_delay_rejects_unreachable_fast(model):
    # Demand a delay faster than the gate can ever achieve in bracket.
    with pytest.raises(ConfigurationError):
        model.supply_for_delay(1e-15, 5 * FF, v_hi=1.2)


def test_supply_for_delay_rejects_nonpositive_target(model):
    with pytest.raises(ConfigurationError):
        model.supply_for_delay(0.0, 5 * FF)


def test_with_strength_returns_new(model):
    m2 = model.with_strength(2)
    assert m2.strength == 2
    assert model.strength == 1


def test_with_tech_rebinds(model):
    t2 = TECH_90NM.scaled(vth_shift=0.04)
    m2 = model.with_tech(t2)
    assert m2.tech.vth == pytest.approx(TECH_90NM.vth + 0.04)


def test_near_linear_over_paper_range(model):
    """The paper's Fig. 4 premise: delay ~ linear in V over 0.9-1.1V."""
    vs = np.linspace(0.9, 1.1, 21)
    ds = np.array([model.delay(v, 2000 * FF) for v in vs])
    slope, intercept = np.polyfit(vs, ds, 1)
    fit = intercept + slope * vs
    max_rel_resid = np.max(np.abs(ds - fit)) / np.mean(ds)
    assert max_rel_resid < 0.01
