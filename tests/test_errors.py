"""Exception-hierarchy tests: one catch-all base, distinct subtypes."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.CalibrationError,
    errors.SimulationError,
    errors.TimingViolationError,
    errors.NetlistError,
    errors.CharacterizationError,
    errors.DecodingError,
    errors.ProtocolError,
    errors.WorkerCrashError,
    errors.TaskTimeoutError,
    errors.TelemetryOverflowError,
    errors.RetryExhaustedError,
    errors.BackendError,
    errors.ServiceError,
    errors.AdmissionRejectedError,
    errors.DeadlineExceededError,
    errors.CircuitOpenError,
    errors.TenantQuotaError,
]

SERVICE_ERRORS = [
    errors.AdmissionRejectedError,
    errors.DeadlineExceededError,
    errors.CircuitOpenError,
    errors.TenantQuotaError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_base(exc):
    assert issubclass(exc, errors.ReproError)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_catchable_as_base(exc):
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_base_derives_from_exception():
    assert issubclass(errors.ReproError, Exception)


def test_subtypes_are_distinct():
    assert not issubclass(errors.SimulationError, errors.NetlistError)
    assert not issubclass(errors.NetlistError, errors.SimulationError)


@pytest.mark.parametrize("exc", SERVICE_ERRORS)
def test_service_errors_catchable_as_service_error(exc):
    assert issubclass(exc, errors.ServiceError)
    with pytest.raises(errors.ServiceError):
        raise exc("shed")


def test_service_errors_distinct_from_runtime_errors():
    assert not issubclass(errors.DeadlineExceededError,
                          errors.TaskTimeoutError)
    assert not issubclass(errors.AdmissionRejectedError,
                          errors.TelemetryOverflowError)
    assert not issubclass(errors.ServiceError, errors.BackendError)
