"""FaultInjectingBackend: the shared chaos-injection path.

The decorator must (a) perturb only what its seeded schedule says,
(b) leave the wrapped driver's physics untouched when no fault fires,
and (c) advertise a non-transparent identity so chaotic results can
never alias clean cache entries.  ChaosMonkey.should — the one shared
Bernoulli draw every injector uses — is pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    FaultInjectingBackend,
    InjectedFaultError,
    KernelBackend,
    SimBackend,
)
from repro.errors import BackendError, ConfigurationError
from repro.runtime.cache import design_fingerprint
from repro.runtime.chaos import ChaosMonkey


@pytest.fixture()
def clean(design):
    backend = KernelBackend()
    backend.configure(design)
    return backend


def _wrapped(design, **kwargs):
    backend = FaultInjectingBackend(KernelBackend(), **kwargs)
    backend.configure(design)
    return backend


# -- ChaosMonkey.should --------------------------------------------------------


def test_should_is_deterministic_per_seed():
    m1, m2 = ChaosMonkey(42), ChaosMonkey(42)
    seq1 = [m1.should(0.3) for _ in range(50)]
    seq2 = [m2.should(0.3) for _ in range(50)]
    assert seq1 == seq2
    assert any(seq1) and not all(seq1)  # a real Bernoulli mix


def test_should_edge_probabilities():
    monkey = ChaosMonkey(7)
    assert not any(monkey.should(0.0) for _ in range(20))
    assert all(monkey.should(1.0) for _ in range(20))


def test_should_rejects_bad_probability():
    with pytest.raises(ConfigurationError):
        ChaosMonkey(1).should(1.5)
    with pytest.raises(ConfigurationError):
        ChaosMonkey(1).should(-0.1)


# -- construction --------------------------------------------------------------


def test_rejects_bad_rates_and_ops():
    inner = KernelBackend()
    with pytest.raises(ConfigurationError):
        FaultInjectingBackend(inner, error_rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultInjectingBackend(inner, slow_rate=-0.1)
    with pytest.raises(ConfigurationError):
        FaultInjectingBackend(inner, slow_s=-1.0)
    with pytest.raises(ConfigurationError):
        FaultInjectingBackend(inner, poison_ops=("configure",))


# -- transparency when quiet ---------------------------------------------------


def test_no_faults_means_bit_identical_physics(design, clean):
    chaotic = _wrapped(design)  # all rates zero
    levels = [1.00, 1.05, 1.10]
    np.testing.assert_array_equal(
        chaotic.measure_batch(levels, code=3),
        clean.measure_batch(levels, code=3),
    )
    assert chaotic.bit_thresholds(3) == clean.bit_thresholds(3)
    assert chaotic.injected_errors == 0
    assert chaotic.injected_stalls == 0


def test_scalar_measure_routes_through_batch(design):
    """One scalar measure consumes exactly one injection draw."""
    chaotic = _wrapped(design, monkey=5, error_rate=1.0)
    with pytest.raises(InjectedFaultError):
        chaotic.measure(1.05, code=3)
    assert chaotic.injected_errors == 1


# -- seeded schedules ----------------------------------------------------------


def test_error_schedule_replays_under_same_seed(design):
    def run(seed):
        chaotic = _wrapped(design, monkey=seed, error_rate=0.4)
        outcomes = []
        for _ in range(20):
            try:
                chaotic.measure_batch([1.05], code=3)
                outcomes.append("ok")
            except InjectedFaultError:
                outcomes.append("fault")
        return outcomes

    assert run(1234) == run(1234)
    assert "ok" in run(1234) and "fault" in run(1234)


def test_injected_fault_is_a_backend_error(design):
    chaotic = _wrapped(design, error_rate=1.0)
    with pytest.raises(BackendError):
        chaotic.bit_thresholds(3)


def test_slow_rate_stalls_but_still_succeeds(design, clean):
    chaotic = _wrapped(design, slow_rate=1.0, slow_s=0.0)
    np.testing.assert_array_equal(
        chaotic.measure_batch([1.05], code=3),
        clean.measure_batch([1.05], code=3),
    )
    assert chaotic.injected_stalls == 1
    assert chaotic.injected_errors == 0


def test_poison_ops_always_raise_others_untouched(design, clean):
    chaotic = _wrapped(design, poison_ops=("s_curve",))
    with pytest.raises(InjectedFaultError):
        chaotic.s_curve(1, code=3, noise_rms=0.01, n_per_level=5,
                        seed=1)
    # Non-poisoned surfaces stay clean (rates are zero).
    np.testing.assert_array_equal(
        chaotic.measure_batch([1.05], code=3),
        clean.measure_batch([1.05], code=3),
    )


def test_shared_monkey_is_one_fault_schedule(design):
    """Service drills and backend wraps share one ChaosMonkey: draws
    interleave on a single stream instead of replaying per-wrapper."""
    monkey = ChaosMonkey(99)
    reference_stream = ChaosMonkey(99)
    reference = [reference_stream.should(0.5) for _ in range(6)]
    chaotic = _wrapped(design, monkey=monkey, error_rate=0.5)
    observed = []
    for _ in range(6):
        try:
            chaotic.measure_batch([1.05], code=3)
            observed.append(False)
        except InjectedFaultError:
            observed.append(True)
    assert observed == reference


# -- identity ------------------------------------------------------------------


def test_identity_is_not_transparent(design, clean):
    chaotic = _wrapped(design, monkey=3, error_rate=0.25)
    assert chaotic.id == "fault-injecting"
    caps = chaotic.capabilities()
    assert caps.backend == "fault-injecting"
    assert not caps.deterministic
    assert chaotic.fingerprint() != clean.fingerprint()
    assert design_fingerprint(design, backend=chaotic) != \
        design_fingerprint(design, backend=clean)


def test_fingerprint_tracks_fault_config(design):
    a = _wrapped(design, monkey=3, error_rate=0.25)
    b = _wrapped(design, monkey=3, error_rate=0.50)
    c = _wrapped(design, monkey=4, error_rate=0.25)
    assert len({a.fingerprint(), b.fingerprint(),
                c.fingerprint()}) == 3


def test_capabilities_mirror_inner_driver(design):
    sim = FaultInjectingBackend(SimBackend())
    sim.configure(design)
    inner_caps = SimBackend().capabilities()
    caps = sim.capabilities()
    assert caps.thresholds == inner_caps.thresholds
    assert caps.lot_thresholds == inner_caps.lot_thresholds
    assert caps.s_curve == inner_caps.s_curve
