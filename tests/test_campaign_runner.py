"""Campaign runner: execution, resume, checks, manifests."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CAMPAIGN_SCHEMA,
    MANIFEST_SCHEMA,
    read_manifest,
    read_stage_payload,
    run_campaign,
    spec_from_mapping,
)

SWEEP = {"id": "sweep", "kind": "threshold_sweep",
         "params": {"bits": [1, 2], "tol": 5e-3},
         "checks": [{"kind": "monotone", "field": "thresholds",
                     "strict": True}]}


def make_spec(stages=None, **overrides):
    raw = {
        "schema": CAMPAIGN_SCHEMA,
        "name": "runner-test",
        "stages": stages or [dict(SWEEP)],
    }
    raw.update(overrides)
    return spec_from_mapping(raw)


def test_run_produces_manifest_and_payloads(tmp_path):
    run = run_campaign(make_spec(), out_dir=tmp_path / "out")
    assert run.ok and run.outcome == "passed"
    manifest = read_manifest(tmp_path / "out")
    assert manifest["manifest_schema"] == MANIFEST_SCHEMA
    assert manifest["campaign_schema"] == CAMPAIGN_SCHEMA
    assert manifest["spec_hash"] == run.spec.spec_hash()
    assert manifest["outcome"] == "passed"
    assert manifest["cache"]["lifetime"]["misses"] >= 2
    (stage,) = manifest["stages"]
    assert stage["id"] == "sweep" and stage["status"] == "ok"
    assert stage["deterministic"] and not stage["resumed"]
    assert all(c["ok"] for c in stage["checks"])
    payload = read_stage_payload(tmp_path / "out", "sweep")
    assert len(payload["thresholds"]) == 2
    assert payload["thresholds"][0] < payload["thresholds"][1]


def test_resume_replays_from_stage_cache(tmp_path):
    spec = make_spec()
    first = run_campaign(spec, out_dir=tmp_path / "out")
    second = run_campaign(spec, out_dir=tmp_path / "out")
    rec1, rec2 = first.record("sweep"), second.record("sweep")
    assert not rec1.resumed and rec2.resumed
    assert rec2.payload == rec1.payload
    # Checks are re-evaluated fresh on every run, resumed or not.
    assert rec2.checks == rec1.checks
    # A different out_dir but the same cache root also resumes.
    third = run_campaign(spec, out_dir=tmp_path / "elsewhere",
                         cache=tmp_path / "out" / "cache")
    assert third.record("sweep").resumed
    assert third.record("sweep").payload == rec1.payload


def test_spec_change_invalidates_stage_cache(tmp_path):
    cache = tmp_path / "cache"
    a = run_campaign(make_spec(), out_dir=tmp_path / "a", cache=cache)
    stages = [dict(SWEEP, params={"bits": [1, 2], "tol": 1e-3})]
    b = run_campaign(make_spec(stages=stages),
                     out_dir=tmp_path / "b", cache=cache)
    assert not b.record("sweep").resumed
    assert b.record("sweep").payload != a.record("sweep").payload


def test_failed_check_fails_campaign_and_aborts_dependents(tmp_path):
    stages = [
        dict(SWEEP, checks=[{"kind": "bounds", "field": "thresholds",
                             "min": 100.0}]),
        {"id": "ladder", "kind": "characterization",
         "needs": ["sweep"], "params": {"codes": [3]}},
    ]
    run = run_campaign(make_spec(stages=stages),
                       out_dir=tmp_path / "out")
    assert not run.ok and run.outcome == "failed"
    assert run.record("sweep").status == "failed"
    assert run.record("ladder").status == "skipped"
    assert run.record("ladder").artifact is None


def test_on_fail_continue_runs_independent_stages(tmp_path):
    stages = [
        dict(SWEEP, checks=[{"kind": "bounds", "field": "thresholds",
                             "min": 100.0}]),
        {"id": "solo", "kind": "threshold_sweep",
         "params": {"bits": [3], "tol": 5e-3}},
        {"id": "dep", "kind": "characterization",
         "needs": ["sweep"], "params": {"codes": [3]}},
    ]
    run = run_campaign(
        make_spec(stages=stages, runtime={"on_fail": "continue"}),
        out_dir=tmp_path / "out")
    assert not run.ok
    assert run.record("sweep").status == "failed"
    # Independent of the failure: still runs under on_fail=continue.
    assert run.record("solo").status == "ok"
    # Downstream of the failure: skipped either way.
    assert run.record("dep").status == "skipped"


def test_corner_changes_results_and_fingerprint(tmp_path):
    nominal = run_campaign(make_spec(), out_dir=tmp_path / "tt")
    slow = run_campaign(make_spec(design={"corner": "SS"}),
                        out_dir=tmp_path / "ss")
    t_nom = nominal.record("sweep").payload["thresholds"]
    t_ss = slow.record("sweep").payload["thresholds"]
    assert t_nom != t_ss
    assert nominal.fingerprint != slow.fingerprint
    assert read_manifest(tmp_path / "ss")["corner"] == "SS"


def test_parity_check_against_oracle_stage(tmp_path):
    stages = [
        {"id": "a", "kind": "threshold_sweep",
         "params": {"bits": [1, 2], "tol": 5e-3}},
        {"id": "b", "kind": "threshold_sweep", "needs": ["a"],
         "params": {"bits": [1, 2], "tol": 5e-3},
         "checks": [{"kind": "parity", "field": "thresholds",
                     "stage": "a", "tol": 0.0}]},
    ]
    run = run_campaign(make_spec(stages=stages),
                       out_dir=tmp_path / "out")
    assert run.ok, run.record("b").checks
    (check,) = run.record("b").checks
    assert check["ok"] and check["kind"] == "parity"


def test_chaos_run_is_bit_identical_but_not_resumed(tmp_path):
    cache = tmp_path / "cache"
    base = {
        "schema": CAMPAIGN_SCHEMA, "name": "chaos-id",
        "runtime": {"workers": 2, "retries": 2},
        "stages": [dict(SWEEP)],
    }
    clean = run_campaign(spec_from_mapping(base),
                         out_dir=tmp_path / "clean", cache=cache)
    chaotic_spec = spec_from_mapping(
        {**base, "chaos": {"corrupt_cache": 1,
                           "kill_worker_tasks": 1}})
    assert chaotic_spec.spec_hash() == clean.spec.spec_hash()
    chaotic = run_campaign(chaotic_spec, out_dir=tmp_path / "chaos",
                           cache=cache)
    assert chaotic.ok
    rec = chaotic.record("sweep")
    # Chaos bypasses the stage cache (the drill must re-execute) ...
    assert not rec.resumed
    # ... and still lands on the clean run's exact numbers.
    assert rec.payload == clean.record("sweep").payload
    assert rec.volatile["crashes"] >= 1


def test_stage_error_is_recorded_not_raised(tmp_path):
    stages = [{"id": "screen", "kind": "fault_screen",
               "params": {"faults": [{"fault": "not_a_fault",
                                      "bit": 2}]}}]
    run = run_campaign(make_spec(stages=stages),
                       out_dir=tmp_path / "out")
    assert not run.ok
    rec = run.record("screen")
    assert rec.status == "error"
    assert "not_a_fault".upper() in rec.volatile.get("error", "")


@pytest.mark.parametrize("kind", ["telemetry", "fault_screen"])
def test_other_stage_kinds_execute(tmp_path, kind):
    params = {"telemetry": {"n_samples": 400, "n_droops": 1},
              "fault_screen": {"faults": [{"fault": "out_stuck_fail",
                                           "bit": 2}]}}[kind]
    stages = [{"id": "s", "kind": kind, "params": params}]
    run = run_campaign(make_spec(stages=stages),
                       out_dir=tmp_path / "out")
    assert run.ok, run.record("s").volatile
