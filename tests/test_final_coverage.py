"""Late-round coverage: properties and paths not exercised elsewhere."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells.sequential import DFlipFlop
from repro.devices.technology import TECH_90NM
from repro.sim.verilog import write_verilog
from repro.units import NS


# -- DFF sampling is monotone in arrival time ----------------------------------

@settings(max_examples=50)
@given(st.floats(min_value=0.0, max_value=10e-9),
       st.floats(min_value=0.0, max_value=10e-9))
def test_ff_capture_monotone_in_arrival(a1, a2):
    """For a 0->1 data transition, earlier arrival never captures less:
    if the later arrival is captured as 1, the earlier one must be too
    (no non-monotonic sampling)."""
    ff = DFlipFlop(TECH_90NM)
    clock = 12e-9
    early, late = sorted((a1, a2))
    r_early = ff.sample(new_value=1, old_value=0, data_arrival=early,
                        clock_edge=clock)
    r_late = ff.sample(new_value=1, old_value=0, data_arrival=late,
                       clock_edge=clock)
    rank = {1: 2, None: 1, 0: 0}
    assert rank[r_early.value] >= rank[r_late.value]


@settings(max_examples=50)
@given(st.floats(min_value=0.0, max_value=10e-9))
def test_ff_margin_definition(arrival):
    ff = DFlipFlop(TECH_90NM)
    clock = 12e-9
    r = ff.sample(new_value=1, old_value=0, data_arrival=arrival,
                  clock_edge=clock)
    assert r.setup_margin == pytest.approx(
        (clock - ff.setup_time) - arrival
    )


# -- Verilog export covers the PG's cell mix -------------------------------------

def test_verilog_exports_pg_netlist(design):
    from repro.core.pulsegen import build_pg_netlist

    nl, ports = build_pg_netlist(design)
    buf = io.StringIO()
    count = write_verilog(nl, buf)
    text = buf.getvalue()
    assert count == nl.stats()["#instances"]
    assert "DELAY" in text          # tap elements
    assert "MUX2" in text           # selection trees
    assert "trim internal_cap" in text  # trim annotations survive


def test_verilog_exports_scan_register(design):
    from repro.core.scan_register import build_scan_register

    nl, _ = build_scan_register(design, 7)
    buf = io.StringIO()
    write_verilog(nl, buf)
    text = buf.getvalue()
    assert text.count("DFF scan_ff") == 7
    assert text.count("MUX2 scan_mux") == 7


# -- public API surface ------------------------------------------------------------

def test_core_package_surface():
    import repro.core as core

    for name in ("SensorSystem", "AutoRangingMeter", "NoiseMonitor",
                 "ScanRegisterHarness", "FaultInjector",
                 "MeasuredDecoder", "GuardbandController",
                 "coverage_study"):
        assert hasattr(core, name), name


def test_analysis_package_surface():
    import repro.analysis as analysis

    for name in ("ThermometerWord", "decode_word", "run_yield_study",
                 "measure_s_curve", "linearity",
                 "effective_resolution_bits", "word_histogram"):
        assert hasattr(analysis, name), name


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"
    assert "SensorSystem" in repro.__all__


# -- end-to-end sanity: the paper's headline in one breath ------------------------

def test_headline_one_breath(design):
    """The whole reproduction in four asserts (the README quickstart)."""
    from repro import SensorSystem
    from repro.sim.waveform import StepWaveform

    run = SensorSystem(design, include_ls=False).run(
        2, code_hs=3, vdd_n=StepWaveform(1.0, 0.9, 16 * NS)
    )
    assert [m.word.to_string() for m in run.hs] == \
        ["0011111", "0000011"]
    assert run.hs[0].decoded.lo == pytest.approx(0.992, abs=5e-4)
    assert run.hs[1].decoded.hi == pytest.approx(0.929, abs=5e-4)
    assert run.switching_energy > 0
