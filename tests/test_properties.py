"""Property-based tests (hypothesis) on core data structures and the
library's cross-cutting invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.thermometer import ThermometerWord, decode_word
from repro.cells.characterize import characterize_cell
from repro.cells.combinational import Inverter, Nand2
from repro.core.calibration import paper_design
from repro.core.encoder import ThermometerEncoder
from repro.devices.mosfet import AlphaPowerModel, voltage_factor
from repro.devices.technology import TECH_90NM
from repro.sim.waveform import PiecewiseLinearWaveform
from repro.units import FF


# -- thermometer words ---------------------------------------------------------

word_bits = st.lists(st.integers(min_value=0, max_value=1),
                     min_size=1, max_size=16)


@given(word_bits)
def test_word_string_roundtrip(bits):
    w = ThermometerWord(bits)
    assert ThermometerWord.from_string(w.to_string()) == w


@given(word_bits)
def test_corrected_is_valid_and_preserves_ones(bits):
    w = ThermometerWord(bits)
    c = w.corrected()
    assert c.is_valid_thermometer
    assert c.ones == w.ones


@given(word_bits)
def test_corrected_idempotent(bits):
    w = ThermometerWord(bits).corrected()
    assert w.corrected() == w


@given(word_bits)
def test_bubble_count_zero_iff_valid(bits):
    w = ThermometerWord(bits)
    assert (w.bubble_count == 0) == w.is_valid_thermometer


@given(st.integers(min_value=0, max_value=7))
def test_decode_word_brackets_are_tight(k):
    """Every valid k-ones word decodes to the k-th rung interval."""
    design = paper_design()
    thresholds = design.bit_thresholds_code011
    w = ThermometerWord(tuple(1 if i < k else 0 for i in range(7)))
    rng = decode_word(w, thresholds)
    if k > 0:
        assert rng.lo == thresholds[k - 1]
    else:
        assert math.isinf(rng.lo)
    if k < 7:
        assert rng.hi == thresholds[k]
    else:
        assert math.isinf(rng.hi)


@given(word_bits)
def test_encoder_equals_popcount(bits):
    enc = ThermometerEncoder(len(bits))
    assert enc.encode(ThermometerWord(bits)).oute == sum(bits)


# -- device model ---------------------------------------------------------------

supplies = st.floats(min_value=0.5, max_value=1.5)
loads = st.floats(min_value=0.0, max_value=5e-12)


@given(supplies, supplies, loads)
def test_delay_monotone_decreasing_in_supply(v1, v2, load):
    m = AlphaPowerModel(TECH_90NM)
    lo, hi = sorted((v1, v2))
    if hi - lo < 1e-9:
        return
    assert m.delay(hi, load) <= m.delay(lo, load)


@given(supplies, loads, loads)
def test_delay_monotone_increasing_in_load(v, c1, c2):
    m = AlphaPowerModel(TECH_90NM)
    lo, hi = sorted((c1, c2))
    assert m.delay(v, lo) <= m.delay(v, hi)


@given(st.floats(min_value=0.05, max_value=0.4),
       st.floats(min_value=1.05, max_value=1.95),
       supplies)
def test_voltage_factor_positive_above_threshold(vth, alpha, v):
    g = voltage_factor(v, vth, alpha)
    if v > vth:
        assert g > 0 and math.isfinite(g)
    else:
        assert math.isinf(g)


@given(supplies, loads)
def test_supply_for_delay_is_inverse(v, load):
    m = AlphaPowerModel(TECH_90NM)
    target = m.delay(v, load)
    recovered = m.supply_for_delay(target, load, v_hi=2.0)
    assert recovered == pytest.approx(v, abs=1e-5)


# -- NLDM vs analytic -------------------------------------------------------------

@settings(max_examples=25)
@given(st.floats(min_value=0.72, max_value=1.28),
       st.floats(min_value=0.0, max_value=25e-15))
def test_nldm_interpolation_tracks_analytic(v, load):
    inv = Inverter(TECH_90NM)
    table = characterize_cell(inv)
    analytic = inv.propagation_delay("A", "Y", v, load)
    assert table.lookup(v, load) == pytest.approx(analytic, rel=0.06)


# -- PWL waveforms ------------------------------------------------------------------

@st.composite
def pwl_waveforms(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    times = sorted(draw(st.lists(
        st.floats(min_value=0.0, max_value=1e-6), min_size=n, max_size=n,
        unique=True,
    )))
    values = draw(st.lists(
        st.floats(min_value=0.0, max_value=2.0), min_size=n, max_size=n,
    ))
    return PiecewiseLinearWaveform(times, values)


@given(pwl_waveforms(), st.floats(min_value=-1e-7, max_value=2e-6))
def test_pwl_bounded_by_breakpoint_values(w, t):
    lo, hi = float(np.min(w.values)), float(np.max(w.values))
    assert lo - 1e-12 <= w(t) <= hi + 1e-12


@given(pwl_waveforms())
def test_pwl_exact_at_breakpoints(w):
    for t, v in zip(w.times, w.values):
        assert w(t) == pytest.approx(v, abs=1e-9)


# -- sensor invariants ----------------------------------------------------------------

@settings(max_examples=30)
@given(st.floats(min_value=0.80, max_value=1.10),
       st.integers(min_value=1, max_value=3))
def test_array_word_valid_and_brackets(v, code):
    """For any static supply and plotted code: the analytic word is a
    valid thermometer code and its decode brackets the supply (within
    the measurable range)."""
    from repro.core.array import SensorArray

    design = paper_design()
    arr = SensorArray(design)
    m = arr.measure(code, vdd_n=v)
    assert m.word.is_valid_thermometer
    rng = arr.decode(m.word, code)
    # Guard band for supplies landing exactly on a threshold: the
    # brentq-inverted ladder and the direct delay comparison can
    # disagree by the root-finder tolerance (~1e-9 V).
    assert rng.lo - 1e-6 < v <= rng.hi + 1e-6


@settings(max_examples=20)
@given(st.floats(min_value=0.86, max_value=1.04),
       st.floats(min_value=0.86, max_value=1.04))
def test_array_reading_monotone(v1, v2):
    from repro.core.array import SensorArray

    design = paper_design()
    arr = SensorArray(design)
    lo, hi = sorted((v1, v2))
    ones_lo = arr.measure(3, vdd_n=lo).word.ones
    ones_hi = arr.measure(3, vdd_n=hi).word.ones
    assert ones_lo <= ones_hi


# -- logic cells ------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=1),
       st.integers(min_value=0, max_value=1))
def test_nand_de_morgan(a, b):
    nand = Nand2(TECH_90NM)
    assert nand.evaluate({"A": a, "B": b})["Y"] == (1 - (a and b))
