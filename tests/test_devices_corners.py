"""Process-corner tests."""

import pytest

from repro.devices.corners import CORNERS, ProcessCorner, corner_by_name
from repro.devices.mosfet import AlphaPowerModel
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.units import FF


def test_five_classic_corners_present():
    assert set(CORNERS) == {"TT", "SS", "FF", "SF", "FS"}


def test_tt_is_identity():
    t = CORNERS["TT"].apply(TECH_90NM)
    assert t.vth == TECH_90NM.vth
    assert t.drive_constant == TECH_90NM.drive_constant


def test_ss_is_slower_than_tt():
    ss = CORNERS["SS"].apply(TECH_90NM)
    d_ss = AlphaPowerModel(ss).delay(1.0, 5 * FF)
    d_tt = AlphaPowerModel(TECH_90NM).delay(1.0, 5 * FF)
    assert d_ss > d_tt


def test_ff_is_faster_than_tt():
    ff = CORNERS["FF"].apply(TECH_90NM)
    d_ff = AlphaPowerModel(ff).delay(1.0, 5 * FF)
    d_tt = AlphaPowerModel(TECH_90NM).delay(1.0, 5 * FF)
    assert d_ff < d_tt


def test_corner_ordering_ss_tt_ff():
    delays = {}
    for name in ("SS", "TT", "FF"):
        t = CORNERS[name].apply(TECH_90NM)
        delays[name] = AlphaPowerModel(t).delay(1.0, 5 * FF)
    assert delays["SS"] > delays["TT"] > delays["FF"]


def test_corner_renames_tech():
    t = CORNERS["SS"].apply(TECH_90NM)
    assert t.name.endswith("-SS")


def test_lookup_case_insensitive():
    assert corner_by_name("ss") is CORNERS["SS"]


def test_lookup_unknown_raises():
    with pytest.raises(ConfigurationError):
        corner_by_name("XX")


def test_rejects_nonpositive_drive_scale():
    with pytest.raises(ConfigurationError):
        ProcessCorner("BAD", 0.0, 0.0)
