"""Baseline-model tests: RO sensor, Razor, ideal analog sampler."""

import numpy as np
import pytest

from repro.baselines.analog_sampler import IdealAnalogSampler
from repro.baselines.razor import RazorOutcome, RazorStage
from repro.baselines.ring_oscillator import (
    RingOscillatorHarness,
    RingOscillatorSensor,
)
from repro.errors import ConfigurationError
from repro.sim.waveform import ConstantWaveform, StepWaveform
from repro.units import NS


# -- ring oscillator -----------------------------------------------------------

@pytest.fixture(scope="module")
def ro(design):
    return RingOscillatorSensor(design.tech)


def test_ro_frequency_drops_with_supply(ro):
    assert ro.frequency(0.9) < ro.frequency(1.0)


def test_ro_count_monotone_in_supply(ro):
    counts = [ro.count(100 * NS, vdd_n=v) for v in (0.85, 0.95, 1.05)]
    assert counts[0] < counts[1] < counts[2]


def test_ro_cannot_distinguish_vdd_from_gnd(ro):
    """The paper's §I criticism, quantified: a 50 mV droop and a 50 mV
    bounce give the same count."""
    droop = ro.count(200 * NS, vdd_n=0.95, gnd_n=0.0)
    bounce = ro.count(200 * NS, vdd_n=1.0, gnd_n=0.05)
    assert droop == bounce


def test_ro_averages_over_window(ro):
    """A half-window droop reads as the average, not the droop."""
    wf = StepWaveform(1.0, 0.9, 100 * NS)
    count_avg = ro.count(200 * NS, vdd_n=wf)
    count_nom = ro.count(200 * NS, vdd_n=1.0)
    count_low = ro.count(200 * NS, vdd_n=0.9)
    assert count_low < count_avg < count_nom


def test_ro_estimate_inverts_count(ro):
    c = ro.count(200 * NS, vdd_n=0.95)
    v = ro.estimate_supply(c, 200 * NS)
    assert v == pytest.approx(0.95, abs=0.01)


def test_ro_estimate_fooled_by_bounce(ro):
    """Ground bounce decodes as a phantom VDD droop."""
    c = ro.count(200 * NS, vdd_n=1.0, gnd_n=0.05)
    v = ro.estimate_supply(c, 200 * NS)
    assert v == pytest.approx(0.95, abs=0.01)  # wrong rail blamed


def test_ro_calibration_curve_monotone(ro):
    curve = ro.calibration_curve(np.linspace(0.85, 1.1, 6), 100 * NS)
    counts = [c for _, c in curve]
    assert all(b >= a for a, b in zip(counts, counts[1:]))


def test_ro_estimate_out_of_bracket(ro):
    with pytest.raises(ConfigurationError):
        ro.estimate_supply(10 ** 9, 100 * NS)


def test_ro_validation(design):
    with pytest.raises(ConfigurationError):
        RingOscillatorSensor(design.tech, n_stages=4)  # even
    with pytest.raises(ConfigurationError):
        RingOscillatorSensor(design.tech, n_stages=1)


def test_ro_structural_ring_oscillates(design):
    h = RingOscillatorHarness(design.tech)
    count = h.count_edges(20 * NS)
    assert count > 10


def test_ro_structural_slows_at_low_supply(design):
    h = RingOscillatorHarness(design.tech)
    c_nom = h.count_edges(20 * NS, vdd_n=1.0)
    c_low = h.count_edges(20 * NS, vdd_n=0.88)
    assert c_low < c_nom


def test_ro_structural_bounce_equals_droop(design):
    h = RingOscillatorHarness(design.tech)
    c_droop = h.count_edges(20 * NS, vdd_n=0.95, gnd_n=0.0)
    c_bounce = h.count_edges(20 * NS, vdd_n=1.0, gnd_n=0.05)
    assert c_droop == c_bounce


# -- Razor ----------------------------------------------------------------------

@pytest.fixture()
def razor(design):
    return RazorStage(design.tech, path_delay_nominal=1.5 * NS,
                      clock_period=2 * NS, delta=0.25 * NS,
                      setup_time=60e-12)


def test_razor_no_error_at_nominal(razor):
    assert razor.observe(1.0).outcome is RazorOutcome.NO_ERROR


def test_razor_detects_moderate_droop(razor):
    t = razor.error_threshold()
    obs = razor.observe(t - 0.01)
    assert obs.outcome is RazorOutcome.DETECTED_ERROR


def test_razor_silent_below_detection_window(razor):
    lo, hi = razor.detection_window()
    assert lo < hi
    obs = razor.observe(lo - 0.05)
    assert obs.outcome is RazorOutcome.UNDETECTED_FAILURE


def test_razor_binary_vs_thermometer(design, razor):
    """Razor yields one threshold; the thermometer yields seven."""
    razor_thresholds = 1
    assert design.n_bits > razor_thresholds


def test_razor_path_delay_scales(razor):
    assert razor.path_delay(0.9) > razor.path_delay(1.0)
    assert razor.path_delay(1.0) == pytest.approx(1.5 * NS)


def test_razor_validation(design):
    with pytest.raises(ConfigurationError):
        RazorStage(design.tech, path_delay_nominal=1.99 * NS,
                   clock_period=2 * NS, delta=0.25 * NS,
                   setup_time=60e-12)  # fails at nominal already


# -- analog sampler ---------------------------------------------------------------

def test_sampler_quantizes_to_lsb():
    s = IdealAnalogSampler(resolution_bits=8)
    q = s.quantize(0.937)
    assert abs(q - 0.937) <= s.lsb / 2


def test_sampler_clips_to_range():
    s = IdealAnalogSampler(v_min=0.6, v_max=1.4)
    assert s.quantize(0.1) == pytest.approx(0.6)
    assert s.quantize(2.0) <= 1.4


def test_sampler_more_bits_less_error():
    w = ConstantWaveform(0.937)
    ts = np.linspace(0, 1e-7, 64)
    e4 = IdealAnalogSampler(resolution_bits=4).rmse_against(w, ts)
    e10 = IdealAnalogSampler(resolution_bits=10).rmse_against(w, ts)
    assert e10 < e4


def test_sampler_noise_deterministic():
    s = IdealAnalogSampler(noise_rms=0.01, seed=5)
    w = ConstantWaveform(1.0)
    ts = np.linspace(0, 1e-7, 16)
    assert np.array_equal(s.sample(w, ts), s.sample(w, ts))


def test_sampler_jitter_on_moving_signal():
    s_jit = IdealAnalogSampler(jitter_rms=1e-9, seed=7,
                               resolution_bits=12)
    s_clean = IdealAnalogSampler(resolution_bits=12)
    w = StepWaveform(1.0, 0.9, 50e-9)
    ts = np.array([50e-9])
    # Jitter can land the sample on either side of the step.
    assert s_clean.sample(w, ts)[0] in (pytest.approx(0.9, abs=1e-3),)
    assert s_jit.sample(w, ts)[0] in (
        pytest.approx(0.9, abs=1e-3), pytest.approx(1.0, abs=1e-3)
    )


def test_sampler_validation():
    with pytest.raises(ConfigurationError):
        IdealAnalogSampler(resolution_bits=0)
    with pytest.raises(ConfigurationError):
        IdealAnalogSampler(v_min=1.0, v_max=0.9)
    s = IdealAnalogSampler()
    with pytest.raises(ConfigurationError):
        s.sample(ConstantWaveform(1.0), np.array([]))
