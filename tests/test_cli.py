"""CLI tests: every subcommand produces its expected report."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_info(capsys):
    code, out = run(capsys, "info")
    assert code == 0
    assert "fitted Vth" in out
    assert "0.1695" in out
    assert "[26, 40, 50, 65, 77, 92, 100, 107]" in out


def test_table_behavioural(capsys):
    code, out = run(capsys, "table")
    assert code == 0
    assert "011" in out
    assert "65.00" in out


def test_table_with_sim(capsys):
    code, out = run(capsys, "table", "--sim")
    assert code == 0
    assert "structural" in out


def test_fig4(capsys):
    code, out = run(capsys, "fig4", "--points", "5")
    assert code == 0
    assert "threshold" in out
    assert "2.00" in out and "0.9360" in out


def test_fig5(capsys):
    code, out = run(capsys, "fig5", "--codes", "3")
    assert code == 0
    assert "delay code 011" in out
    assert "0011111" in out
    assert "0.827" in out and "1.053" in out


def test_fig9(capsys):
    code, out = run(capsys, "fig9")
    assert code == 0
    assert "0011111" in out
    assert "0000011" in out
    assert "0.9920" in out


def test_critical_path(capsys):
    code, out = run(capsys, "critical-path")
    assert code == 0
    assert "1.2200 ns" in out
    assert "hold slack" in out
    assert "clean" in out


def test_measure_vdd(capsys):
    code, out = run(capsys, "measure", "--vdd", "0.95")
    assert code == 0
    assert "0000111" in out


def test_measure_gnd(capsys):
    code, out = run(capsys, "measure", "--gnd", "0.05")
    assert code == 0
    assert "GND-n" in out


def test_measure_autoranges(capsys):
    code, out = run(capsys, "measure", "--vdd", "1.15")
    assert code == 0
    assert "code 010" in out


def test_measure_saturated_exit_code(capsys):
    code, out = run(capsys, "measure", "--vdd", "0.40")
    assert code == 2
    assert "saturated" in out


def test_scan(capsys):
    code, out = run(capsys, "scan", "--rows", "6", "--cols", "6",
                    "--current", "4.0")
    assert code == 0
    assert "tile (" in out
    assert "bracket rate 100%" in out


def test_yield(capsys):
    code, out = run(capsys, "yield", "--dies", "10")
    assert code == 0
    assert "per-die ladder" in out


def test_faults(capsys):
    code, out = run(capsys, "faults")
    assert code == 0
    assert "overall            100%" in out


def test_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_measure_requires_one_rail(capsys):
    with pytest.raises(SystemExit):
        main(["measure"])
