"""CLI tests: every subcommand produces its expected report."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_info(capsys):
    code, out = run(capsys, "info")
    assert code == 0
    assert "fitted Vth" in out
    assert "0.1695" in out
    assert "[26, 40, 50, 65, 77, 92, 100, 107]" in out


def test_table_behavioural(capsys):
    code, out = run(capsys, "table")
    assert code == 0
    assert "011" in out
    assert "65.00" in out


def test_table_with_sim(capsys):
    code, out = run(capsys, "table", "--sim")
    assert code == 0
    assert "structural" in out


def test_fig4(capsys):
    code, out = run(capsys, "fig4", "--points", "5")
    assert code == 0
    assert "threshold" in out
    assert "2.00" in out and "0.9360" in out


def test_fig5(capsys):
    code, out = run(capsys, "fig5", "--codes", "3")
    assert code == 0
    assert "delay code 011" in out
    assert "0011111" in out
    assert "0.827" in out and "1.053" in out


def test_fig9(capsys):
    code, out = run(capsys, "fig9")
    assert code == 0
    assert "0011111" in out
    assert "0000011" in out
    assert "0.9920" in out


def test_critical_path(capsys):
    code, out = run(capsys, "critical-path")
    assert code == 0
    assert "1.2200 ns" in out
    assert "hold slack" in out
    assert "clean" in out


def test_measure_vdd(capsys):
    code, out = run(capsys, "measure", "--vdd", "0.95")
    assert code == 0
    assert "0000111" in out


def test_measure_gnd(capsys):
    code, out = run(capsys, "measure", "--gnd", "0.05")
    assert code == 0
    assert "GND-n" in out


def test_measure_autoranges(capsys):
    code, out = run(capsys, "measure", "--vdd", "1.15")
    assert code == 0
    assert "code 010" in out


def test_measure_saturated_exit_code(capsys):
    code, out = run(capsys, "measure", "--vdd", "0.40")
    assert code == 2
    assert "saturated" in out


def test_scan(capsys):
    code, out = run(capsys, "scan", "--rows", "6", "--cols", "6",
                    "--current", "4.0")
    assert code == 0
    assert "tile (" in out
    assert "bracket rate 100%" in out


def test_yield(capsys):
    code, out = run(capsys, "yield", "--dies", "10")
    assert code == 0
    assert "per-die ladder" in out


def test_faults(capsys):
    code, out = run(capsys, "faults")
    assert code == 0
    assert "overall            100%" in out


def test_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_measure_requires_one_rail(capsys):
    with pytest.raises(SystemExit):
        main(["measure"])


def test_bench_list(capsys):
    code, out = run(capsys, "bench", "--list")
    assert code == 0
    assert "available benches" in out
    for name in ("kernels", "telemetry"):
        assert f"  {name}" in out


def test_bench_without_name_lists_and_fails(capsys):
    code, out = run(capsys, "bench")
    assert code == 2
    assert "available benches" in out


def test_bench_unknown_name(capsys):
    code, out = run(capsys, "bench", "no-such-bench")
    assert code == 2
    assert "not found" in out


def test_cache_stats_hit_rate(capsys, tmp_path):
    code, out = run(capsys, "cache", "stats", "--dir", str(tmp_path))
    assert code == 0
    assert "hit rate  : n/a (no lookups)" in out


def test_telemetry(capsys):
    code, out = run(capsys, "telemetry", "--samples", "20000",
                    "--sites", "2", "--droops", "1")
    assert code == 0
    assert "telemetry: code 011, chunk 1024" in out
    assert "site site0:" in out and "site site1:" in out
    assert "20000 samples" in out
    assert "droop @site0:" in out


def test_telemetry_json_and_events_out(capsys, tmp_path):
    import json

    path = tmp_path / "events.jsonl"
    code, out = run(capsys, "telemetry", "--samples", "20000",
                    "--droops", "2", "--events-out", str(path),
                    "--json")
    assert code == 0
    assert f"wrote 2 event(s) to {path}" in out
    events = [json.loads(line) for line in
              path.read_text().splitlines()]
    assert len(events) == 2
    snap = json.loads(out[out.index("{"):])
    assert snap["totals"]["events"] == 2
    assert snap["sites"]["site0"]["decoded"] == 20000


def test_telemetry_fail_on_alert(capsys):
    code, out = run(capsys, "telemetry", "--samples", "20000",
                    "--droops", "1", "--alert-depth", "0.05",
                    "--fail-on-alert")
    assert code == 1
    assert "ALERTS: droop-depth" in out


def test_telemetry_policy_choices(capsys):
    with pytest.raises(SystemExit):
        main(["telemetry", "--policy", "bogus"])
