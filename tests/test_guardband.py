"""Guard-band controller tests, incl. a closed loop against the
analytic sensor."""

import pytest

from repro.analysis.thermometer import VoltageRange
from repro.core.array import SensorArray
from repro.core.guardband import GuardbandAction, GuardbandController
from repro.errors import ConfigurationError


def make(**kw):
    base = dict(vmin=0.88, margin=0.03, step=0.01, setpoint=1.0)
    base.update(kw)
    return GuardbandController(**base)


def test_lowers_with_ample_clearance():
    c = make()
    c.observe(VoltageRange(0.99, 1.02))
    assert c.decide() is GuardbandAction.LOWER
    assert c.setpoint == pytest.approx(0.99)


def test_holds_near_the_target():
    c = make(setpoint=0.93)
    c.observe(VoltageRange(0.92, 0.95))  # clearance 0.01 == step, < step+hyst
    assert c.decide() is GuardbandAction.HOLD
    assert c.setpoint == pytest.approx(0.93)


def test_raises_on_violation():
    c = make(setpoint=0.92)
    c.observe(VoltageRange(0.89, 0.92))  # 0.89 < vmin+margin = 0.91
    assert c.decide() is GuardbandAction.RAISE
    assert c.setpoint == pytest.approx(0.93)


def test_worst_of_epoch_governs():
    c = make()
    c.observe(VoltageRange(0.99, 1.02))
    c.observe(VoltageRange(0.92, 0.95))  # the droop event
    assert c.epoch_worst == pytest.approx(0.92)
    # Clearance 0.01 < step + hysteresis: hold, despite the first
    # reading alone justifying a lower.
    assert c.decide() is GuardbandAction.HOLD


def test_unmeasurable_low_reading_forces_raise():
    c = make(setpoint=0.95)
    c.observe(VoltageRange(float("-inf"), 0.83))
    assert c.decide() is GuardbandAction.RAISE


def test_respects_floor_and_ceiling():
    c = make(setpoint=0.705, floor=0.7)
    c.observe(VoltageRange(1.0, 1.05))
    assert c.decide() is GuardbandAction.HOLD  # lowering would breach floor
    c2 = make(setpoint=1.1, ceiling=1.1)
    c2.observe(VoltageRange(0.85, 0.88))
    c2.decide()
    assert c2.setpoint == pytest.approx(1.1)  # clamped


def test_decide_without_observations_raises():
    with pytest.raises(ConfigurationError):
        make().decide()


def test_epoch_resets_after_decide():
    c = make()
    c.observe(VoltageRange(0.99, 1.02))
    c.decide()
    with pytest.raises(ConfigurationError):
        c.decide()


def test_power_saving_quadratic():
    c = make(setpoint=0.9)
    assert c.power_saving() == pytest.approx(1 - 0.81)


def test_validation():
    with pytest.raises(ConfigurationError):
        make(vmin=0.0)
    with pytest.raises(ConfigurationError):
        make(step=0.0)
    with pytest.raises(ConfigurationError):
        make(setpoint=0.5, floor=0.7)


def test_closed_loop_converges_against_sensor(design):
    """Drive the policy with real decoded readings: the setpoint walks
    down until the margin binds, then holds without chattering."""
    array = SensorArray(design)
    # hysteresis >= the sensor LSB (~32 mV): see the class docstring —
    # the conservative decode sits up to one rung below truth.
    controller = GuardbandController(vmin=0.88, margin=0.0,
                                     step=0.01, setpoint=1.0,
                                     hysteresis=0.035)
    droop_depth = 0.035
    history = []
    for _ in range(20):
        # Worst instantaneous level this epoch: setpoint minus droop.
        worst_level = controller.setpoint - droop_depth
        for level in (controller.setpoint, worst_level):
            word = array.measure(3, vdd_n=level).word
            controller.observe(array.decode(word, 3))
        history.append((controller.setpoint, controller.decide()))
    actions = [a for _, a in history]
    # Converged: the tail holds steady.
    assert actions[-1] is GuardbandAction.HOLD
    assert actions[-2] is GuardbandAction.HOLD
    final = history[-1][0]
    # Tight but safe: the true worst case clears vmin...
    assert final - droop_depth > 0.88
    # ...and meaningful power was saved vs. the 1.0 V start.
    assert final <= 0.97
    # No raise events on the way down (monotone convergence).
    assert GuardbandAction.RAISE not in actions
