"""Shared fixtures.

The calibrated paper design is expensive enough (a handful of brentq
solves) to share session-wide; it is immutable, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro.cells.library import default_library
from repro.core.calibration import fit_paper_design


@pytest.fixture(scope="session")
def design():
    """The calibrated paper design (session-shared, frozen)."""
    return fit_paper_design()


@pytest.fixture(scope="session")
def tech(design):
    """The fitted technology."""
    return design.tech


@pytest.fixture()
def lib(tech):
    """A fresh default cell library on the fitted technology."""
    return default_library(tech)
