"""Trace serialization properties (hypothesis) and schema guards.

The record/replay substrate promises *bit-for-bit* round-trips:
record -> serialize (JSONL or CSV) -> deserialize -> replay must
reproduce every float exactly — including ``nan`` (masked-bit
entries), ``inf``, negative zero and subnormals — because a golden
trace is a regression gate, and a gate that quietly re-quantizes its
reference is no gate.  These tests drive that promise with generated
record streams, and pin the schema-versioning contract: readers
reject unknown ``trace/v*`` tags loudly instead of guessing.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import ReplayBackend
from repro.backends.trace import (
    TRACE_SCHEMA,
    Trace,
    TraceHeader,
    TraceWriter,
    dump_csv,
    dump_jsonl,
    float_token,
    parse_csv,
    parse_float_token,
    parse_jsonl,
    records_equal,
    seed_token,
)
from repro.errors import (
    ReplayMismatchError,
    TraceError,
    TraceSchemaError,
)
from repro.runtime.cache import stable_hash

HEADER = TraceHeader(schema=TRACE_SCHEMA, backend="kernel",
                     backend_fingerprint="fp-test",
                     seed_scheme="mc-seedseq-spawn/v1", note="prop")

# Every representable double, NaN / +-inf / -0.0 / subnormals included.
any_float = st.floats(width=64)
finite_float = st.floats(width=64, allow_nan=False, allow_infinity=False)
code_st = st.integers(min_value=0, max_value=7)
word_st = st.lists(st.integers(0, 1), min_size=1, max_size=8).map(tuple)


@st.composite
def measure_batch_record(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    n_bits = draw(st.integers(min_value=1, max_value=8))
    return {
        "op": "measure_batch",
        "code": draw(code_st),
        "levels": [draw(any_float) for _ in range(n)],
        "words": [tuple(draw(st.integers(0, 1)) for _ in range(n_bits))
                  for _ in range(n)],
    }


@st.composite
def bit_thresholds_record(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return {
        "op": "bit_thresholds",
        "code": draw(code_st),
        "bits": tuple(range(1, n + 1)),
        "values": [draw(any_float) for _ in range(n)],
    }


@st.composite
def lot_thresholds_record(draw):
    rows = draw(st.integers(min_value=1, max_value=3))
    lanes = draw(st.integers(min_value=1, max_value=5))
    return {
        "op": "lot_thresholds",
        "code": draw(code_st),
        "lot": "lothash",
        "table": [[draw(any_float) for _ in range(lanes)]
                  for _ in range(rows)],
    }


@st.composite
def s_curve_record(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    return {
        "op": "s_curve",
        "code": draw(code_st),
        "bits": (draw(st.integers(min_value=1, max_value=7)),),
        "noise_rms": draw(any_float),
        "span_sigmas": draw(any_float),
        "n_per_level": draw(st.integers(min_value=1, max_value=500)),
        "n_levels": n,
        "seed": seed_token(draw(st.integers(min_value=0,
                                            max_value=2**63 - 1))),
        "levels": [draw(any_float) for _ in range(n)],
        "probs": [draw(any_float) for _ in range(n)],
    }


configure_record = st.just(
    {"op": "configure", "design": "dhash", "rail": "vdd", "tech": ""}
)

record_stream = st.lists(
    st.one_of(measure_batch_record(), bit_thresholds_record(),
              lot_thresholds_record(), s_curve_record(),
              configure_record),
    min_size=0, max_size=6,
)


# -- serialization round-trips -------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(record_stream)
def test_jsonl_roundtrip_is_bit_exact(records):
    trace = Trace(header=HEADER)
    for r in records:
        trace.append(r)
    back = parse_jsonl(dump_jsonl(trace))
    assert back.header == trace.header
    assert len(back.records) == len(trace.records)
    assert all(records_equal(a, b)
               for a, b in zip(trace.records, back.records))


@settings(max_examples=60, deadline=None)
@given(record_stream)
def test_csv_roundtrip_is_bit_exact(records):
    trace = Trace(header=HEADER)
    for r in records:
        trace.append(r)
    back = parse_csv(dump_csv(trace))
    assert back.header == trace.header
    assert len(back.records) == len(trace.records)
    assert all(records_equal(a, b)
               for a, b in zip(trace.records, back.records))


@settings(max_examples=40, deadline=None)
@given(record_stream, st.sampled_from(["jsonl", "csv"]))
def test_streaming_writer_matches_batch_save(tmp_path_factory, records,
                                             fmt):
    """TraceWriter's append-as-you-go encoding parses back identical
    to a one-shot Trace.save of the same stream."""
    tmp = tmp_path_factory.mktemp("stream")
    path = tmp / f"t.{fmt}"
    with TraceWriter(HEADER, path) as w:
        for r in records:
            w.record(r)
    streamed = Trace.load(path)
    batch = Trace(header=HEADER)
    for r in records:
        batch.append(r)
    assert len(streamed.records) == len(batch.records)
    assert all(records_equal(a, b)
               for a, b in zip(streamed.records, batch.records))


@settings(max_examples=200, deadline=None)
@given(any_float)
def test_float_token_roundtrip(x):
    y = parse_float_token(float_token(x))
    if math.isnan(x):
        assert math.isnan(y)
    else:
        # == would pass for -0.0 vs 0.0; compare the actual bits.
        assert np.float64(x).tobytes() == np.float64(y).tobytes()


def test_seed_tokens_distinguish_int_and_seedseq():
    ss = np.random.SeedSequence(42).spawn(3)[1]
    assert seed_token(42) == "int:42"
    assert seed_token(ss) == "ss:42:1"
    assert seed_token(42) != seed_token(np.random.SeedSequence(42))


# -- record -> file -> replay bit-identity -------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    st.lists(any_float, min_size=1, max_size=4),
    st.lists(word_st.map(lambda w: (w + (0,) * 8)[:5]), min_size=1,
             max_size=4),
    st.sampled_from(["jsonl", "csv"]),
)
def test_synthesized_trace_replays_bit_for_bit(tmp_path_factory, design,
                                               levels, words, fmt):
    """A trace written to disk replays exactly: same request -> the
    recorded words verbatim; a *diverged* request -> loud mismatch."""
    n = min(len(levels), len(words))
    levels, words = levels[:n], words[:n]
    trace = Trace(header=HEADER)
    trace.append({"op": "configure", "design": stable_hash(design),
                  "rail": "vdd", "tech": ""})
    trace.append({"op": "measure_batch", "code": 3, "levels": levels,
                  "words": words})
    path = tmp_path_factory.mktemp("replay") / f"t.{fmt}"
    trace.save(path)

    replay = ReplayBackend(path)
    replay.configure(design)
    got = replay.measure_batch(levels, code=3)
    assert got.shape == (n, 5)
    assert np.array_equal(got, np.asarray(words, dtype=np.uint8))
    assert replay.exhausted

    from repro.backends.trace import floats_equal

    diverged = list(levels)
    diverged[0] = 1.0 if floats_equal(diverged[0], 0.0) else 0.0
    replay.rewind()
    replay.configure(design)
    with pytest.raises(ReplayMismatchError):
        replay.measure_batch(diverged, code=3)


def test_replay_rejects_wrong_op_and_code(design, tmp_path):
    trace = Trace(header=HEADER)
    trace.append({"op": "configure", "design": stable_hash(design),
                  "rail": "vdd", "tech": ""})
    trace.append({"op": "measure_batch", "code": 3, "levels": [0.95],
                  "words": [(1, 1, 1, 0, 0, 0, 0)]})
    path = tmp_path / "t.jsonl"
    trace.save(path)

    replay = ReplayBackend(path)
    replay.configure(design)
    with pytest.raises(ReplayMismatchError):
        replay.bit_thresholds(3)  # recorded op is measure_batch
    replay.rewind()
    replay.configure(design)
    with pytest.raises(ReplayMismatchError):
        replay.measure_batch([0.95], code=5)  # wrong code
    replay.rewind()
    replay.configure(design)
    replay.measure_batch([0.95], code=3)
    with pytest.raises(ReplayMismatchError):
        replay.measure_batch([0.95], code=3)  # trace exhausted


def test_replay_rejects_wrong_design(design, tmp_path):
    trace = Trace(header=HEADER)
    trace.append({"op": "configure", "design": stable_hash(design),
                  "rail": "vdd", "tech": ""})
    path = tmp_path / "t.jsonl"
    trace.save(path)
    other = design.with_load_caps(
        tuple(c * 1.5 for c in design.load_caps))
    with pytest.raises(ReplayMismatchError):
        ReplayBackend(path).configure(other)


# -- schema versioning ---------------------------------------------------------

def _header_text(schema, fmt):
    hdr = dict(HEADER.to_dict(), schema=schema)
    if fmt == "jsonl":
        import json

        return json.dumps(hdr) + "\n"
    lines = ["record,op,code,key,value"]
    lines += [f'-1,header,,{k},"{v}"' for k, v in hdr.items()]
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("fmt,parse", [("jsonl", parse_jsonl),
                                       ("csv", parse_csv)])
@pytest.mark.parametrize("schema", ["trace/v999", "trace/v0",
                                    "trace/v2-experimental"])
def test_unknown_trace_versions_are_rejected(fmt, parse, schema):
    with pytest.raises(TraceSchemaError):
        parse(_header_text(schema, fmt))


@pytest.mark.parametrize("fmt,parse", [("jsonl", parse_jsonl),
                                       ("csv", parse_csv)])
def test_missing_schema_tag_is_rejected(fmt, parse):
    with pytest.raises(TraceSchemaError):
        parse(_header_text("", fmt))


def test_current_schema_parses():
    assert parse_jsonl(_header_text(TRACE_SCHEMA, "jsonl")).header \
        == HEADER
    assert parse_csv(_header_text(TRACE_SCHEMA, "csv")).header == HEADER


def test_empty_and_garbage_files_fail_loudly(tmp_path):
    with pytest.raises(TraceError):
        parse_jsonl("")
    with pytest.raises(TraceError):
        parse_csv("")
    with pytest.raises(TraceError):
        parse_jsonl("not json\n")
    with pytest.raises(TraceError):
        parse_csv("a,b\n1,2\n")
    with pytest.raises(TraceError):
        parse_float_token("0xnope")
    with pytest.raises(TraceError):
        Trace.load(tmp_path / "missing.jsonl")
    with pytest.raises(TraceError):
        Trace.load(tmp_path / "bad.suffix")
