"""Waveform tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.waveform import (
    ConstantWaveform,
    DampedSineWaveform,
    PiecewiseLinearWaveform,
    ScaledWaveform,
    StepWaveform,
    SumWaveform,
)


def test_constant():
    w = ConstantWaveform(0.95)
    assert w(0.0) == 0.95
    assert w(1e9) == 0.95


def test_step_before_after():
    w = StepWaveform(1.0, 0.9, 5e-9)
    assert w(4.9e-9) == 1.0
    assert w(5e-9) == 0.9
    assert w(6e-9) == 0.9


def test_pwl_interpolates():
    w = PiecewiseLinearWaveform([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
    assert w(0.5) == pytest.approx(0.5)
    assert w(1.5) == pytest.approx(0.5)


def test_pwl_holds_ends():
    w = PiecewiseLinearWaveform([1.0, 2.0], [0.5, 0.7])
    assert w(0.0) == 0.5
    assert w(3.0) == 0.7


def test_pwl_single_point():
    w = PiecewiseLinearWaveform([1.0], [0.9])
    assert w(0.0) == 0.9
    assert w(2.0) == 0.9


def test_pwl_sample_vectorized():
    w = PiecewiseLinearWaveform([0.0, 1.0], [0.0, 2.0])
    out = w.sample([0.0, 0.25, 0.5, 1.0])
    assert np.allclose(out, [0.0, 0.5, 1.0, 2.0])


def test_pwl_min_max_over():
    w = PiecewiseLinearWaveform([0.0, 1.0, 2.0], [1.0, 0.0, 1.0])
    assert w.min_over(0.0, 2.0) == pytest.approx(0.0)
    assert w.max_over(0.0, 2.0) == pytest.approx(1.0)
    assert w.min_over(0.0, 0.5) == pytest.approx(0.5)


def test_pwl_min_over_bad_interval():
    w = PiecewiseLinearWaveform([0.0, 1.0], [0.0, 1.0])
    with pytest.raises(ConfigurationError):
        w.min_over(1.0, 0.0)


def test_pwl_rejects_unsorted_times():
    with pytest.raises(ConfigurationError):
        PiecewiseLinearWaveform([1.0, 0.5], [0.0, 1.0])


def test_pwl_rejects_length_mismatch():
    with pytest.raises(ConfigurationError):
        PiecewiseLinearWaveform([0.0, 1.0], [0.0])


def test_pwl_rejects_nonfinite():
    with pytest.raises(ConfigurationError):
        PiecewiseLinearWaveform([0.0, 1.0], [0.0, float("nan")])


def test_damped_sine_base_before_t0():
    w = DampedSineWaveform(base=1.0, amplitude=-0.1, freq=1e8,
                           decay=2e-8, t0=1e-8)
    assert w(0.5e-8) == 1.0


def test_damped_sine_droops_then_recovers():
    w = DampedSineWaveform(base=1.0, amplitude=-0.1, freq=1e8,
                           decay=2e-8, t0=0.0)
    quarter = 0.25 / 1e8
    assert w(quarter) < 1.0  # first droop
    assert abs(w(100e-8) - 1.0) < 1e-3  # decayed back


def test_damped_sine_rejects_bad_params():
    with pytest.raises(ConfigurationError):
        DampedSineWaveform(base=1.0, amplitude=0.1, freq=0.0, decay=1e-8)


def test_sum_adds_components():
    w = SumWaveform([ConstantWaveform(1.0), ConstantWaveform(-0.1)])
    assert w(0.0) == pytest.approx(0.9)


def test_sum_rejects_empty():
    with pytest.raises(ConfigurationError):
        SumWaveform([])


def test_scaled():
    w = ScaledWaveform(ConstantWaveform(0.5), scale=-1.0, offset=1.0)
    assert w(0.0) == pytest.approx(0.5)
