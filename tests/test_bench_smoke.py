"""Every bench module must import and expose collectable tests.

The benches only run when someone asks for them (``pytest
benchmarks``), so an API change can silently rot them.  This smoke
test makes bit-rot a tier-1 failure: each ``bench_*.py`` must import
cleanly and define at least one collectable ``test_*`` function whose
required arguments are known fixtures.
"""

import importlib
import inspect
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))

#: Fixtures a bench test may request (pytest-benchmark's, plus ours
#: from benchmarks/conftest.py and pytest built-ins).
KNOWN_FIXTURES = {"benchmark", "design", "tmp_path", "monkeypatch",
                  "capsys"}


def test_bench_suite_is_nonempty():
    assert len(BENCH_MODULES) >= 15


def test_chaos_campaign_smoke(design, tmp_path):
    """The end-to-end resilience drill stays green in tier-1: injected
    worker kills, vandalized cache entries and a stuck-at stage must
    not change the sweep's results on any surviving bit."""
    from benchmarks.bench_chaos_campaign import run_drill

    rep = run_drill(design, tmp_path)
    assert rep.diff.ok, [str(d) for d in rep.diff.divergences]
    assert rep.healed
    assert rep.crashes >= 1
    assert rep.masked_bits  # the stuck stage was caught and masked


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_bench_module_imports_and_collects(name):
    mod = importlib.import_module(f"benchmarks.{name}")
    tests = {
        attr: obj for attr, obj in vars(mod).items()
        if attr.startswith("test_") and callable(obj)
    }
    assert tests, f"{name} defines no collectable test function"
    for attr, fn in tests.items():
        params = inspect.signature(fn).parameters.values()
        unknown = [
            p.name for p in params
            if p.default is inspect.Parameter.empty
            and p.name not in KNOWN_FIXTURES
        ]
        assert not unknown, (
            f"{name}.{attr} requests unknown fixtures {unknown}"
        )
