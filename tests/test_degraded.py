"""Degraded-mode measurement: masked decode, screens, watchdogs.

The paper's deployment story (arrays spread across a die, screened
like scan chains) implies some arrays run with known-bad stages.
These tests pin the degraded path: suspect stages from the production
screen are masked, the thermometer re-decodes at reduced resolution,
and the reported range stays *correct* — it contains the full-array
decode.  The non-termination watchdogs (FSM schedule ticks, simulator
events) are covered here too: a wedged run must raise
``SimulationError``, never hang.
"""

from __future__ import annotations

import pytest

from repro.analysis.thermometer import ThermometerWord
from repro.core.array import SensorArray
from repro.core.control import ControlFSM
from repro.core.degraded import DegradedArray, degraded_from_screen
from repro.core.faults import FaultInjector, FaultType, screen_suspects
from repro.errors import ConfigurationError, SimulationError
from repro.units import NS


# -- DegradedArray construction ----------------------------------------------

def test_masked_bits_validated(design):
    with pytest.raises(ConfigurationError):
        DegradedArray(design, masked_bits=(0,))
    with pytest.raises(ConfigurationError):
        DegradedArray(design, masked_bits=(design.n_bits + 1,))
    with pytest.raises(ConfigurationError):
        DegradedArray(design, masked_bits=range(1, design.n_bits + 1))


def test_masked_bits_deduplicated_and_sorted(design):
    deg = DegradedArray(design, masked_bits=(5, 2, 5))
    assert deg.masked_bits == (2, 5)
    assert deg.n_bits == design.n_bits - 2
    assert deg.surviving_bits == (1, 3, 4, 6, 7)


def test_reduce_word_drops_masked_positions(design):
    deg = DegradedArray(design, masked_bits=(2,))
    word = ThermometerWord((1, 0, 1, 1, 0, 0, 0))
    assert deg.reduce_word(word).bits == (1, 1, 1, 0, 0, 0)
    with pytest.raises(ConfigurationError):
        deg.reduce_word(ThermometerWord((1, 0)))


def test_empty_mask_decodes_identically_to_full_array(design):
    arr = SensorArray(design)
    deg = DegradedArray(design)
    code = 3
    level = 0.95
    word = arr.measure(code, vdd_n=level).word
    full = arr.decode(word, code, strict=False)
    r = deg.decode(word, code)
    assert (r.decoded.lo, r.decoded.hi) == (full.lo, full.hi)
    assert not r.degraded
    assert r.resolution == r.full_resolution == design.n_bits


# -- masked decoding ----------------------------------------------------------

def test_masked_decode_contains_clean_range(design):
    """The degraded range must bracket the full-array decode at every
    level across the dynamic: correct, merely wider."""
    arr = SensorArray(design)
    code = 3
    ladder = arr.supply_thresholds(code)
    deg = DegradedArray(design, masked_bits=(3, 6))
    probes = [0.5 * (a + b) for a, b in zip(ladder, ladder[1:])]
    probes += [ladder[0] - 0.02, ladder[-1] + 0.02]
    for level in probes:
        word = arr.measure(code, vdd_n=level).word
        clean = arr.decode(word, code, strict=False)
        r = deg.decode(word, code)
        assert r.decoded.lo <= clean.lo
        assert r.decoded.hi >= clean.hi
        assert r.decoded.contains(level) or not clean.contains(level)


def test_degraded_decode_reports_resolution_loss(design):
    deg = DegradedArray(design, masked_bits=(4,))
    word = SensorArray(design).measure(3, vdd_n=0.95).word
    r = deg.decode(word, 3)
    assert r.degraded
    assert r.resolution == design.n_bits - 1
    assert r.full_resolution == design.n_bits
    assert r.masked_bits == (4,)
    assert len(r.word) == design.n_bits - 1
    assert r.uncertainty == r.decoded.hi - r.decoded.lo


def test_bubble_caused_by_masked_stage_decodes_cleanly(design):
    """A word invalid only because of the dead stage is fine once the
    stage is dropped."""
    deg = DegradedArray(design, masked_bits=(2,))
    bubbled = ThermometerWord((1, 0, 1, 1, 0, 0, 0))  # stage 2 dead
    assert not bubbled.is_valid_thermometer
    assert deg.reduce_word(bubbled).is_valid_thermometer
    r = deg.decode(bubbled, 3)
    ladder = deg.supply_thresholds(3)
    assert r.decoded.lo == ladder[2]  # three surviving passes


def test_gnd_rail_masked_decode_converts_to_bounce(design):
    from repro.core.sensor import SenseRail

    deg = DegradedArray(design, masked_bits=(1,), rail=SenseRail.GND)
    word = ThermometerWord((1, 1, 1, 0, 0, 0, 0))
    r = deg.decode(word, 3)
    nominal = design.tech.vdd_nominal
    assert 0 <= r.decoded.lo < r.decoded.hi <= nominal


def test_analytic_measure_matches_decode_of_full_word(design):
    arr = SensorArray(design)
    deg = arr.masked((2, 7))
    assert isinstance(deg, DegradedArray)
    level = 0.95
    via_measure = deg.measure(3, vdd_n=level)
    via_decode = deg.decode(arr.measure(3, vdd_n=level).word, 3)
    assert via_measure.word == via_decode.word
    assert via_measure.decoded.lo == via_decode.decoded.lo


# -- screening into degraded mode --------------------------------------------

def test_screen_suspects_empty_for_healthy_array(design):
    assert screen_suspects(FaultInjector(design)) == ()


def test_screen_suspects_flags_stuck_stage(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_PASS, 4)
    suspects = screen_suspects(injector)
    assert 4 in suspects
    with pytest.raises(ConfigurationError):
        screen_suspects(injector, margin=0.0)


def test_degraded_from_screen_masks_the_fault(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_FAIL, 2)
    deg = degraded_from_screen(injector)
    assert 2 in deg.masked_bits
    assert deg.n_bits < design.n_bits
    # And the degraded array still measures sensibly.
    r = deg.measure(3, vdd_n=0.95)
    assert r.decoded.contains(0.95)


# -- watchdogs ---------------------------------------------------------------

def test_run_schedule_watchdog_raises_instead_of_hanging():
    fsm = ControlFSM()
    with pytest.raises(SimulationError, match="did not terminate"):
        fsm.run_schedule(3, clock_period=2 * NS, start_time=4 * NS,
                         enable=False, max_ticks=25)


def test_run_schedule_watchdog_validates_and_passes_healthy_runs():
    fsm = ControlFSM()
    with pytest.raises(ConfigurationError):
        fsm.run_schedule(1, clock_period=2 * NS, start_time=4 * NS,
                         max_ticks=0)
    sched = fsm.run_schedule(2, clock_period=2 * NS, start_time=4 * NS,
                             max_ticks=200)
    assert len(sched.sense_times) == 2


def test_system_run_max_events_watchdog(design):
    from repro.core.system import SensorSystem

    system = SensorSystem(design, include_ls=False)
    with pytest.raises(SimulationError, match="max_events"):
        system.run(1, max_events=10)
    # The same system completes under the default budget.
    run = system.run(1, vdd_n=0.95)
    assert len(run.hs) == 1
