"""Crash/resume drill: SIGKILL a campaign mid-stage, resume, prove
bit-identity against an untouched clean run.

This is the committed CI spec (``tests/data/campaigns/smoke.toml``)
exercised exactly the way the CI campaign-smoke job runs it, via the
CLI in subprocesses:

1. ``repro campaign run --chaos-kill-after N`` arms a
   :class:`~repro.runtime.chaos.KillAfterPuts` cache wrapper that
   SIGKILLs the process after its Nth task-cache put — mid-stage,
   with some results durably cached and some not;
2. ``repro campaign resume`` re-invokes the same spec on the same
   out dir and must finish from the cache;
3. a clean run in a separate directory, plus ``repro campaign
   diff``, proves the resumed run is bit-identical: zero
   divergences at ``float_tol=0`` and byte-identical result files.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).parent.parent
SPEC = REPO / "tests" / "data" / "campaigns" / "smoke.toml"
GOLDEN = REPO / "tests" / "data" / "campaigns" / "golden_smoke"


def repro_cli(*args, timeout=300):
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        (src, existing))
    return subprocess.run(
        [sys.executable, "-m", "repro", *map(str, args)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def test_kill_resume_is_bit_identical(tmp_path):
    killed = tmp_path / "killed"
    clean = tmp_path / "clean"

    # 1. Arm the kill: the process must die, not exit.
    first = repro_cli("campaign", "run", SPEC, "--out", killed,
                      "--chaos-kill-after", "2")
    assert first.returncode != 0, first.stdout
    assert (killed / "chaos-kill.marker").exists()
    assert not (killed / "manifest.json").exists()

    # 2. Resume: the marker disarms the killer; cached task results
    # replay and the campaign completes from where it died.
    second = repro_cli("campaign", "resume", SPEC, "--out", killed)
    assert second.returncode == 0, second.stdout + second.stderr
    assert (killed / "manifest.json").exists()

    # 3. Clean reference run, then the golden diff: nothing diverges.
    third = repro_cli("campaign", "run", SPEC, "--out", clean)
    assert third.returncode == 0, third.stdout + third.stderr

    diff = repro_cli("campaign", "diff", killed, clean)
    assert diff.returncode == 0, diff.stdout + diff.stderr
    assert "zero divergences" in diff.stdout

    # Belt and braces: the per-stage result files are byte-identical.
    killed_results = sorted((killed / "results").glob("*.json"))
    clean_results = sorted((clean / "results").glob("*.json"))
    assert [p.name for p in killed_results] == \
        [p.name for p in clean_results] != []
    for a, b in zip(killed_results, clean_results):
        assert a.read_bytes() == b.read_bytes(), a.name


def test_committed_golden_still_reproduces(tmp_path):
    """The frozen fixture under tests/data must match a fresh run.

    ``--float-tol`` absorbs cross-environment last-digit drift; the
    committed golden was frozen by scripts/regen_campaign_golden.py.
    """
    out = tmp_path / "out"
    run = repro_cli("campaign", "run", SPEC, "--out", out,
                    "--golden", GOLDEN, "--float-tol", "1e-9")
    assert run.returncode == 0, run.stdout + run.stderr
    assert "zero divergences" in run.stdout


def test_kill_after_puts_requires_positive_count(tmp_path):
    bad = repro_cli("campaign", "run", SPEC, "--out", tmp_path / "o",
                    "--chaos-kill-after", "0")
    assert bad.returncode != 0
