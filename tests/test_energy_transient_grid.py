"""Switching-energy accounting and quasi-static grid-transient tests."""

import numpy as np
import pytest

from repro.cells.combinational import Inverter
from repro.core.system import SensorSystem
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid
from repro.psn.transient_grid import (
    migrating_hotspot,
    solve_transient,
)
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.units import FF, NS


def single_inverter(extra_cap=0.0, vdd=1.0):
    nl = Netlist()
    nl.add_supply("VDD", vdd)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a")
    nl.add_net("y", extra_cap=extra_cap)
    nl.mark_external_input("a")
    inv = Inverter(TECH_90NM)
    nl.add_instance("u", inv, {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    return nl, inv


# -- energy accounting ---------------------------------------------------------

def test_energy_half_cv2_per_transition():
    cap = 10 * FF
    nl, inv = single_inverter(extra_cap=cap)
    engine = SimulationEngine(nl)
    engine.set_initial("a", 0)
    engine.settle()
    engine.schedule_stimulus("a", 1, 1 * NS)
    engine.run(3 * NS)
    expected = 0.5 * (cap + inv.model.intrinsic_cap) * 1.0 ** 2
    assert engine.total_energy == pytest.approx(expected)


def test_energy_scales_with_v_squared():
    nl_hi, _ = single_inverter(extra_cap=10 * FF, vdd=1.2)
    nl_lo, _ = single_inverter(extra_cap=10 * FF, vdd=0.8)
    energies = []
    for nl in (nl_hi, nl_lo):
        engine = SimulationEngine(nl)
        engine.set_initial("a", 0)
        engine.settle()
        engine.schedule_stimulus("a", 1, 1 * NS)
        engine.run(3 * NS)
        energies.append(engine.total_energy)
    assert energies[0] / energies[1] == pytest.approx((1.2 / 0.8) ** 2)


def test_energy_counts_both_edges():
    nl, inv = single_inverter(extra_cap=5 * FF)
    engine = SimulationEngine(nl)
    engine.set_initial("a", 0)
    engine.settle()
    engine.schedule_stimulus("a", 1, 1 * NS)
    engine.schedule_stimulus("a", 0, 2 * NS)
    engine.run(4 * NS)
    per_edge = 0.5 * (5 * FF + inv.model.intrinsic_cap)
    assert engine.total_energy == pytest.approx(2 * per_edge)


def test_stimulus_transitions_not_charged():
    """External input edges draw from off-netlist sources."""
    nl, _ = single_inverter()
    engine = SimulationEngine(nl)
    engine.set_initial("a", 0)
    engine.settle()
    engine.schedule_stimulus("a", 1, 1 * NS)
    engine.run(3 * NS)
    assert "u" in engine.energy_by_instance
    assert set(engine.energy_by_instance) == {"u"}


def test_system_burst_energy_positive_and_scales(design):
    system = SensorSystem(design, include_ls=False)
    one = system.run(1, vdd_n=0.97).switching_energy
    five = system.run(5, vdd_n=0.97).switching_energy
    assert one > 0
    # Per-measure energy dominates; 5 measures cost ~5x one.
    assert five == pytest.approx(5 * one, rel=0.25)


def test_sensor_burst_energy_order_of_magnitude(design):
    """~7 stages x ~2 pF x 1V^2 per PREPARE/SENSE pair: tens of pJ per
    measure — the 'very low power overhead' magnitude."""
    system = SensorSystem(design, include_ls=False)
    run = system.run(1, vdd_n=1.0)
    assert 5e-12 < run.switching_energy < 100e-12


# -- transient grid -----------------------------------------------------------

@pytest.fixture()
def grid():
    return IRDropGrid(rows=5, cols=5, r_segment=0.05, r_pad=0.01)


def test_transient_matches_static_for_constant_currents(grid):
    currents = grid.hotspot_currents(total_current=3.0, hotspot=(2, 2))
    tr = solve_transient(grid, lambda t: currents,
                         t_end=50 * NS, dt=10 * NS)
    static = grid.solve(currents)
    for k in range(tr.times.size):
        assert np.allclose(tr.voltages[k], static)


def test_migrating_hotspot_moves_the_droop(grid):
    fn = migrating_hotspot(grid, total_current=4.0,
                           path=[(0, 0), (4, 4)], dwell=50 * NS)
    tr = solve_transient(grid, fn, t_end=120 * NS, dt=10 * NS)
    early = tr.snapshot(10 * NS)
    late = tr.snapshot(110 * NS)
    assert np.argmin(early) == grid.tile_index(0, 0)
    assert np.argmin(late) == grid.tile_index(4, 4)


def test_worst_tile_and_drop(grid):
    fn = migrating_hotspot(grid, total_current=4.0,
                           path=[(1, 3)], dwell=50 * NS)
    tr = solve_transient(grid, fn, t_end=50 * NS, dt=10 * NS)
    assert tr.worst_tile() == (1, 3)
    assert tr.worst_drop() > 0


def test_waveform_at_tile_feeds_sensor(grid, design):
    """A tile waveform binds straight to a sensor harness."""
    from repro.core.array import SensorArrayHarness

    fn = migrating_hotspot(grid, total_current=4.0,
                           path=[(2, 2)], dwell=100 * NS)
    tr = solve_transient(grid, fn, t_end=100 * NS, dt=10 * NS)
    wf = tr.waveform_at(2, 2)
    h = SensorArrayHarness(design)
    m = h.measure_once(3, vdd_n=wf)
    from repro.core.array import SensorArray

    rng = SensorArray(design).decode(m.word, 3)
    assert rng.contains(wf(2 * h.PREPARE_LEAD))


def test_snapshot_interpolates(grid):
    fn = migrating_hotspot(grid, total_current=4.0,
                           path=[(0, 0), (4, 4)], dwell=30 * NS)
    tr = solve_transient(grid, fn, t_end=60 * NS, dt=10 * NS)
    mid = tr.snapshot(15 * NS)
    assert mid.shape == (5, 5)
    # Clamps outside the sweep.
    assert np.allclose(tr.snapshot(-1.0), tr.voltages[0])
    assert np.allclose(tr.snapshot(1.0), tr.voltages[-1])


def test_transient_validation(grid):
    with pytest.raises(ConfigurationError):
        solve_transient(grid, lambda t: np.zeros((5, 5)),
                        t_end=0.0, dt=1 * NS)
    with pytest.raises(ConfigurationError):
        solve_transient(grid, lambda t: np.zeros((3, 3)),
                        t_end=50 * NS, dt=10 * NS)
    with pytest.raises(ConfigurationError):
        migrating_hotspot(grid, total_current=1.0, path=[],
                          dwell=1 * NS)
