"""CLI error hygiene, verified through real subprocesses.

Operator-facing failures must surface as a single ``error: <Type>:
<message>`` line on stderr with a nonzero exit — never a Python
traceback — and ``--traceback`` must opt back into the full stack for
debugging.  Run via subprocess so sys.excepthook, exit codes and
stream separation are the real thing, not capsys approximations.
"""

from __future__ import annotations

import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def run_cli(*argv, timeout=60):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def test_repro_error_is_one_line_no_traceback():
    # Nothing listens on this port: ServiceError from connect().
    proc = run_cli("submit", "127.0.0.1:1", "ping")
    assert proc.returncode == 1
    lines = [l for l in proc.stderr.splitlines() if l.strip()]
    assert len(lines) == 1
    assert lines[0].startswith("error: ServiceError: cannot connect")
    assert "Traceback" not in proc.stderr


def test_traceback_flag_restores_the_stack():
    proc = run_cli("--traceback", "submit", "127.0.0.1:1", "ping")
    assert proc.returncode != 0
    assert "Traceback (most recent call last)" in proc.stderr
    assert "ServiceError" in proc.stderr


def test_bad_params_json_is_a_protocol_error():
    proc = run_cli("submit", "127.0.0.1:1", "measure",
                   "--params", "{not json")
    assert proc.returncode == 1
    assert proc.stderr.startswith("error: ProtocolError:")
    assert "Traceback" not in proc.stderr


def test_configuration_error_from_bad_flags():
    proc = run_cli("serve", "--queue-depth", "0",
                   "--max-requests", "0")
    assert proc.returncode == 1
    assert proc.stderr.startswith("error: ConfigurationError:")
    assert "Traceback" not in proc.stderr


def test_clean_commands_stay_quiet_on_stderr():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert proc.stderr == ""
    assert "fitted Vth" in proc.stdout
