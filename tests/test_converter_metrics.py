"""DNL/INL converter-metric tests."""

import numpy as np
import pytest

from repro.analysis.converter_metrics import (
    effective_resolution_bits,
    linearity,
)
from repro.errors import ConfigurationError


PERFECT = tuple(0.8 + 0.03 * i for i in range(8))


def test_perfect_ladder_zero_dnl_inl():
    rep = linearity(PERFECT)
    assert rep.max_dnl == pytest.approx(0.0, abs=1e-9)
    assert rep.max_inl == pytest.approx(0.0, abs=1e-9)
    assert rep.monotonic


def test_lsb_is_mean_step():
    rep = linearity(PERFECT)
    assert rep.lsb == pytest.approx(0.03)


def test_wide_step_positive_dnl():
    ladder = [0.8, 0.83, 0.88, 0.91]  # middle step 0.05 vs lsb ~0.0367
    rep = linearity(ladder)
    assert rep.dnl[1] > 0
    assert rep.dnl[0] < 0


def test_endpoint_inl_zero_at_ends():
    ladder = [0.8, 0.835, 0.86, 0.89]
    rep = linearity(ladder)
    assert rep.inl[0] == pytest.approx(0.0, abs=1e-12)
    assert rep.inl[-1] == pytest.approx(0.0, abs=1e-12)


def test_best_fit_reference_smaller_worst_inl():
    # A bowed ladder: endpoint INL concentrates in the middle;
    # best-fit splits it.
    ladder = [0.8, 0.84, 0.872, 0.9]
    ep = linearity(ladder, reference="endpoint")
    bf = linearity(ladder, reference="best-fit")
    assert bf.max_inl <= ep.max_inl + 1e-12


def test_validation():
    with pytest.raises(ConfigurationError):
        linearity([0.8, 0.9])
    with pytest.raises(ConfigurationError):
        linearity([0.8, 0.9, 0.85])
    with pytest.raises(ConfigurationError):
        linearity(PERFECT, reference="median")


def test_paper_ladder_metrics(design):
    """The anchor-fitted ladder: sub-LSB nonlinearity, monotone."""
    rep = linearity(design.bit_thresholds_code011)
    assert rep.monotonic
    assert rep.max_dnl < 1.0
    assert rep.max_inl < 1.0
    # The paper's first step (0.827 -> 0.896) is visibly wider than the
    # rest: positive DNL on step 1.
    assert rep.dnl[0] == max(rep.dnl)


def test_linearized_caps_flatten_dnl(design):
    fitted = linearity(design.bit_thresholds_code011)
    linear_design = design.with_load_caps(design.linearized_load_caps())
    linear_ladder = tuple(
        linear_design.bit_threshold(b, 3)
        for b in range(1, linear_design.n_bits + 1)
    )
    linearized = linearity(linear_ladder)
    assert linearized.max_dnl < fitted.max_dnl


def test_enob_decreases_with_noise(design):
    ladder = design.bit_thresholds_code011
    clean = effective_resolution_bits(ladder, 0.0)
    noisy = effective_resolution_bits(ladder, 0.02)
    assert clean > noisy
    assert clean == pytest.approx(np.log2(len(ladder) - 1), abs=0.01)


def test_enob_validation(design):
    with pytest.raises(ConfigurationError):
        effective_resolution_bits(design.bit_thresholds_code011, -0.1)
    with pytest.raises(ConfigurationError):
        effective_resolution_bits([1.0], 0.0)
