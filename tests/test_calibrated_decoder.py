"""Per-die calibrated-decoder tests: the characterization loop closes."""

import pytest

from repro.analysis.thermometer import ThermometerWord
from repro.core.array import SensorArrayHarness
from repro.core.calibrated_decoder import MeasuredDecoder
from repro.devices.corners import corner_by_name
from repro.errors import ConfigurationError


def test_design_ladder_matches_sensor_array(design):
    dec = MeasuredDecoder.from_design(design)
    assert dec.ladder == pytest.approx(design.bit_thresholds_code011)
    rng = dec.decode(ThermometerWord.from_string("0011111"))
    assert rng.lo == pytest.approx(0.992, abs=5e-4)


def test_s_curve_decoder_close_to_design(design):
    dec = MeasuredDecoder.from_s_curves(design, n_per_level=120)
    ref = MeasuredDecoder.from_design(design)
    for got, want in zip(dec.ladder, ref.ladder):
        assert got == pytest.approx(want, abs=2e-3)
    assert dec.source == "s-curve"


def test_bisection_decoder_close_to_design(design):
    dec = MeasuredDecoder.from_bisection(design, tol=0.5e-3)
    ref = MeasuredDecoder.from_design(design)
    for got, want in zip(dec.ladder, ref.ladder):
        assert got == pytest.approx(want, abs=1.5e-3)


def test_calibration_recovers_corner_die(design):
    """The headline: a corner-shifted die mis-brackets against the
    design ladder but brackets correctly against its own bisected
    ladder."""
    ss = corner_by_name("SS").apply(design.tech)
    harness = SensorArrayHarness(design, tech=ss)
    nominal = MeasuredDecoder.from_design(design)          # wrong die
    calibrated = MeasuredDecoder.from_bisection(design, tech=ss,
                                                tol=0.5e-3)
    probe_levels = (0.90, 0.95, 1.00)
    nominal_hits = 0
    calibrated_hits = 0
    for v in probe_levels:
        word = harness.measure_once(3, vdd_n=v).word
        if nominal.decode(word).contains(v):
            nominal_hits += 1
        if calibrated.decode(word).contains(v):
            calibrated_hits += 1
    assert calibrated_hits == len(probe_levels)
    assert calibrated_hits >= nominal_hits


def test_decoder_validation():
    with pytest.raises(ConfigurationError):
        MeasuredDecoder(ladder=(0.9,), code=3)
    with pytest.raises(ConfigurationError):
        MeasuredDecoder(ladder=(0.9, 0.8), code=3)
    with pytest.raises(ConfigurationError):
        MeasuredDecoder(ladder=(0.8, 0.9), code=9)


def test_measurable_range(design):
    dec = MeasuredDecoder.from_design(design)
    lo, hi = dec.measurable_range()
    assert lo == pytest.approx(0.827, abs=5e-4)
    assert hi == pytest.approx(1.053, abs=5e-4)
