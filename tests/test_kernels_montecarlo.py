"""Batched Monte-Carlo kernels vs the scalar per-draw oracle.

The contract under test is *exact* statistical equivalence: the kernel
path must reproduce the scalar path's histograms and trip
probabilities float for float (same Generator streams under the
``MC_SEED_SCHEME`` spawn scheme, same elementwise pass/fail
arithmetic) — not merely agree within a tolerance.
"""

import numpy as np
import pytest

from repro.analysis.repeatability import (
    extract_ladder_via_s_curves,
    measure_s_curve,
    word_histogram,
)
from repro.core.sensor import SenseRail
from repro.errors import ConfigurationError
from repro.kernels.montecarlo import (
    effective_supply_grid,
    s_curve_trip_probability,
    spawn_bit_seeds,
    trip_grid,
    word_grid_mc,
    word_histogram_grid,
)


# -- draw-stream equivalence ---------------------------------------------------


def test_batched_normal_matches_sequential_scalar_draws():
    # The parity bedrock: one size-n call fills from the same stream
    # as n scalar draws.
    a = np.random.default_rng(7).normal(0.0, 5e-3, size=64)
    rng = np.random.default_rng(7)
    b = np.array([rng.normal(0.0, 5e-3) for _ in range(64)])
    assert np.array_equal(a, b)


# -- trip/word grids vs the scalar measure ------------------------------------


def test_trip_grid_matches_scalar_measure(design):
    from repro.core.array import SensorArray

    array = SensorArray(design)
    rng = np.random.default_rng(3)
    lo = design.bit_threshold(1, 3) - 0.05
    hi = design.bit_threshold(design.n_bits, 3) + 0.05
    draws = rng.uniform(lo, hi, size=40)
    trips = trip_grid(design, draws, code=3)
    for i, v in enumerate(draws):
        for bit in range(1, design.n_bits + 1):
            passed = array.bits[bit - 1].measure(3, vdd_n=float(v)).passed
            assert bool(trips[i, bit - 1]) == passed


def test_word_grid_matches_array_measure(design):
    from repro.core.array import SensorArray

    array = SensorArray(design)
    rng = np.random.default_rng(5)
    draws = rng.uniform(0.9, 1.3, size=25)
    words = word_grid_mc(design, draws, code=3)
    for i, v in enumerate(draws):
        expected = array.measure(3, vdd_n=float(v)).word.bits
        assert tuple(int(b) for b in words[i]) == expected


def test_word_histogram_grid_strings_are_msb_first():
    words = np.array([[1, 1, 0], [1, 1, 0], [1, 0, 0]], dtype=np.uint8)
    assert word_histogram_grid(words) == {"011": 2, "001": 1}


def test_effective_supply_grid_rails(design):
    draws = np.array([0.1, 0.2])
    assert np.array_equal(effective_supply_grid(design, draws), draws)
    assert np.array_equal(
        effective_supply_grid(design, draws, rail="gnd"),
        design.tech.vdd_nominal - draws,
    )
    with pytest.raises(ConfigurationError):
        effective_supply_grid(design, draws, rail="vss")


# -- histogram parity ----------------------------------------------------------


@pytest.mark.parametrize("rail", [SenseRail.VDD, SenseRail.GND])
def test_word_histogram_kernel_equals_scalar(design, rail):
    level = design.bit_threshold(4, 3)
    kw = dict(level=level, noise_rms=8e-3, n_measures=150, seed=21,
              rail=rail)
    assert word_histogram(design, method="kernel", **kw) \
        == word_histogram(design, method="scalar", **kw)


def test_word_histogram_rejects_unknown_method(design):
    with pytest.raises(ConfigurationError):
        word_histogram(design, level=1.0, noise_rms=1e-3,
                       method="simd")


# -- s-curve parity ------------------------------------------------------------


def test_measure_s_curve_kernel_equals_scalar(design):
    for bit in (1, design.n_bits // 2, design.n_bits):
        kernel = measure_s_curve(design, bit, noise_rms=5e-3,
                                 n_per_level=80, seed=11,
                                 method="kernel")
        scalar = measure_s_curve(design, bit, noise_rms=5e-3,
                                 n_per_level=80, seed=11,
                                 method="scalar")
        assert kernel == scalar


def test_s_curve_probabilities_monotone_edges(design):
    seeds = spawn_bit_seeds(13, design.n_bits)
    _, probs = s_curve_trip_probability(
        design, code=3, noise_rms=5e-3, n_per_level=60, seeds=seeds,
    )
    # 4-sigma span: the curve must saturate at both ends.
    assert np.all(probs[:, 0] < 0.1)
    assert np.all(probs[:, -1] > 0.9)


def test_s_curve_kernel_validations(design):
    seeds = spawn_bit_seeds(1, design.n_bits)
    with pytest.raises(ConfigurationError):
        s_curve_trip_probability(design, code=3, noise_rms=0.0,
                                 n_per_level=60, seeds=seeds)
    with pytest.raises(ConfigurationError):
        s_curve_trip_probability(design, code=3, noise_rms=5e-3,
                                 n_per_level=60, seeds=seeds[:-1])


# -- seed-threading scheme -----------------------------------------------------


def test_spawn_bit_seeds_pure_function_of_seed_and_bit():
    a = spawn_bit_seeds(13, 7)
    b = spawn_bit_seeds(13, 7)
    for sa, sb in zip(a, b):
        assert np.array_equal(
            np.random.default_rng(sa).normal(size=4),
            np.random.default_rng(sb).normal(size=4),
        )


def test_spawn_bit_seeds_no_adjacent_root_aliasing():
    # The regression the scheme fixes: under `seed + bit`, bit 2 of
    # root 13 shared a stream with bit 1 of root 14.  Spawned children
    # of different roots must be independent.
    bit2_of_13 = np.random.default_rng(
        spawn_bit_seeds(13, 7)[1]).normal(size=8)
    bit1_of_14 = np.random.default_rng(
        spawn_bit_seeds(14, 7)[0]).normal(size=8)
    assert not np.array_equal(bit2_of_13, bit1_of_14)


# -- ladder extraction: serial == pool == kernel ------------------------------


def test_extract_ladder_serial_pool_kernel_identical(design):
    kw = dict(noise_rms=5e-3, n_per_level=40)
    kernel = extract_ladder_via_s_curves(design, method="kernel", **kw)
    scalar = extract_ladder_via_s_curves(design, method="scalar", **kw)
    pooled = extract_ladder_via_s_curves(design, method="kernel",
                                         workers=2, **kw)
    assert kernel == scalar == pooled


def test_extract_ladder_fits_track_thresholds(design):
    fits = extract_ladder_via_s_curves(design, noise_rms=5e-3,
                                       n_per_level=60)
    for fit in fits:
        true = design.bit_threshold(fit.bit, 3)
        assert fit.threshold == pytest.approx(true, abs=2.5e-3)
        assert fit.noise_sigma == pytest.approx(5e-3, rel=0.5)
