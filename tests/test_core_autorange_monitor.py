"""Auto-ranging meter and equivalent-time noise-monitor tests."""

import pytest

from repro.core.autorange import AutoRangingMeter
from repro.core.monitor import NoiseMonitor
from repro.core.sensor import SenseRail
from repro.errors import ConfigurationError
from repro.sim.waveform import (
    ConstantWaveform,
    DampedSineWaveform,
    SumWaveform,
)
from repro.units import NS


@pytest.fixture()
def meter(design):
    return AutoRangingMeter(design)


def test_interior_reading_stays_at_initial_code(meter):
    r = meter.measure_level(vdd_n=0.95)
    assert r.code == 3
    assert r.attempts == 1
    assert not r.saturated
    assert r.decoded.contains(0.95)


def test_high_level_steps_code_down(meter):
    r = meter.measure_level(vdd_n=1.15)
    assert r.code < 3
    assert not r.saturated
    assert r.decoded.contains(1.15)


def test_low_level_steps_code_up(meter):
    r = meter.measure_level(vdd_n=0.70)
    assert r.code > 3
    assert not r.saturated
    assert r.decoded.contains(0.70)


def test_far_out_of_dynamic_saturates(meter):
    r = meter.measure_level(vdd_n=0.40)
    assert r.saturated
    assert r.code == 7  # walked to the extreme code


def test_every_interior_level_decodes_within_dynamic(meter):
    lo, hi = meter.total_dynamic()
    for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
        v = lo + frac * (hi - lo)
        r = meter.measure_level(vdd_n=v)
        assert not r.saturated, f"saturated at {v:.3f}"
        assert r.decoded.contains(v)


def test_attempt_budget_respected(design):
    meter = AutoRangingMeter(design, max_attempts=2)
    r = meter.measure_level(vdd_n=0.40)
    assert r.attempts == 2


def test_gnd_rail_autorange(design):
    meter = AutoRangingMeter(design, SenseRail.GND)
    r = meter.measure_level(gnd_n=0.05)
    assert not r.saturated
    assert r.decoded.contains(0.05)


def test_custom_backend(meter, design):
    """measure_with accepts any code->word backend."""
    from repro.core.array import SensorArray

    arr = SensorArray(design)
    calls = []

    def backend(code):
        calls.append(code)
        return arr.measure(code, vdd_n=1.15).word

    r = meter.measure_with(backend)
    assert calls[0] == 3
    assert r.code == calls[-1] < 3


def test_meter_validation(design):
    with pytest.raises(ConfigurationError):
        AutoRangingMeter(design, initial_code=8)
    with pytest.raises(ConfigurationError):
        AutoRangingMeter(design, max_attempts=0)


def test_total_dynamic_spans_all_codes(meter, design):
    lo, hi = meter.total_dynamic()
    assert lo == pytest.approx(design.bit_threshold(1, 7))
    assert hi == pytest.approx(design.bit_threshold(7, 0))
    assert hi - lo > 0.5  # a much wider span than any single code


# -- monitor ---------------------------------------------------------------

def droop_waveform():
    # Deep enough that the recovery ring exceeds code 011's 1.053 V
    # ceiling (forcing auto-range) while the trough stays above its
    # 0.827 V floor.
    return SumWaveform([
        ConstantWaveform(1.0),
        DampedSineWaveform(base=0.0, amplitude=-0.15, freq=60e6,
                           decay=25 * NS, t0=20 * NS),
    ])


@pytest.fixture(scope="module")
def capture(design):
    monitor = NoiseMonitor(design)
    return monitor.capture(droop_waveform(), t_start=5 * NS,
                           t_stop=80 * NS, n_points=24)


def test_monitor_covers_requested_interval(capture):
    times = [p.time for p in capture.points]
    assert times[0] == pytest.approx(5 * NS)
    assert times[-1] == pytest.approx(80 * NS)
    assert len(times) == 24


def test_monitor_tracks_waveform(capture):
    rmse = capture.rmse_against(droop_waveform())
    assert rmse < 0.035  # within ~1 LSB


def test_monitor_sees_the_droop(capture):
    lo, hi = capture.extremes()
    assert lo < 0.93
    assert hi >= 1.0 - 0.035


def test_monitor_auto_ranges_overshoot(capture):
    """The ringing rises above code 011's 1.053 V ceiling; auto-range
    must re-measure those points at code 010."""
    assert capture.reranged >= 1
    assert any(p.code == 2 for p in capture.points)


def test_monitor_points_bracket_truth(capture):
    wf = droop_waveform()
    hits = sum(1 for p in capture.points
               if p.decoded.contains(wf(p.time)))
    assert hits == len(capture.points)


def test_monitor_validation(design):
    monitor = NoiseMonitor(design)
    with pytest.raises(ConfigurationError):
        monitor.capture(ConstantWaveform(1.0), t_start=0.0,
                        t_stop=0.0)
    with pytest.raises(ConfigurationError):
        monitor.capture(ConstantWaveform(1.0), t_start=0.0,
                        t_stop=10 * NS, n_points=1)
    with pytest.raises(ConfigurationError):
        NoiseMonitor(design, code=8)


def test_monitor_gnd_rail(design):
    monitor = NoiseMonitor(design, SenseRail.GND)
    bounce = SumWaveform([
        ConstantWaveform(0.0),
        DampedSineWaveform(base=0.0, amplitude=0.04, freq=60e6,
                           decay=25 * NS, t0=20 * NS),
    ])
    cap = monitor.capture(bounce, t_start=20 * NS, t_stop=40 * NS,
                          n_points=6)
    assert any(p.decoded.hi > 0.02 for p in cap.points)
