"""Technology parameter-bag tests."""

import pytest

from repro.devices.technology import TECH_90NM, Technology
from repro.errors import ConfigurationError


def make(**overrides):
    base = dict(
        name="t", vdd_nominal=1.0, vth=0.2, alpha=1.3,
        drive_constant=3900.0, gate_cap_unit=1.8e-15,
        intrinsic_cap_unit=1.1e-15,
    )
    base.update(overrides)
    return Technology(**base)


def test_default_tech_is_1v_90nm_class():
    assert TECH_90NM.vdd_nominal == 1.0
    assert 0.05 < TECH_90NM.vth < 0.5
    assert 1.0 <= TECH_90NM.alpha <= 2.0


def test_rejects_nonpositive_vdd():
    with pytest.raises(ConfigurationError):
        make(vdd_nominal=0.0)


def test_rejects_vth_above_vdd():
    with pytest.raises(ConfigurationError):
        make(vth=1.5)


def test_rejects_zero_vth():
    with pytest.raises(ConfigurationError):
        make(vth=0.0)


def test_rejects_alpha_below_one():
    with pytest.raises(ConfigurationError):
        make(alpha=0.9)


def test_rejects_alpha_above_two():
    with pytest.raises(ConfigurationError):
        make(alpha=2.1)


def test_rejects_nonpositive_drive():
    with pytest.raises(ConfigurationError):
        make(drive_constant=-1.0)


def test_rejects_negative_caps():
    with pytest.raises(ConfigurationError):
        make(gate_cap_unit=-1e-15)


def test_scaled_shifts_vth():
    t = make()
    t2 = t.scaled(vth_shift=0.04)
    assert t2.vth == pytest.approx(0.24)
    assert t2.drive_constant == t.drive_constant


def test_scaled_scales_drive():
    t = make()
    t2 = t.scaled(drive_scale=1.12)
    assert t2.drive_constant == pytest.approx(3900 * 1.12)
    assert t2.vth == t.vth


def test_scaled_renames():
    t = make().scaled(name="corner")
    assert t.name == "corner"


def test_scaled_rejects_unphysical_shift():
    with pytest.raises(ConfigurationError):
        make().scaled(vth_shift=1.0)


def test_scaled_rejects_nonpositive_scale():
    with pytest.raises(ConfigurationError):
        make().scaled(drive_scale=0.0)


def test_frozen():
    t = make()
    with pytest.raises(AttributeError):
        t.vth = 0.3
