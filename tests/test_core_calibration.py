"""Calibration tests: every published anchor must be reproduced."""

import pytest

from repro.core import paperdata
from repro.core.calibration import SensorDesign, fit_paper_design, paper_design
from repro.devices.corners import corner_by_name
from repro.errors import CalibrationError, ConfigurationError
from repro.units import PF, PS


def test_vth_in_physical_range(design):
    assert 0.05 < design.tech.vth < 0.4


def test_delay_code_table_is_papers(design):
    for i, ps in enumerate((26, 40, 50, 65, 77, 92, 100, 107)):
        assert design.delay_codes[i] == pytest.approx(ps * PS)


@pytest.mark.parametrize("bit,expected",
                         sorted(paperdata.FIG5_CODE011_BOUNDARIES.items()))
def test_code011_boundaries_reproduced(design, bit, expected):
    assert design.bit_threshold(bit, 3) == pytest.approx(expected,
                                                         abs=5e-4)


def test_code010_endpoints_reproduced(design):
    assert design.bit_threshold(1, 2) == pytest.approx(0.951, abs=5e-4)
    assert design.bit_threshold(7, 2) == pytest.approx(1.237, abs=5e-4)


def test_fig4_anchor_reproduced(design):
    inv = design.sensor_inverter()
    ff = design.sense_flipflop()
    v = inv.model.supply_for_delay(
        design.effective_window(3),
        paperdata.FIG4_ANCHOR_CAP + ff.pin("D").cap,
        v_hi=3.0,
    )
    assert v == pytest.approx(paperdata.FIG4_ANCHOR_THRESHOLD, abs=5e-4)


def test_load_caps_ascending_pf_scale(design):
    caps = design.load_caps
    assert all(b > a for a, b in zip(caps, caps[1:]))
    assert 1.5 * PF < caps[0] < caps[-1] < 2.5 * PF


def test_load_caps_near_linear(design):
    linear = design.linearized_load_caps()
    worst = max(abs(a - b) for a, b in zip(design.load_caps, linear))
    # Within a few percent of a perfect arithmetic progression.
    assert worst / design.load_caps[0] < 0.03


def test_thresholds_monotone_all_codes(design):
    for code in range(8):
        ts = [design.bit_threshold(b, code)
              for b in range(1, design.n_bits + 1)]
        assert all(b > a for a, b in zip(ts, ts[1:])), f"code {code}"


def test_windows_monotone_in_code(design):
    ws = [design.effective_window(c) for c in range(8)]
    assert all(b > a for a, b in zip(ws, ws[1:]))


def test_higher_code_lower_thresholds(design):
    """Bigger window -> more time -> lower failure threshold."""
    for bit in (1, 4, 7):
        t_lo = design.bit_threshold(bit, 2)
        t_hi = design.bit_threshold(bit, 3)
        assert t_hi < t_lo


def test_effective_window_code_range(design):
    with pytest.raises(ConfigurationError):
        design.effective_window(8)
    with pytest.raises(ConfigurationError):
        design.effective_window(-1)


def test_ds_external_load_includes_ff_pin(design):
    ff = design.sense_flipflop()
    assert design.ds_external_load(1) == pytest.approx(
        design.load_caps[0] + ff.pin("D").cap
    )
    with pytest.raises(ConfigurationError):
        design.ds_external_load(0)


def test_timing_scale_identity_on_design_tech(design):
    assert design.timing_scale(design.tech) == 1.0
    assert design.timing_scale(None) == 1.0


def test_timing_scale_slow_corner_above_one(design):
    ss = corner_by_name("SS").apply(design.tech)
    assert design.timing_scale(ss) > 1.0
    ff = corner_by_name("FF").apply(design.tech)
    assert design.timing_scale(ff) < 1.0


def test_window_tech_override(design):
    """Corner INV with a design-tech window shifts thresholds up for
    a slow corner (slower INV, same deadline)."""
    ss = corner_by_name("SS").apply(design.tech)
    t_tracking = design.bit_threshold(1, 3, ss)
    t_external = design.bit_threshold(1, 3, ss, window_tech=design.tech)
    t_nominal = design.bit_threshold(1, 3)
    assert t_external > t_nominal
    assert abs(t_tracking - t_nominal) < abs(t_external - t_nominal)


def test_paper_design_cached():
    assert paper_design() is paper_design()


def test_fit_alternative_alpha_still_hits_anchors():
    d = fit_paper_design(alpha=1.4)
    assert d.bit_threshold(1, 3) == pytest.approx(0.827, abs=5e-4)
    assert d.bit_threshold(7, 2) == pytest.approx(1.237, abs=5e-4)


def test_fit_unsolvable_alpha_raises():
    # Near the long-channel limit the cross-code consistency equation
    # loses its root in the physical vth bracket.
    with pytest.raises(CalibrationError):
        fit_paper_design(alpha=1.01)


def test_design_validation_rejects_bad_caps(design):
    with pytest.raises(ConfigurationError):
        SensorDesign(
            tech=design.tech,
            sensor_strength=design.sensor_strength,
            ff_strength=design.ff_strength,
            t0=design.t0,
            delay_codes=design.delay_codes,
            load_caps=(2e-12, 1e-12),  # descending
            bit_thresholds_code011=(0.9, 1.0),
        )


def test_with_load_caps_replaces(design):
    d2 = design.with_load_caps((1e-12, 2e-12))
    assert d2.n_bits == 2
    assert design.n_bits == 7


def test_cp_route_element_realizes_t0(design):
    ff = design.sense_flipflop()
    elem = design.cp_route_element(trim_load=ff.pin("CP").cap)
    realized = elem.propagation_delay("A", "Y", design.tech.vdd_nominal,
                                      ff.pin("CP").cap)
    assert realized == pytest.approx(design.t0 + ff.setup_time)
