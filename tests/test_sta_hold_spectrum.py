"""Hold-analysis and PDN-spectrum tests."""

import pytest

from repro.cells.combinational import Inverter
from repro.cells.sequential import DFlipFlop
from repro.core.control import build_control_netlist
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.psn.pdn import PDNModel, PDNParameters
from repro.psn.spectrum import (
    decap_for_target_impedance,
    impedance_profile,
    resonant_droop_bound,
    step_droop_estimate,
)
from repro.sim.netlist import Netlist
from repro.sta.hold import analyze_hold
from repro.units import NS


def shift_register(n_stages):
    """FF -> FF -> ... with direct Q->D wiring: the classic hold risk."""
    nl = Netlist("shift")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("clk")
    nl.add_net("d_in")
    nl.mark_external_input("clk")
    nl.mark_external_input("d_in")
    prev = "d_in"
    for i in range(n_stages):
        nl.add_net(f"q{i}")
        nl.add_instance(f"ff{i}", DFlipFlop(TECH_90NM),
                        {"D": prev, "CP": "clk", "Q": f"q{i}"},
                        vdd="VDD", gnd="GND")
        prev = f"q{i}"
    return nl


def test_direct_ff_to_ff_hold():
    """Back-to-back FFs: min arrival = clk_to_q; hold slack =
    clk_to_q - t_hold (positive for this library)."""
    nl = shift_register(2)
    rep = analyze_hold(nl)
    ff = DFlipFlop(TECH_90NM)
    assert rep.hold_slacks["q0"] == pytest.approx(
        ff.clk_to_q - ff.hold_time
    )
    assert rep.clean


def test_buffered_path_increases_hold_slack():
    nl = shift_register(2)
    # Insert two inverters between the FFs in a second netlist.
    nl2 = Netlist("buffered")
    nl2.add_supply("VDD", 1.0)
    nl2.add_supply("GND", 0.0, is_ground=True)
    for net in ("clk", "d_in", "q0", "n0", "n1", "q1"):
        nl2.add_net(net)
    nl2.mark_external_input("clk")
    nl2.mark_external_input("d_in")
    nl2.add_instance("ff0", DFlipFlop(TECH_90NM),
                     {"D": "d_in", "CP": "clk", "Q": "q0"},
                     vdd="VDD", gnd="GND")
    nl2.add_instance("i0", Inverter(TECH_90NM),
                     {"A": "q0", "Y": "n0"}, vdd="VDD", gnd="GND")
    nl2.add_instance("i1", Inverter(TECH_90NM),
                     {"A": "n0", "Y": "n1"}, vdd="VDD", gnd="GND")
    nl2.add_instance("ff1", DFlipFlop(TECH_90NM),
                     {"D": "n1", "CP": "clk", "Q": "q1"},
                     vdd="VDD", gnd="GND")
    direct = analyze_hold(nl).whs
    buffered = analyze_hold(nl2).whs
    assert buffered > direct


def test_hold_shortest_path_reported():
    nl = shift_register(3)
    rep = analyze_hold(nl)
    # Direct FF-to-FF: no combinational segments on the worst path.
    assert rep.shortest_path == ()


def test_control_netlist_hold_clean(design):
    nl, _ = build_control_netlist(design)
    rep = analyze_hold(nl)
    assert rep.clean
    assert rep.whs > 0


def test_hold_requires_endpoints():
    nl = Netlist("empty")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a")
    nl.add_net("y")
    nl.mark_external_input("a")
    nl.add_instance("i", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(ConfigurationError):
        analyze_hold(nl)


# -- spectrum ------------------------------------------------------------------

@pytest.fixture()
def params():
    return PDNParameters()


def test_profile_peak_at_lc_resonance(params):
    prof = impedance_profile(params)
    f_pk, z_pk = prof.peak
    assert f_pk == pytest.approx(params.resonant_frequency, rel=0.1)
    assert z_pk > abs(params.impedance_at(1e6))


def test_profile_interpolation(params):
    prof = impedance_profile(params)
    f = params.resonant_frequency
    assert prof.at(f) == pytest.approx(abs(params.impedance_at(f)),
                                       rel=0.05)
    with pytest.raises(ConfigurationError):
        prof.at(0.0)


def test_profile_validation(params):
    with pytest.raises(ConfigurationError):
        impedance_profile(params, f_min=0.0)
    with pytest.raises(ConfigurationError):
        impedance_profile(params, n_points=2)


def test_step_estimate_matches_time_domain(params):
    """The analytic first-droop estimate lands within 20 % of the
    trapezoidal PDN integration."""
    model = PDNModel(params)
    i_step = 5.0
    v = model.simulate(lambda t: i_step if t > 20 * NS else 0.0,
                       t_end=200 * NS, dt=0.1 * NS)
    droop_td = params.vdd_nominal - v.min_over(20 * NS, 200 * NS)
    est = step_droop_estimate(params, i_step)
    assert est == pytest.approx(droop_td, rel=0.2)


def test_resonant_bound_exceeds_step_estimate(params):
    assert resonant_droop_bound(params, 5.0) > \
        step_droop_estimate(params, 5.0)


def test_droop_estimates_validate(params):
    with pytest.raises(ConfigurationError):
        step_droop_estimate(params, -1.0)
    with pytest.raises(ConfigurationError):
        resonant_droop_bound(params, -1.0)


def test_decap_sizing_meets_target(params):
    prof = impedance_profile(params)
    target = prof.peak[1] / 4
    sized = decap_for_target_impedance(params, target)
    assert sized.c_decap > params.c_decap
    assert impedance_profile(sized).peak[1] <= target * 1.01


def test_decap_sizing_noop_when_already_met(params):
    generous = impedance_profile(params).peak[1] * 2
    assert decap_for_target_impedance(params, generous) is params


def test_decap_sizing_unreachable_raises(params):
    with pytest.raises(ConfigurationError):
        decap_for_target_impedance(params, 1e-9, c_max=100e-9)
