"""End-to-end JobServer tests: real sockets, mixed load, chaos.

The contract under test is the service layer's headline promise:
whatever faults fire mid-load — killed pool workers, stalling
backends, poison requests, full queues, tripped breakers — every
request gets **exactly one** terminal response, accepted work comes
back as full/cached/degraded, shed work comes back REJECTED naming
the ServiceError that shed it, and the server shuts down cleanly.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.backends import FaultInjectingBackend, SimBackend
from repro.runtime.cache import ResultCache
from repro.runtime.resilient import RetryPolicy
from repro.service import FleetConfig, JobServer, build_load, run_load
from repro.service.chaos import LoadReport


def drive(server: JobServer, requests, *, n_clients=2, depth=2,
          unix_path=None, timeout_s=90.0) -> LoadReport:
    """Start the server, push the load, stop — one event loop."""

    async def _run():
        address = await server.start(unix_path=unix_path)
        try:
            return await run_load(address, requests,
                                  n_clients=n_clients, depth=depth,
                                  timeout_s=timeout_s)
        finally:
            await server.stop()

    return asyncio.run(_run())


SMALL = FleetConfig(n_dies=8, n_shards=2)


def test_mixed_load_is_served_full_quality(tmp_path):
    server = JobServer(backend="sim", config=SMALL,
                       default_deadline_s=60.0)
    requests = build_load(11, 12, config=SMALL)
    report = drive(server, requests,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    assert report.by_status == {"ok": 12}
    assert set(report.by_quality) == {"full"}
    counters = server.stats()["counters"]
    assert counters["requests"] == 12
    assert counters["responses"] == 12
    assert counters["dropped_connections"] == 0


def test_yield_and_ping_kinds(tmp_path):
    # 'yield' needs lot_thresholds, which sim does not offer.
    server = JobServer(backend="kernel", config=SMALL)
    requests = [
        {"id": "p", "kind": "ping", "params": {}},
        {"id": "y", "kind": "yield",
         "params": {"n_dies": 3, "code": 3}},
    ]
    report = drive(server, requests, n_clients=1, depth=1,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    assert report.responses["p"]["result"] == {"pong": True}
    y = report.responses["y"]
    assert y["status"] == "ok"
    assert len(y["result"]["threshold_sigma_mv"]) == 7
    assert y["result"]["worst_sigma_mv"] > 0


def test_protocol_garbage_gets_error_and_connection_survives(tmp_path):
    server = JobServer(backend="sim", config=SMALL)

    async def _run():
        address = await server.start(
            unix_path=str(tmp_path / "svc.sock"))
        reader, writer = await asyncio.open_unix_connection(
            str(tmp_path / "svc.sock"))
        try:
            writer.write(b"this is not json\n")
            writer.write(b'{"id": "ok1", "kind": "ping"}\n')
            await writer.drain()
            import json
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            return first, second
        finally:
            writer.close()
            await server.stop()

    first, second = asyncio.run(_run())
    assert first["status"] == "error"
    assert first["error"]["type"] == "ProtocolError"
    assert second["id"] == "ok1" and second["status"] == "ok"
    assert server.counters["protocol_errors"] == 1


def test_drop_oldest_sheds_explicitly(tmp_path):
    server = JobServer(backend="sim", config=SMALL,
                       queue_depth=2, queue_policy="drop_oldest",
                       coalesce=1)
    # One connection bursting far past the queue depth guarantees
    # evictions; every eviction still owes a REJECTED response.
    requests = build_load(5, 24, config=SMALL,
                          mix=("window",),  # slow enough to pile up
                          )
    report = drive(server, requests, n_clients=1, depth=24,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    shed = [r for r in report.responses.values()
            if r["status"] == "rejected"]
    assert shed, "burst past a depth-2 queue must shed something"
    assert all(r["error"]["type"] == "AdmissionRejectedError"
               for r in shed)
    queues = [s["queue"] for s in server.stats()["shards"]]
    assert sum(q["dropped"] for q in queues) == len(shed)


def test_tenant_token_bucket_isolation(tmp_path):
    server = JobServer(backend="sim", config=SMALL,
                       tenant_rate=0.001, tenant_burst=2)
    requests = [
        {"id": f"a{i}", "kind": "ping", "tenant": "alice",
         "params": {}} for i in range(4)
    ] + [
        {"id": f"b{i}", "kind": "ping", "tenant": "bob",
         "params": {}} for i in range(2)
    ]
    # ping bypasses admission, so use measure for the quota surface.
    for req in requests:
        req["kind"] = "measure"
        req["params"] = {"level": 1.05, "code": 3}
    report = drive(server, requests, n_clients=1, depth=1,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    alice = [report.responses[f"a{i}"] for i in range(4)]
    bob = [report.responses[f"b{i}"] for i in range(2)]
    assert [r["status"] for r in alice] == \
        ["ok", "ok", "rejected", "rejected"]
    assert all(r["error"]["type"] == "TenantQuotaError"
               for r in alice[2:])
    # Alice exhausting her bucket never touches Bob's.
    assert [r["status"] for r in bob] == ["ok", "ok"]
    tenants = server.stats()["tenants"]
    assert tenants["alice"]["refused"] == 2
    assert tenants["bob"]["refused"] == 0


def test_breaker_opens_and_load_degrades(tmp_path):
    """A backend that always faults: retries exhaust, the breaker
    trips, and every measure request still gets an 'ok' answer —
    quality 'degraded', never a crash or a silent drop."""
    server = JobServer(
        backend=lambda: FaultInjectingBackend(SimBackend(),
                                              error_rate=1.0),
        config=SMALL,
        retry_policy=RetryPolicy(retries=1, backoff_base=0.001),
        breaker_threshold=2, breaker_cooldown_s=30.0,
    )
    requests = build_load(13, 10, config=SMALL, mix=("measure",))
    report = drive(server, requests,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    assert report.by_status == {"ok": 10}
    assert set(report.by_quality) == {"degraded"}
    breakers = [s["breaker"] for s in server.stats()["shards"]]
    assert any(b["opens"] >= 1 for b in breakers)
    degraded = report.responses["r0"]["result"]
    assert degraded["resolution"] < degraded["full_resolution"]


def test_degraded_decode_still_brackets_the_level(tmp_path):
    server = JobServer(
        backend=lambda: FaultInjectingBackend(SimBackend(),
                                              error_rate=1.0),
        config=SMALL,
        retry_policy=RetryPolicy(retries=0, backoff_base=0.001),
        breaker_threshold=1,
    )
    level = 1.05
    requests = [{"id": "m", "kind": "measure",
                 "params": {"level": level, "code": 3}}]
    report = drive(server, requests, n_clients=1, depth=1,
                   unix_path=str(tmp_path / "svc.sock"))
    m = report.responses["m"]
    assert m["quality"] == "degraded"
    measure = m["result"]["measures"][0]
    lo = measure["lo"] if measure["lo"] is not None else -1e9
    hi = measure["hi"] if measure["hi"] is not None else 1e9
    assert lo < level <= hi


def test_cache_hits_and_tenant_isolation(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    server = JobServer(backend="sim", config=SMALL, cache=cache,
                       coalesce=1)
    req = {"kind": "measure", "params": {"level": 1.05, "code": 3}}
    requests = [
        dict(req, id="first", tenant="alice"),
        dict(req, id="repeat", tenant="alice"),
        dict(req, id="other-tenant", tenant="bob"),
    ]
    report = drive(server, requests, n_clients=1, depth=1,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    assert report.responses["first"]["quality"] == "full"
    assert report.responses["repeat"]["quality"] == "cached"
    # Same request, different tenant: an isolated cache key.
    assert report.responses["other-tenant"]["quality"] == "full"
    assert report.responses["repeat"]["result"] == \
        report.responses["first"]["result"]
    assert cache.hits == 1


def test_measure_coalescing_batches_compatible_requests(tmp_path):
    server = JobServer(backend="sim",
                       config=FleetConfig(n_dies=8, n_shards=1),
                       coalesce=8)
    requests = [{"id": f"m{i}", "kind": "measure",
                 "params": {"level": 1.00 + 0.01 * i, "code": 3}}
                for i in range(8)]
    report = drive(server, requests, n_clients=1, depth=8,
                   unix_path=str(tmp_path / "svc.sock"))
    assert report.problems() == []
    assert report.by_status == {"ok": 8}
    shard = server.stats()["shards"][0]
    # Burst of 8 served in fewer backend calls than requests.
    assert shard["executed"] < 8
    # Each response still carries its own level's decode.
    for i in range(8):
        result = report.responses[f"m{i}"]["result"]
        assert result["levels"] == [pytest.approx(1.00 + 0.01 * i)]


def test_chaos_drill_pool_survives_kills_slow_and_poison(tmp_path):
    """The headline drill: pool executor, seeded worker kills armed
    once, stalls, and poison requests — under concurrent clients."""
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    server = JobServer(
        backend="kernel", executor="pool", pool_workers=1,
        config=SMALL,
        retry_policy=RetryPolicy(retries=2, backoff_base=0.01),
        default_deadline_s=60.0,
    )
    requests = build_load(
        2009, 24, config=SMALL,
        mix=("measure", "characterize", "measure", "window"),
        kill_rate=0.15, marker_dir=str(marker_dir),
        slow_rate=0.1, slow_s=0.05,
        poison_rate=0.1,
    )
    n_poison = sum(1 for r in requests
                   if r["params"].get("chaos", {}).get("poison"))
    n_kills = sum(1 for r in requests
                  if "kill_marker" in r["params"].get("chaos", {}))
    assert n_kills >= 1 and n_poison >= 1, "seed must inject both"
    report = drive(server, requests, n_clients=3, depth=3,
                   unix_path=str(tmp_path / "svc.sock"))
    # The invariants: exactly one terminal response each, no dupes,
    # no dropped connections, clean shutdown (drive() stopped it).
    assert report.problems() == []
    counters = server.stats()["counters"]
    assert counters["responses"] == len(requests)
    assert counters["dropped_connections"] == 0
    # Poison surfaces as per-request errors, not as dead air.
    errors = [r for r in report.responses.values()
              if r["status"] == "error"]
    assert len(errors) == n_poison
    # Killed workers were rebuilt and their jobs retried to success.
    assert counters["crashes"] >= n_kills
    rebuilds = sum(s["pool_rebuilds"]
                   for s in server.stats()["shards"])
    assert rebuilds == counters["crashes"]
    assert report.availability >= (len(requests) - n_poison) \
        / len(requests) - 1e-9


def test_stop_rejects_still_queued_jobs(tmp_path):
    server = JobServer(backend="sim", config=SMALL)

    async def _run():
        await server.start(unix_path=str(tmp_path / "svc.sock"))
        # Enqueue directly, then stop before the shard loop runs.
        from repro.service.protocol import Request
        from repro.service.server import _Connection

        class _NullWriter:
            def write(self, data):
                pass

            async def drain(self):
                pass

            def close(self):
                pass

            async def wait_closed(self):
                pass

        conn = _Connection(_NullWriter())
        job = server._job_for(
            Request(id="q1", kind="measure",
                    params={"level": 1.05, "code": 3}), conn)
        for shard in server.shards:
            shard.task.cancel()
        await asyncio.sleep(0)
        await server.shards[job.shard].queue.put(job)
        await server.stop()
        return job

    job = asyncio.run(_run())
    assert job.responded
    assert server.counters["rejected"] == 1


def test_serve_stats_out_includes_cache_lifetime(tmp_path):
    """``repro serve --stats-out`` must report the ResultCache's
    cross-process lifetime counters — the server flushes its deltas
    to the cache root's stats log on stop, so the dump (and any later
    ``repro cache`` call) sees the run's true totals."""
    import json
    import pathlib
    import subprocess
    import sys
    import time

    from repro.service.chaos import run_load

    repo = pathlib.Path(__file__).parent.parent
    sock = tmp_path / "svc.sock"
    stats_path = tmp_path / "stats.json"
    cache_root = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--unix", str(sock), "--backend", "sim",
         "--dies", "8", "--shards", "2",
         "--cache-dir", str(cache_root),
         "--max-requests", "3",
         "--stats-out", str(stats_path)],
        env=env,
    )
    try:
        for _ in range(300):
            if sock.exists():
                break
            time.sleep(0.1)
        else:
            raise RuntimeError("server socket never appeared")
        req = {"kind": "measure", "params": {"level": 1.05, "code": 3}}
        requests = [dict(req, id=f"r{i}") for i in range(3)]
        report = asyncio.run(run_load(
            f"unix:{sock}", requests, n_clients=1, depth=1,
            timeout_s=120))
        server.wait(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()

    assert report.problems() == []
    assert server.returncode == 0
    stats = json.loads(stats_path.read_text())
    cache_stats = stats["cache"]
    assert cache_stats is not None, "serve dropped its cache stats"
    lifetime = cache_stats["lifetime"]
    # Identical requests: one miss computes, the repeats hit.
    assert lifetime["misses"] >= 1
    assert lifetime["hits"] >= 1
    assert lifetime["errors"] == 0

    # The stop() flush persisted the counters: a *fresh* process
    # reading the same root sees the same lifetime totals.
    probe = ResultCache(cache_root)
    assert probe.lifetime_stats() == lifetime
