"""Exact-ZOH transient kernel vs the trapezoidal oracle.

Covers the three contracts :mod:`repro.kernels.transient` documents:
chunked stepping is *bit-invariant* (Hypothesis-driven), the LTI
stepper converges to the trapezoidal oracle as ``dt -> 0`` within the
documented input-hold bound, and the batched entry points (corner
lots, grid ``solve_many``) equal their one-at-a-time counterparts.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.kernels.transient import (
    TransientStepper,
    discretize,
    simulate_corner_lot,
    step_rail,
)
from repro.psn.grid import IRDropGrid
from repro.psn.pdn import PDNModel, PDNParameters
from repro.psn.transient_grid import migrating_hotspot, solve_transient

PARAMS = PDNParameters()
DT = 0.04 / PARAMS.resonant_frequency


def _load(n, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 3.0, size=n)


# -- chunk invariance ----------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=40),
                min_size=1, max_size=8))
def test_chunked_stepping_is_bit_identical(chunks):
    n = sum(chunks)
    i_samples = _load(n)
    one_shot = step_rail(PARAMS, i_samples, dt=DT)
    stepper = TransientStepper(PARAMS, DT)
    lo = 0
    parts = []
    for c in chunks:
        parts.append(stepper.step(i_samples[lo:lo + c]))
        lo += c
    assert stepper.n_seen == n
    assert np.array_equal(np.concatenate(parts), one_shot)


def test_empty_chunk_is_a_noop():
    stepper = TransientStepper(PARAMS, DT)
    i_samples = _load(100)
    a = stepper.step(i_samples[:50])
    assert stepper.step(np.empty(0)).size == 0
    b = stepper.step(i_samples[50:])
    assert np.array_equal(np.concatenate([a, b]),
                          step_rail(PARAMS, i_samples, dt=DT))


# -- oracle convergence --------------------------------------------------------


def test_lti_converges_to_trapezoid_as_dt_shrinks():
    model = PDNModel(PARAMS)
    t_end = 200 * DT
    errs = []
    for div in (1, 2, 4, 8):
        dt = DT / div
        n = int(round(t_end / dt))
        i = np.where(np.arange(n + 1) * dt > 5 * DT, 2.0, 0.0)
        trap = model.simulate(i, t_end=t_end, dt=dt, method="trapezoid")
        lti = model.simulate(i, t_end=t_end, dt=dt, method="lti")
        errs.append(float(np.max(np.abs(trap.values - lti.values))))
    # First-order input-hold skew: error halves with dt ...
    for coarse, fine in zip(errs, errs[1:]):
        assert fine < 0.7 * coarse
    # ... and sits under the documented 0.5 * omega * dt bound.
    omega = 2.0 * math.pi * PARAMS.resonant_frequency
    assert errs[0] <= 0.5 * omega * DT * 0.2


def test_lti_preserves_dc_steady_state():
    # ZOH is exact for constant inputs: the rail must settle at
    # vdd - r_series * I (the r_esr drop cancels at DC).
    disc = discretize(PARAMS, DT)
    x = disc.steady_state(2.0)
    v_die = x[1] + PARAMS.r_esr * (x[0] - 2.0)
    expected = PARAMS.vdd_nominal - PARAMS.r_series * 2.0
    assert v_die == pytest.approx(expected, abs=1e-12)
    assert x[0] == pytest.approx(2.0, abs=1e-12)


def test_simulate_lti_matches_trapezoid_droop_depth():
    model = PDNModel(PARAMS)
    t_end = 400 * DT
    i = np.where(np.arange(401) * DT > 5 * DT, 2.0, 0.0)
    trap = model.simulate(i, t_end=t_end, dt=DT, method="trapezoid")
    lti = model.simulate(i, t_end=t_end, dt=DT, method="lti")
    assert lti.values.min() == pytest.approx(trap.values.min(),
                                             rel=0.15)


def test_simulate_rejects_unknown_method():
    with pytest.raises(ConfigurationError):
        PDNModel(PARAMS).simulate(lambda t: 0.0, t_end=100 * DT,
                                  dt=DT, method="euler")


# -- batched entry points ------------------------------------------------------


def test_corner_lot_equals_per_lane_stepping():
    lots = [
        PARAMS,
        PDNParameters(r_series=0.004, l_series=80e-12),
        PDNParameters(c_decap=60e-9, r_esr=0.001),
    ]
    i_samples = _load(300)
    batched = simulate_corner_lot(lots, i_samples, dt=DT)
    assert batched.shape == (3, 300)
    for lane, p in enumerate(lots):
        assert np.array_equal(batched[lane],
                              step_rail(p, i_samples, dt=DT))


def test_corner_lot_per_lane_currents():
    cur = np.stack([_load(100, seed=1), _load(100, seed=2)])
    out = simulate_corner_lot([PARAMS, PARAMS], cur, dt=DT)
    assert np.array_equal(out[0], step_rail(PARAMS, cur[0], dt=DT))
    assert np.array_equal(out[1], step_rail(PARAMS, cur[1], dt=DT))


def test_corner_lot_validations():
    with pytest.raises(ConfigurationError):
        simulate_corner_lot([], _load(10), dt=DT)
    with pytest.raises(ConfigurationError):
        simulate_corner_lot([PARAMS], np.zeros((2, 10)), dt=DT)


def test_grid_solve_many_equals_per_step_solve():
    grid = IRDropGrid(rows=5, cols=4)
    rng = np.random.default_rng(9)
    currents = rng.uniform(0.0, 0.2, size=(6, 5, 4))
    batched = grid.solve_many(currents)
    for k in range(6):
        assert np.array_equal(batched[k], grid.solve(currents[k]))


def test_solve_transient_batched_matches_migrating_hotspot():
    grid = IRDropGrid(rows=4, cols=4)
    fn = migrating_hotspot(grid, total_current=1.0,
                           path=[(0, 0), (3, 3)], dwell=5e-9)
    tr = solve_transient(grid, fn, t_end=20e-9, dt=1e-9)
    for k, t in enumerate(tr.times):
        assert np.array_equal(tr.voltages[k],
                              grid.solve(fn(float(t))))


# -- streaming telemetry source -----------------------------------------------


def test_pdn_source_streams_bit_identical_to_one_shot():
    from repro.telemetry.sources import pdn_source

    t_end, n = 1000 * DT, 1000

    def vec(t):
        return np.where(t > 50 * DT, 2.0, 0.0)

    blocks = list(pdn_source(PARAMS, vec, t_end=t_end, dt=DT,
                             block=128))
    assert len(blocks) == -(-(n + 1) // 128)
    streamed = np.concatenate([b.values for b in blocks])
    one_shot = PDNModel(PARAMS).simulate(vec, t_end=t_end, dt=DT)
    assert np.array_equal(streamed, one_shot.values)
    times = np.concatenate([b.times for b in blocks])
    assert np.array_equal(times, one_shot.times)


def test_pdn_source_rejects_coarse_step():
    from repro.telemetry.sources import pdn_source

    with pytest.raises(ConfigurationError):
        list(pdn_source(PARAMS, lambda t: 0.0,
                        t_end=1e-6, dt=1.0 / PARAMS.resonant_frequency))


# -- callable-sampling vectorization ------------------------------------------


def test_array_aware_callable_matches_scalar_callable():
    model = PDNModel(PARAMS)
    t_end = 200 * DT

    def vec(t):
        return np.where(t > 5 * DT, 2.0, 0.0)

    def scalar(t):
        return 2.0 if t > 5 * DT else 0.0

    wv = model.simulate(vec, t_end=t_end, dt=DT)
    ws = model.simulate(scalar, t_end=t_end, dt=DT)
    assert np.array_equal(wv.values, ws.values)


def test_scalar_returning_callable_falls_back_to_loop():
    model = PDNModel(PARAMS)
    # Returns a scalar even for an array argument (broadcasting trap):
    # must be sampled per instant, not trusted as vectorized.
    waveform = model.simulate(lambda t: 1.5, t_end=100 * DT, dt=DT)
    expected = model.simulate(np.full(101, 1.5), t_end=100 * DT, dt=DT)
    assert np.array_equal(waveform.values, expected.values)
