"""Combinational-cell logic and timing tests."""

import itertools

import pytest

from repro.cells.base import HIGH, LOW, UNKNOWN, PinDirection
from repro.cells.combinational import (
    And2,
    Aoi21,
    Buffer,
    Inverter,
    Mux2,
    Nand2,
    Nor2,
    Oai21,
    Or2,
    Xnor2,
    Xor2,
)
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.units import FF


TWO_INPUT = [
    (Nand2, lambda a, b: 1 - (a & b)),
    (Nor2, lambda a, b: 1 - (a | b)),
    (And2, lambda a, b: a & b),
    (Or2, lambda a, b: a | b),
    (Xor2, lambda a, b: a ^ b),
    (Xnor2, lambda a, b: 1 - (a ^ b)),
]


@pytest.mark.parametrize("cls,func", TWO_INPUT)
def test_two_input_truth_tables(cls, func):
    cell = cls(TECH_90NM)
    for a, b in itertools.product((0, 1), repeat=2):
        assert cell.evaluate({"A": a, "B": b})["Y"] == func(a, b), \
            f"{cls.__name__}({a},{b})"


def test_inverter_truth():
    inv = Inverter(TECH_90NM)
    assert inv.evaluate({"A": 0})["Y"] == 1
    assert inv.evaluate({"A": 1})["Y"] == 0
    assert inv.evaluate({"A": UNKNOWN})["Y"] is UNKNOWN


def test_buffer_truth():
    buf = Buffer(TECH_90NM)
    assert buf.evaluate({"A": 0})["Y"] == 0
    assert buf.evaluate({"A": 1})["Y"] == 1


def test_nand_x_propagation_dominant_zero():
    nand = Nand2(TECH_90NM)
    assert nand.evaluate({"A": LOW, "B": UNKNOWN})["Y"] == HIGH
    assert nand.evaluate({"A": UNKNOWN, "B": HIGH})["Y"] is UNKNOWN


def test_nor_x_propagation_dominant_one():
    nor = Nor2(TECH_90NM)
    assert nor.evaluate({"A": HIGH, "B": UNKNOWN})["Y"] == LOW
    assert nor.evaluate({"A": UNKNOWN, "B": LOW})["Y"] is UNKNOWN


def test_xor_requires_both_known():
    xor = Xor2(TECH_90NM)
    assert xor.evaluate({"A": 1, "B": UNKNOWN})["Y"] is UNKNOWN


def test_aoi21_truth():
    cell = Aoi21(TECH_90NM)
    for a, b, c in itertools.product((0, 1), repeat=3):
        want = 1 - ((a & b) | c)
        assert cell.evaluate({"A": a, "B": b, "C": c})["Y"] == want


def test_oai21_truth():
    cell = Oai21(TECH_90NM)
    for a, b, c in itertools.product((0, 1), repeat=3):
        want = 1 - ((a | b) & c)
        assert cell.evaluate({"A": a, "B": b, "C": c})["Y"] == want


def test_mux_selects():
    mux = Mux2(TECH_90NM)
    for a, b in itertools.product((0, 1), repeat=2):
        assert mux.evaluate({"A": a, "B": b, "S": 0})["Y"] == a
        assert mux.evaluate({"A": a, "B": b, "S": 1})["Y"] == b


def test_mux_unknown_select_agreeing_inputs():
    mux = Mux2(TECH_90NM)
    assert mux.evaluate({"A": 1, "B": 1, "S": UNKNOWN})["Y"] == 1
    assert mux.evaluate({"A": 0, "B": 1, "S": UNKNOWN})["Y"] is UNKNOWN


def test_logical_effort_ordering():
    """NAND2 slower than INV, NOR2 slower than NAND2 — classic CMOS."""
    load = 5 * FF
    d_inv = Inverter(TECH_90NM).propagation_delay("A", "Y", 1.0, load)
    d_nand = Nand2(TECH_90NM).propagation_delay("A", "Y", 1.0, load)
    d_nor = Nor2(TECH_90NM).propagation_delay("A", "Y", 1.0, load)
    assert d_inv < d_nand < d_nor


def test_pin_directions():
    nand = Nand2(TECH_90NM)
    assert nand.pin("A").direction is PinDirection.INPUT
    assert nand.pin("Y").direction is PinDirection.OUTPUT


def test_unknown_pin_raises():
    with pytest.raises(ConfigurationError):
        Inverter(TECH_90NM).pin("Z")


def test_propagation_delay_validates_pins():
    inv = Inverter(TECH_90NM)
    with pytest.raises(ConfigurationError):
        inv.propagation_delay("Q", "Y", 1.0, 0.0)


def test_instance_naming():
    inv = Inverter(TECH_90NM, name="u1")
    assert inv.name == "u1"
    assert Inverter(TECH_90NM).name == "Inverter"


def test_input_output_pin_lists():
    mux = Mux2(TECH_90NM)
    assert {p.name for p in mux.input_pins} == {"A", "B", "S"}
    assert {p.name for p in mux.output_pins} == {"Y"}
