"""Fused solve+decode kernels: bit-identity with the unfused chain.

Every fused kernel claims exact agreement with the tier-1 chain it
replaces (same compares, same gathers).  These tests enforce that
claim case by case — including on adversarial inputs (non-monotone
ladders, bubbled words, Hypothesis-random arrays) — plus the error
paths, so a future "optimization" cannot silently weaken the contract
to mere closeness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.thermometer import ThermometerWord, decode_word
from repro.analysis.yield_study import _score_from_thresholds
from repro.errors import ConfigurationError, DecodingError
from repro.kernels import (
    decode_bounds,
    decode_counts,
    decode_word_rows,
    fused_decode,
    midpoint_grid,
    ones_count_grid,
    s_curve_trip_probability_fused,
    score_lot_grids,
    spawn_bit_seeds,
    trip_counts_from_thresholds,
    word_grid,
)
from repro.kernels.montecarlo import s_curve_trip_probability

LADDER = (1.02, 1.05, 1.08, 1.11, 1.14)


def _random_cases(seed, n=64, bits=5, monotone=True):
    rng = np.random.default_rng(seed)
    if monotone:
        t = np.sort(rng.uniform(0.9, 1.3, size=bits))
    else:
        t = rng.uniform(0.9, 1.3, size=bits)
    v = rng.uniform(0.85, 1.35, size=n)
    return v, t


class TestDecodeCounts:
    @pytest.mark.parametrize("monotone", [True, False])
    def test_matches_word_grid_chain(self, monotone):
        v, t = _random_cases(3, monotone=monotone)
        words = word_grid(v, t)
        counts, bubbled = decode_counts(v, t)
        np.testing.assert_array_equal(counts, ones_count_grid(words))
        from repro.kernels import bubble_grid

        np.testing.assert_array_equal(bubbled, bubble_grid(words))

    def test_single_bit_never_bubbles(self):
        counts, bubbled = decode_counts(np.array([0.9, 1.1]),
                                        np.array([1.0]))
        np.testing.assert_array_equal(counts, [0, 1])
        assert not bubbled.any()

    def test_broadcasts_leading_axes(self):
        rng = np.random.default_rng(5)
        t = rng.uniform(1.0, 1.2, size=(4, 3))  # 4 dies x 3 bits
        v = rng.uniform(0.9, 1.3, size=7)
        counts, bubbled = decode_counts(v[None, :], t[:, None, :])
        assert counts.shape == bubbled.shape == (4, 7)
        for d in range(4):
            ref = ones_count_grid(word_grid(v, t[d]))
            np.testing.assert_array_equal(counts[d], ref)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 9),
           st.booleans())
    def test_property_random_arrays(self, seed, bits, monotone):
        v, t = _random_cases(seed, n=17, bits=bits, monotone=monotone)
        words = word_grid(v, t)
        counts, bubbled = decode_counts(v, t)
        from repro.kernels import bubble_grid

        np.testing.assert_array_equal(counts, ones_count_grid(words))
        np.testing.assert_array_equal(bubbled, bubble_grid(words))


class TestFusedDecode:
    def test_matches_unfused_chain(self):
        v, _ = _random_cases(9, n=200)
        words = word_grid(v, np.asarray(LADDER))
        k_ref = ones_count_grid(words)
        lo_ref, hi_ref = decode_bounds(LADDER, k_ref)
        mid_ref = midpoint_grid(lo_ref, hi_ref)
        k, lo, hi, mid = fused_decode(LADDER, v)
        np.testing.assert_array_equal(k, k_ref)
        np.testing.assert_array_equal(lo, lo_ref)
        np.testing.assert_array_equal(hi, hi_ref)
        np.testing.assert_array_equal(mid, mid_ref)

    def test_supply_exactly_on_rung(self):
        # v == T_i: strict compare fails, so the rung does not count.
        k, lo, hi, _ = fused_decode(LADDER, np.array([LADDER[2]]))
        assert k[0] == 2
        assert hi[0] == LADDER[2]

    def test_empty_ladder_raises(self):
        with pytest.raises(DecodingError):
            fused_decode([], np.array([1.0]))

    def test_non_ascending_ladder_raises(self):
        with pytest.raises(DecodingError):
            fused_decode([1.1, 1.0], np.array([1.0]))


class TestDecodeWordRows:
    def _scalar(self, row):
        word = ThermometerWord(bits=tuple(int(b) for b in row))
        rng = decode_word(word, LADDER, strict=False)
        return rng.lo, rng.hi

    def test_matches_scalar_decode_including_bubbled(self):
        rows = np.array([
            [1, 1, 1, 0, 0],
            [0, 0, 0, 0, 0],
            [1, 1, 1, 1, 1],
            [1, 0, 1, 0, 0],  # bubbled: count-preserving correction
            [0, 1, 0, 1, 1],  # bubbled
        ], dtype=np.uint8)
        ks, lo, hi = decode_word_rows(LADDER, rows)
        for i, row in enumerate(rows):
            lo_ref, hi_ref = self._scalar(row)
            assert ks[i] == int(np.sum(row))
            assert lo[i] == lo_ref
            assert hi[i] == hi_ref

    def test_single_row_input(self):
        ks, lo, hi = decode_word_rows(LADDER,
                                      np.array([1, 1, 0, 0, 0]))
        assert ks.shape == (1,)
        assert lo[0] == LADDER[1]
        assert hi[0] == LADDER[2]

    def test_width_mismatch_raises(self):
        with pytest.raises(DecodingError, match="3 bits but 5"):
            decode_word_rows(LADDER, np.array([1, 0, 0]))

    def test_non_ascending_ladder_raises(self):
        with pytest.raises(DecodingError):
            decode_word_rows((1.1, 1.0), np.array([1, 0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 1), min_size=5,
                             max_size=5), min_size=1, max_size=8))
    def test_property_random_words(self, bit_rows):
        rows = np.array(bit_rows, dtype=np.uint8)
        ks, lo, hi = decode_word_rows(LADDER, rows)
        for i, row in enumerate(rows):
            lo_ref, hi_ref = self._scalar(row)
            assert (lo[i], hi[i]) == (lo_ref, hi_ref)


class TestScoreLotGrids:
    def _lot(self, seed, dies=6, bits=5):
        rng = np.random.default_rng(seed)
        return np.asarray(LADDER) + rng.normal(0, 0.01, (dies, bits))

    def test_matches_per_die_scores(self):
        lot = self._lot(21)
        supplies = tuple(np.linspace(0.98, 1.18, 11))
        out = score_lot_grids(lot, supplies, LADDER)
        for d in range(lot.shape[0]):
            ref = _score_from_thresholds(lot[d], supplies, LADDER)
            assert out["monotone"][d] == ref.monotone
            assert out["bubbled"][d] == ref.bubbled
            assert out["bracketed"][d] == ref.bracketed
            assert out["bracketed_cal"][d] == ref.bracketed_cal
            errs = out["abs_errors"][d][out["bounded"][d]]
            np.testing.assert_array_equal(errs, np.asarray(ref.errors))

    def test_non_monotone_die_scored_identically(self):
        lot = self._lot(22)
        lot[1, [0, 1]] = lot[1, [1, 0]]  # swap two rungs
        supplies = tuple(np.linspace(0.98, 1.18, 9))
        out = score_lot_grids(lot, supplies, LADDER)
        ref = _score_from_thresholds(lot[1], supplies, LADDER)
        assert not out["monotone"][1]
        assert out["bubbled"][1] == ref.bubbled
        assert out["bracketed_cal"][1] == ref.bracketed_cal

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            score_lot_grids(np.ones(5), (1.0,), LADDER)
        with pytest.raises(ConfigurationError):
            score_lot_grids(np.ones((2, 3)), (1.0,), LADDER)

    def test_non_ascending_nominal_raises(self):
        with pytest.raises(DecodingError):
            score_lot_grids(self._lot(23), (1.0,), (1.1, 1.0, 1.2,
                                                    1.3, 1.4))


class TestTripCounts:
    def test_matches_margin_form(self):
        rng = np.random.default_rng(31)
        thresholds = np.asarray(LADDER)
        draws = thresholds[:, None, None] \
            + rng.normal(0, 0.01, (5, 7, 100))
        counts = trip_counts_from_thresholds(draws, thresholds)
        ref = np.sum(draws > thresholds[:, None, None], axis=-1)
        np.testing.assert_array_equal(counts, ref)
        assert counts.dtype == np.int64

    def test_fused_s_curve_matches_unfused(self, design):
        kw = dict(code=3, noise_rms=0.004, n_per_level=60,
                  seeds=spawn_bit_seeds(99, design.n_bits),
                  n_levels=7)
        levels_ref, probs_ref = s_curve_trip_probability(design, **kw)
        levels, probs = s_curve_trip_probability_fused(design, **kw)
        np.testing.assert_array_equal(levels, levels_ref)
        np.testing.assert_array_equal(probs, probs_ref)

    def test_fused_s_curve_validates_inputs(self, design):
        with pytest.raises(ConfigurationError):
            s_curve_trip_probability_fused(
                design, code=3, noise_rms=0.0, n_per_level=60,
                seeds=spawn_bit_seeds(1, design.n_bits))
        with pytest.raises(ConfigurationError):
            s_curve_trip_probability_fused(
                design, code=3, noise_rms=0.004, n_per_level=60,
                seeds=[1, 2])
