"""Flip-flop sampling and metastability-model tests (Fig. 2 physics)."""

import math

import pytest

from repro.cells.base import UNKNOWN
from repro.cells.sequential import DFlipFlop, SampleOutcome
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError
from repro.units import NS, PS


@pytest.fixture()
def ff():
    return DFlipFlop(TECH_90NM)


def sample(ff, arrival, clock=5 * NS, new=1, old=0, supply=None):
    return ff.sample(new_value=new, old_value=old,
                     data_arrival=arrival, clock_edge=clock,
                     supply_v=supply)


def test_early_data_clean_capture(ff):
    r = sample(ff, arrival=1 * NS)
    assert r.outcome is SampleOutcome.CLEAN_CAPTURE
    assert r.value == 1
    assert r.clk_to_q == pytest.approx(ff.clk_to_q)


def test_late_data_clean_miss(ff):
    r = sample(ff, arrival=5 * NS + 1 * NS)
    assert r.outcome is SampleOutcome.CLEAN_MISS
    assert r.value == 0


def test_capture_boundary_is_setup_before_clock(ff):
    crit = ff.critical_arrival(5 * NS)
    assert crit == pytest.approx(5 * NS - ff.setup_time)
    just_early = sample(ff, arrival=crit - 1 * PS)
    just_late = sample(ff, arrival=crit + 1 * PS)
    assert just_early.value == 1
    assert just_late.value == 0


def test_metastable_outcomes_near_boundary(ff):
    crit = ff.critical_arrival(5 * NS)
    eps = ff.window / 10
    early = sample(ff, arrival=crit - eps)
    late = sample(ff, arrival=crit + eps)
    assert early.outcome is SampleOutcome.METASTABLE_CAPTURE
    assert late.outcome is SampleOutcome.METASTABLE_MISS


def test_resolution_time_grows_toward_boundary(ff):
    """The Fig. 2 signature: clk-to-q diverges as margin shrinks."""
    crit = ff.critical_arrival(5 * NS)
    distances = [ff.window / k for k in (2, 4, 8, 16)]
    delays = [sample(ff, arrival=crit - d).clk_to_q for d in distances]
    assert all(b > a for a, b in zip(delays, delays[1:]))
    assert delays[0] > ff.clk_to_q


def test_unresolved_at_exact_boundary(ff):
    crit = ff.critical_arrival(5 * NS)
    r = sample(ff, arrival=crit)
    assert r.outcome is SampleOutcome.UNRESOLVED
    assert r.value is UNKNOWN
    assert r.clk_to_q == pytest.approx(ff.resolution_cap)


def test_no_transition_trivially_clean(ff):
    r = sample(ff, arrival=5 * NS - 1 * PS, new=1, old=1)
    assert r.outcome is SampleOutcome.CLEAN_CAPTURE
    assert r.value == 1
    assert math.isinf(r.setup_margin)


def test_outcome_flags():
    assert SampleOutcome.CLEAN_CAPTURE.captured_new_value
    assert SampleOutcome.METASTABLE_CAPTURE.captured_new_value
    assert not SampleOutcome.CLEAN_MISS.captured_new_value
    assert SampleOutcome.METASTABLE_MISS.is_metastable
    assert SampleOutcome.UNRESOLVED.is_metastable
    assert not SampleOutcome.CLEAN_CAPTURE.is_metastable


def test_supply_scaling_slows_ff(ff):
    """Reduced FF supply stretches setup — the second-order effect the
    paper says 'should be characterized'."""
    crit_nom = ff.critical_arrival(5 * NS)
    crit_low = ff.critical_arrival(5 * NS, supply_v=0.85)
    assert crit_low < crit_nom  # more setup needed -> earlier deadline


def test_collapsed_supply_unresolved(ff):
    r = sample(ff, arrival=1 * NS, supply=TECH_90NM.vth / 2)
    assert r.outcome is SampleOutcome.UNRESOLVED


def test_timing_defaults_derived_from_tech(ff):
    assert ff.setup_time > 0
    assert ff.hold_time > 0
    assert ff.clk_to_q > 0
    assert ff.resolution_cap > ff.clk_to_q


def test_custom_timing_overrides():
    ff = DFlipFlop(TECH_90NM, setup_time=50 * PS, clk_to_q=70 * PS,
                   tau=10 * PS, window=8 * PS, hold_time=20 * PS)
    assert ff.setup_time == 50 * PS
    assert ff.clk_to_q == 70 * PS


def test_rejects_nonpositive_setup():
    with pytest.raises(ConfigurationError):
        DFlipFlop(TECH_90NM, setup_time=-1 * PS)


def test_rejects_resolution_cap_below_clk_to_q():
    with pytest.raises(ConfigurationError):
        DFlipFlop(TECH_90NM, clk_to_q=100 * PS, resolution_cap=50 * PS)


def test_rejects_invalid_logic_values(ff):
    with pytest.raises(ConfigurationError):
        sample(ff, arrival=1 * NS, new=2)


def test_is_sequential_flag(ff):
    assert ff.is_sequential
    assert ff.pin("CP").is_clock
    assert not ff.pin("D").is_clock


def test_evaluate_returns_no_outputs(ff):
    assert ff.evaluate({"D": 1, "CP": 0}) == {}
