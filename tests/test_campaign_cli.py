"""CLI surface: repro --version / versions / campaign subcommands."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent

TINY_SPEC = """\
schema = "campaign/v1"
name = "cli-tiny"

[[stages]]
id = "sweep"
kind = "threshold_sweep"
params = { bits = [1, 2], tol = 5e-3 }
checks = [{ kind = "monotone", field = "thresholds" }]
"""


def repro_cli(*args, timeout=300):
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        (src, existing))
    return subprocess.run(
        [sys.executable, "-m", "repro", *map(str, args)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


@pytest.fixture()
def tiny_spec(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_SPEC)
    return path


def test_version_flag():
    out = repro_cli("--version")
    assert out.returncode == 0
    assert out.stdout.startswith("repro ")


def test_versions_table_and_json():
    table = repro_cli("versions")
    assert table.returncode == 0
    for key in ("repro", "python", "numpy", "kernel_layout",
                "campaign_schema", "manifest_schema"):
        assert key in table.stdout
    machine = repro_cli("versions", "--json")
    data = json.loads(machine.stdout)
    assert data["campaign_schema"] == "campaign/v1"
    assert data["repro"]


def test_campaign_validate_good_and_bad(tiny_spec, tmp_path):
    good = repro_cli("campaign", "validate", tiny_spec)
    assert good.returncode == 0
    assert "valid campaign/v1 spec" in good.stdout
    assert "sweep" in good.stdout

    bad_path = tmp_path / "bad.toml"
    bad_path.write_text(TINY_SPEC.replace("threshold_sweep", "nope"))
    bad = repro_cli("campaign", "validate", bad_path)
    assert bad.returncode == 1
    assert "nope" in bad.stderr


def test_campaign_run_emits_manifest_json(tiny_spec, tmp_path):
    out_dir = tmp_path / "out"
    run = repro_cli("campaign", "run", tiny_spec, "--out", out_dir,
                    "--json")
    assert run.returncode == 0, run.stderr
    # --json appends the manifest; it starts at the first brace line.
    payload = run.stdout[run.stdout.index("{"):]
    manifest = json.loads(payload)
    assert manifest["name"] == "cli-tiny"
    assert manifest["outcome"] == "passed"
    assert (out_dir / "manifest.json").exists()


def test_campaign_run_failing_check_exits_2(tmp_path):
    spec = tmp_path / "fail.toml"
    spec.write_text(TINY_SPEC.replace(
        '{ kind = "monotone", field = "thresholds" }',
        '{ kind = "bounds", field = "thresholds", min = 99.0 }'))
    run = repro_cli("campaign", "run", spec, "--out", tmp_path / "o")
    assert run.returncode == 2
    assert "FAIL" in run.stdout


def test_campaign_diff_detects_tampering(tiny_spec, tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    assert repro_cli("campaign", "run", tiny_spec, "--out", a,
                     ).returncode == 0
    assert repro_cli("campaign", "run", tiny_spec, "--out", b,
                     ).returncode == 0
    clean = repro_cli("campaign", "diff", a, b)
    assert clean.returncode == 0
    assert "zero divergences" in clean.stdout

    result = b / "results" / "sweep.json"
    data = json.loads(result.read_text())
    data["thresholds"][0] += 0.5
    result.write_text(json.dumps(data))
    tampered = repro_cli("campaign", "diff", a, b)
    assert tampered.returncode == 1
    assert "DIVERGENCE" in tampered.stdout


def test_campaign_missing_spec_is_clean_error(tmp_path):
    gone = repro_cli("campaign", "run", tmp_path / "gone.toml",
                     "--out", tmp_path / "o")
    assert gone.returncode == 1
    assert gone.stderr.strip()
