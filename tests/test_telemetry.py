"""Unit tests for the telemetry building blocks.

Ring-buffer policies, online aggregators against their exact numpy
references, and the hysteresis droop detector on crafted rung
sequences.  The pipeline-level integration (bounded memory, chunked
vs. batch bit-identity, end-to-end droop recovery) lives in
``test_telemetry_pipeline.py``.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, TelemetryOverflowError
from repro.telemetry import (
    DroopDetector,
    EwmaBaseline,
    OverflowPolicy,
    P2Quantile,
    RingBuffer,
    RungHistogram,
    RunningStats,
)


# -- ring buffer ---------------------------------------------------------


def _fill(n, start=0):
    t = np.arange(start, start + n, dtype=float)
    return t, t * 10.0


def test_ring_fifo_order_and_wraparound():
    ring = RingBuffer(8, 1)
    for k in range(5):  # repeated push/pop cycles force wraparound
        t, v = _fill(6, start=6 * k)
        assert ring.push_block(t, v) == 6
        got_t, got_v = ring.pop_block()
        assert np.array_equal(got_t, t)
        assert np.array_equal(got_v[:, 0], v)
    assert len(ring) == 0
    assert ring.pushed == 30 and ring.popped == 30


def test_ring_partial_pop():
    ring = RingBuffer(10, 1)
    t, v = _fill(7)
    ring.push_block(t, v)
    t1, _ = ring.pop_block(3)
    t2, _ = ring.pop_block(100)
    assert np.array_equal(np.concatenate([t1, t2]), t)
    empty_t, empty_v = ring.pop_block()
    assert empty_t.size == 0 and empty_v.shape == (0, 1)


def test_ring_drop_oldest_evicts_and_counts():
    ring = RingBuffer(4, 1, policy="drop_oldest")
    ring.push_block(*_fill(4))
    assert ring.push_block(*_fill(2, start=4)) == 2
    assert ring.dropped == 2
    got_t, _ = ring.pop_block()
    assert np.array_equal(got_t, np.arange(2.0, 6.0))


def test_ring_drop_oldest_oversized_block_keeps_freshest():
    ring = RingBuffer(4, 1)
    ring.push_block(*_fill(3))
    t, v = _fill(10, start=3)
    assert ring.push_block(t, v) == 10
    got_t, _ = ring.pop_block()
    assert np.array_equal(got_t, t[-4:])
    assert ring.dropped == 3 + 6  # 3 staged evicted + 6 never staged


def test_ring_block_policy_defers():
    ring = RingBuffer(4, 1, policy=OverflowPolicy.BLOCK)
    t, v = _fill(6)
    assert ring.push_block(t, v) == 4
    assert ring.deferred == 2
    assert ring.dropped == 0
    ring.pop_block(2)
    assert ring.push_block(t[4:], v[4:]) == 2


def test_ring_error_policy_raises():
    ring = RingBuffer(4, 1, policy="error")
    ring.push_block(*_fill(3))
    with pytest.raises(TelemetryOverflowError):
        ring.push_block(*_fill(2, start=3))
    assert len(ring) == 3  # nothing was partially staged


def test_ring_high_watermark_tracks_peak():
    ring = RingBuffer(8, 1)
    ring.push_block(*_fill(5))
    ring.pop_block(5)
    ring.push_block(*_fill(3))
    assert ring.high_watermark == 5
    assert ring.counters()["staged"] == 3


def test_ring_word_payload_roundtrip():
    ring = RingBuffer(16, 7)
    bits = np.asarray([[1, 1, 0, 1, 0, 0, 0], [1] * 7], dtype=float)
    ring.push_block(np.array([0.0, 1.0]), bits)
    _, got = ring.pop_block()
    assert np.array_equal(got, bits)


def test_ring_validation():
    with pytest.raises(ConfigurationError):
        RingBuffer(0, 1)
    with pytest.raises(ConfigurationError):
        RingBuffer(4, 0)
    with pytest.raises(ConfigurationError):
        OverflowPolicy.parse("bogus")
    ring = RingBuffer(4, 2)
    with pytest.raises(ConfigurationError):
        ring.push_block(np.zeros(3), np.zeros((3, 1)))


# -- running stats -------------------------------------------------------


def test_running_stats_matches_numpy():
    rng = np.random.default_rng(11)
    xs = rng.normal(1.0, 0.2, size=5000)
    stats = RunningStats()
    stats.update_block(xs[:1700])
    for x in xs[1700:1710]:
        stats.update(float(x))
    stats.update_block(xs[1710:])
    assert stats.count == xs.size
    assert stats.mean == pytest.approx(float(xs.mean()), rel=1e-12)
    assert stats.variance == pytest.approx(
        float(xs.var(ddof=1)), rel=1e-9
    )
    assert stats.minimum == float(xs.min())
    assert stats.maximum == float(xs.max())


def test_running_stats_empty_and_single():
    stats = RunningStats()
    d = stats.as_dict()
    assert d["count"] == 0 and d["mean"] is None
    stats.update(2.5)
    assert stats.mean == 2.5
    assert math.isnan(stats.variance)
    assert stats.as_dict()["variance"] is None


# -- P2 quantiles --------------------------------------------------------


@pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
def test_p2_quantile_continuous_accuracy(q):
    rng = np.random.default_rng(5)
    xs = rng.normal(0.0, 1.0, size=20_000)
    est = P2Quantile(q)
    est.update_block(xs)
    exact = float(np.quantile(xs, q))
    # P2 on 20k continuous Gaussian samples: a few percent of sigma.
    assert abs(est.value - exact) < 0.05


def test_p2_quantile_small_counts_are_exact():
    est = P2Quantile(0.5)
    assert math.isnan(est.value)
    for x in (5.0, 1.0, 3.0):
        est.update(x)
    assert est.value == 3.0  # exact order statistic below 5 samples


def test_p2_quantile_validation():
    with pytest.raises(ConfigurationError):
        P2Quantile(0.0)
    with pytest.raises(ConfigurationError):
        P2Quantile(1.0)


def test_p2_quantile_quantized_within_one_rung():
    """The documented bound on decoded (discrete) midpoint streams."""
    rng = np.random.default_rng(9)
    levels = np.array([0.83, 0.91, 0.945, 0.976, 1.006, 1.037, 1.053])
    xs = levels[rng.integers(0, levels.size, size=30_000)]
    bound = float(np.max(np.diff(levels)))
    for q in (0.5, 0.99):
        est = P2Quantile(q)
        est.update_block(xs)
        assert abs(est.value - float(np.quantile(xs, q))) <= bound


# -- rung histogram ------------------------------------------------------


def test_rung_histogram_exact_counts():
    hist = RungHistogram(7)
    rng = np.random.default_rng(3)
    ks = rng.integers(0, 8, size=4000)
    bubbles = rng.random(4000) < 0.1
    hist.update_block(ks[:1000], bubbles[:1000])
    hist.update_block(ks[1000:], bubbles[1000:])
    assert np.array_equal(hist.counts, np.bincount(ks, minlength=8))
    assert hist.bubbled == int(bubbles.sum())
    assert hist.total == 4000
    occ = hist.occupancy()
    assert sum(occ) == pytest.approx(1.0)
    assert len(occ) == 8


def test_rung_histogram_validation():
    hist = RungHistogram(3)
    with pytest.raises(ConfigurationError):
        hist.update_block(np.array([4]))
    with pytest.raises(ConfigurationError):
        RungHistogram(0)


# -- EWMA baseline -------------------------------------------------------


def test_ewma_chunk_invariant():
    rng = np.random.default_rng(17)
    xs = rng.normal(1.0, 0.05, size=2000)
    whole = EwmaBaseline(0.02)
    whole.update_block(xs)
    chunked = EwmaBaseline(0.02)
    for lo in range(0, 2000, 173):  # ragged chunking
        chunked.update_block(xs[lo:lo + 173])
    assert whole.value == chunked.value
    scalar = EwmaBaseline(0.02)
    for x in xs:
        scalar.update(float(x))
    assert whole.value == scalar.value


def test_ewma_validation():
    with pytest.raises(ConfigurationError):
        EwmaBaseline(0.0)
    with pytest.raises(ConfigurationError):
        EwmaBaseline(1.5)


# -- droop detector ------------------------------------------------------


def _feed(det, ks, mids=None, t0=0.0):
    ks = np.asarray(ks)
    if mids is None:
        mids = 0.8 + 0.03 * ks.astype(float)
    times = t0 + np.arange(ks.size, dtype=float)
    det.update_block(times, ks, np.asarray(mids, dtype=float))
    return times


def test_detector_basic_episode():
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0)
    _feed(det, [6, 6, 2, 1, 0, 1, 3, 5, 6, 6])
    det.finalize()
    assert len(det.events) == 1
    e = det.events[0]
    assert e.start == 2.0 and e.end == 6.0  # rung-3 sample still inside
    assert e.n_samples == 5
    assert e.worst_rung == 0
    assert e.depth_v == pytest.approx(1.0 - 0.8)
    assert not e.truncated


def test_detector_hysteresis_prevents_chatter():
    """Rattle between the entry rung and entry+1 must not split."""
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0)
    _feed(det, [6, 2, 3, 2, 3, 2, 4, 3, 2, 6, 6])
    det.finalize()
    assert len(det.events) == 1
    assert det.events[0].n_samples == 8

    naive_transitions = 0  # what a no-hysteresis detector would emit
    ks = [6, 2, 3, 2, 3, 2, 4, 3, 2, 6, 6]
    for a, b in zip(ks, ks[1:]):
        if a > 2 and b <= 2:
            naive_transitions += 1
    assert naive_transitions > 1


def test_detector_min_duration_discards_glitches():
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0, min_duration=3)
    _feed(det, [6, 2, 6, 6, 2, 2, 2, 6, 6])
    det.finalize()
    assert len(det.events) == 1
    assert det.events[0].n_samples == 3
    assert det.discarded == 1


def test_detector_refractory_holds_off():
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0, refractory=4)
    # Second dip falls inside the 4-sample hold-off window.
    _feed(det, [2, 2, 6, 2, 2, 6, 6, 6, 6, 2, 2, 6])
    det.finalize()
    assert len(det.events) == 2
    assert det.events[1].start == 9.0


def test_detector_truncated_episode():
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0)
    _feed(det, [6, 6, 1, 1])
    det.finalize()
    assert len(det.events) == 1
    assert det.events[0].truncated


def test_detector_worst_word_and_chunk_split():
    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0)
    words = np.zeros((4, 7))
    words[2, :1] = 1  # deepest sample's word: 0000001
    ks = np.array([6, 1, 1, 6])
    mids = np.array([1.0, 0.90, 0.85, 1.0])
    # Split across two blocks mid-episode: state must carry over.
    det.update_block(np.array([0.0, 1.0]), ks[:2], mids[:2],
                     words[:2])
    det.update_block(np.array([2.0, 3.0]), ks[2:], mids[2:],
                     words[2:])
    det.finalize()
    assert len(det.events) == 1
    assert det.events[0].worst_word == "0000001"
    assert det.events[0].worst_v == pytest.approx(0.85)


def test_detector_validation():
    with pytest.raises(ConfigurationError):
        DroopDetector("s", enter_rung=3, exit_rung=3, reference_v=1.0)
    with pytest.raises(ConfigurationError):
        DroopDetector("s", enter_rung=-1, exit_rung=2, reference_v=1.0)
    with pytest.raises(ConfigurationError):
        DroopDetector("s", enter_rung=1, exit_rung=3, reference_v=1.0,
                      min_duration=0)
    with pytest.raises(ConfigurationError):
        DroopDetector("s", enter_rung=1, exit_rung=3, reference_v=1.0,
                      refractory=-1)


def test_event_as_dict_is_json_friendly():
    import json

    det = DroopDetector("s", enter_rung=2, exit_rung=5,
                        reference_v=1.0)
    _feed(det, [6, 1, 1, 6])
    det.finalize()
    row = det.events[0].as_dict()
    assert json.loads(json.dumps(row)) == row
