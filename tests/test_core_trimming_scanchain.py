"""Trimming-policy and PSN-scan-chain tests."""

import numpy as np
import pytest

from repro.core.scanchain import PSNScanChain
from repro.core.trimming import TrimmingPolicy, retrim_for_corner
from repro.devices.corners import corner_by_name
from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid


# -- trimming -----------------------------------------------------------------

def test_reference_range_is_code011(design):
    policy = TrimmingPolicy(design, 3)
    assert policy.reference_range[0] == pytest.approx(0.827, abs=5e-4)
    assert policy.reference_range[1] == pytest.approx(1.053, abs=5e-4)


def test_typical_corner_keeps_reference_code(design):
    policy = TrimmingPolicy(design, 3)
    assert policy.choose_code(design.tech) == 3


def test_tracking_pg_small_shift_same_code(design):
    """When the PG tracks the corner, the drive shift cancels and the
    residual Vth shift stays below one code step."""
    for name in ("SS", "FF"):
        r = retrim_for_corner(design, corner_by_name(name))
        assert r.chosen_code == 3
        assert r.untrimmed_residual < 0.05


def test_external_reference_ss_needs_bigger_window(design):
    """With an external timing reference, a slow corner's slower
    inverter needs a larger window: higher code."""
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert r.chosen_code > 3
    assert r.residual < r.untrimmed_residual / 5


def test_external_reference_ff_needs_smaller_window(design):
    r = retrim_for_corner(design, corner_by_name("FF"),
                          pg_tracks_corner=False)
    assert r.chosen_code < 3
    assert r.residual < r.untrimmed_residual


def test_trim_result_reports_all_code_ranges(design):
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert len(r.corner_ranges) == 8
    mins = [lo for lo, _ in r.corner_ranges]
    assert all(b < a for a, b in zip(mins, mins[1:]))  # higher code, lower range


def test_trim_improved_flag(design):
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert r.improved


def test_trim_reference_code_validated(design):
    with pytest.raises(ConfigurationError):
        TrimmingPolicy(design, 9)


# -- scan chain ----------------------------------------------------------------

@pytest.fixture()
def grid():
    return IRDropGrid(rows=6, cols=6, r_segment=0.08, r_pad=0.01)


@pytest.fixture()
def chain(design, grid):
    sites = [(1, 1), (3, 3), (4, 4), (0, 5)]
    return PSNScanChain(design, grid, sites, code=3)


def test_measures_bracket_tile_voltages(chain, grid):
    currents = grid.hotspot_currents(total_current=4.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    assert all(m.brackets_truth for m in measures)


def test_map_error_metrics(chain, grid):
    currents = grid.hotspot_currents(total_current=4.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    err = chain.map_error(measures)
    assert err["bracket_rate"] == 1.0
    assert err["rmse"] < 0.02  # within one LSB-ish
    assert err["worst"] >= err["rmse"]


def test_hotspot_found_when_gradient_resolvable(design, grid):
    """With a strong gradient, the site nearest the hotspot reads the
    deepest droop."""
    sites = [(0, 0), (3, 3), (5, 5)]
    chain = PSNScanChain(design, grid, sites, code=3)
    currents = grid.hotspot_currents(total_current=12.0, hotspot=(3, 3),
                                     hotspot_share=0.9)
    measures = chain.measure_map(currents)
    assert chain.hotspot_site(measures) == (3, 3)


def test_scan_out_stream_order(chain, grid):
    currents = np.zeros((6, 6))
    measures = chain.measure_map(currents)
    stream = chain.scan_out(measures)
    assert len(stream) == 7 * 4
    # Last site shifts out first.
    first_word = "".join(str(b) for b in stream[:7])
    assert first_word == measures[-1].word.to_string()


def test_scan_roundtrip(chain, grid):
    currents = grid.hotspot_currents(total_current=6.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    words = chain.deserialize(chain.scan_out(measures))
    assert [w.to_string() for w in words] == \
        [m.word.to_string() for m in measures]


def test_deserialize_length_validated(chain):
    with pytest.raises(ConfigurationError):
        chain.deserialize([0, 1, 0])


def test_chain_validation(design, grid):
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(0, 0), (0, 0)])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(9, 0)])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(0, 0)], code=8)


def test_scan_out_count_validated(chain, grid):
    measures = chain.measure_map(np.zeros((6, 6)))
    with pytest.raises(ConfigurationError):
        chain.scan_out(measures[:-1])


# -- scan-out/deserialize round-trip property ---------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis.thermometer import (  # noqa: E402
    ThermometerWord,
    VoltageRange,
)
from repro.core.scanchain import SiteMeasure  # noqa: E402


@st.composite
def _chain_and_words(draw):
    """A chain of random width/length plus arbitrary per-site words.

    Words are *not* restricted to valid thermometer codes — bubbled and
    masked patterns must survive the shift unchanged too.
    """
    n_bits = draw(st.integers(min_value=1, max_value=12))
    n_sites = draw(st.integers(min_value=1, max_value=9))
    words = [
        ThermometerWord(draw(st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=n_bits, max_size=n_bits,
        )))
        for _ in range(n_sites)
    ]
    return n_bits, n_sites, words


@settings(max_examples=60, deadline=None)
@given(data=_chain_and_words())
def test_scan_roundtrip_property(design, data):
    """scan_out -> deserialize is the identity for any words, any
    chain length, any bit width."""
    n_bits, n_sites, words = data
    caps = tuple(1e-15 * (i + 1) for i in range(n_bits))
    dut = design.with_load_caps(caps)
    assert dut.n_bits == n_bits
    grid = IRDropGrid(rows=3, cols=3, r_segment=0.05, r_pad=0.01)
    sites = [(k // 3, k % 3) for k in range(n_sites)]
    chain = PSNScanChain(dut, grid, sites, code=3)

    measures = [
        SiteMeasure(site=s, true_voltage=1.0, word=w,
                    decoded=VoltageRange(0.9, 1.1))
        for s, w in zip(sites, words)
    ]
    stream = chain.scan_out(measures)
    assert len(stream) == n_bits * n_sites
    assert set(stream) <= {0, 1}
    out = chain.deserialize(stream)
    assert out == words
    # The stream really is last-site-first, MSB-first per word.
    head = "".join(str(b) for b in stream[:n_bits])
    assert head == words[-1].to_string()
