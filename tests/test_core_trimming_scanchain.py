"""Trimming-policy and PSN-scan-chain tests."""

import numpy as np
import pytest

from repro.core.scanchain import PSNScanChain
from repro.core.trimming import TrimmingPolicy, retrim_for_corner
from repro.devices.corners import corner_by_name
from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid


# -- trimming -----------------------------------------------------------------

def test_reference_range_is_code011(design):
    policy = TrimmingPolicy(design, 3)
    assert policy.reference_range[0] == pytest.approx(0.827, abs=5e-4)
    assert policy.reference_range[1] == pytest.approx(1.053, abs=5e-4)


def test_typical_corner_keeps_reference_code(design):
    policy = TrimmingPolicy(design, 3)
    assert policy.choose_code(design.tech) == 3


def test_tracking_pg_small_shift_same_code(design):
    """When the PG tracks the corner, the drive shift cancels and the
    residual Vth shift stays below one code step."""
    for name in ("SS", "FF"):
        r = retrim_for_corner(design, corner_by_name(name))
        assert r.chosen_code == 3
        assert r.untrimmed_residual < 0.05


def test_external_reference_ss_needs_bigger_window(design):
    """With an external timing reference, a slow corner's slower
    inverter needs a larger window: higher code."""
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert r.chosen_code > 3
    assert r.residual < r.untrimmed_residual / 5


def test_external_reference_ff_needs_smaller_window(design):
    r = retrim_for_corner(design, corner_by_name("FF"),
                          pg_tracks_corner=False)
    assert r.chosen_code < 3
    assert r.residual < r.untrimmed_residual


def test_trim_result_reports_all_code_ranges(design):
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert len(r.corner_ranges) == 8
    mins = [lo for lo, _ in r.corner_ranges]
    assert all(b < a for a, b in zip(mins, mins[1:]))  # higher code, lower range


def test_trim_improved_flag(design):
    r = retrim_for_corner(design, corner_by_name("SS"),
                          pg_tracks_corner=False)
    assert r.improved


def test_trim_reference_code_validated(design):
    with pytest.raises(ConfigurationError):
        TrimmingPolicy(design, 9)


# -- scan chain ----------------------------------------------------------------

@pytest.fixture()
def grid():
    return IRDropGrid(rows=6, cols=6, r_segment=0.08, r_pad=0.01)


@pytest.fixture()
def chain(design, grid):
    sites = [(1, 1), (3, 3), (4, 4), (0, 5)]
    return PSNScanChain(design, grid, sites, code=3)


def test_measures_bracket_tile_voltages(chain, grid):
    currents = grid.hotspot_currents(total_current=4.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    assert all(m.brackets_truth for m in measures)


def test_map_error_metrics(chain, grid):
    currents = grid.hotspot_currents(total_current=4.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    err = chain.map_error(measures)
    assert err["bracket_rate"] == 1.0
    assert err["rmse"] < 0.02  # within one LSB-ish
    assert err["worst"] >= err["rmse"]


def test_hotspot_found_when_gradient_resolvable(design, grid):
    """With a strong gradient, the site nearest the hotspot reads the
    deepest droop."""
    sites = [(0, 0), (3, 3), (5, 5)]
    chain = PSNScanChain(design, grid, sites, code=3)
    currents = grid.hotspot_currents(total_current=12.0, hotspot=(3, 3),
                                     hotspot_share=0.9)
    measures = chain.measure_map(currents)
    assert chain.hotspot_site(measures) == (3, 3)


def test_scan_out_stream_order(chain, grid):
    currents = np.zeros((6, 6))
    measures = chain.measure_map(currents)
    stream = chain.scan_out(measures)
    assert len(stream) == 7 * 4
    # Last site shifts out first.
    first_word = "".join(str(b) for b in stream[:7])
    assert first_word == measures[-1].word.to_string()


def test_scan_roundtrip(chain, grid):
    currents = grid.hotspot_currents(total_current=6.0, hotspot=(3, 3))
    measures = chain.measure_map(currents)
    words = chain.deserialize(chain.scan_out(measures))
    assert [w.to_string() for w in words] == \
        [m.word.to_string() for m in measures]


def test_deserialize_length_validated(chain):
    with pytest.raises(ConfigurationError):
        chain.deserialize([0, 1, 0])


def test_chain_validation(design, grid):
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(0, 0), (0, 0)])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(9, 0)])
    with pytest.raises(ConfigurationError):
        PSNScanChain(design, grid, [(0, 0)], code=8)


def test_scan_out_count_validated(chain, grid):
    measures = chain.measure_map(np.zeros((6, 6)))
    with pytest.raises(ConfigurationError):
        chain.scan_out(measures[:-1])
