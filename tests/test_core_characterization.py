"""Characterization tests (Figs. 4-5 machinery), incl. sim/analytic
cross-checks."""

import pytest

from repro.core.characterization import (
    characterize_array,
    characterize_bit_thresholds,
    linearity_report,
    threshold_vs_capacitance,
)
from repro.core.sensor import SenseRail
from repro.errors import ConfigurationError
from repro.units import PF


def test_analytic_thresholds_match_design(design):
    ts = characterize_bit_thresholds(design, 3)
    for b, t in enumerate(ts, start=1):
        assert t == pytest.approx(design.bit_threshold(b, 3))


def test_sim_thresholds_match_analytic_sub_mv(design):
    """The cross-check that the event-driven stack realizes the
    analytic design: bisected sim thresholds within 1 mV."""
    analytic = characterize_bit_thresholds(design, 3)
    sim = characterize_bit_thresholds(design, 3, method="sim",
                                      tol=0.25e-3)
    for b, (a, s) in enumerate(zip(analytic, sim), start=1):
        assert s == pytest.approx(a, abs=1e-3), f"bit {b}"


def test_gnd_thresholds_complementary(design):
    vdd_ts = characterize_bit_thresholds(design, 3)
    gnd_ts = characterize_bit_thresholds(design, 3, rail=SenseRail.GND)
    nominal = design.tech.vdd_nominal
    for v, g in zip(vdd_ts, gnd_ts):
        assert g == pytest.approx(nominal - v)


def test_unknown_method_rejected(design):
    with pytest.raises(ConfigurationError):
        characterize_bit_thresholds(design, 3, method="magic")


def test_characterize_array_fig5_ranges(design):
    chars = characterize_array(design, codes=(2, 3))
    assert chars[3].v_min == pytest.approx(0.827, abs=5e-4)
    assert chars[3].v_max == pytest.approx(1.053, abs=5e-4)
    assert chars[2].v_min == pytest.approx(0.951, abs=5e-4)
    assert chars[2].v_max == pytest.approx(1.237, abs=5e-4)


def test_characteristic_table_has_all_words(design):
    chars = characterize_array(design, codes=(3,))
    table = chars[3].table
    assert len(table) == 8
    assert table[0][0] == "0000000"
    assert table[-1][0] == "1111111"


def test_characteristic_word_at(design):
    chars = characterize_array(design, codes=(3,))
    assert chars[3].word_at(1.00) == "0011111"
    assert chars[3].word_at(0.90) == "0000011"
    assert chars[3].word_at(0.50) == "0000000"
    assert chars[3].word_at(1.50) == "1111111"


def test_lower_code_shifts_range_up(design):
    """The paper's code 010-vs-011 observation: smaller skew -> only
    higher supplies pass."""
    chars = characterize_array(design, codes=(1, 2, 3))
    assert chars[2].v_min > chars[3].v_min
    assert chars[1].v_min > chars[2].v_min


def test_fig4_anchor_point(design):
    pts = threshold_vs_capacitance(design, [2 * PF])
    assert pts[0][1] == pytest.approx(0.9360, abs=5e-4)


def test_fig4_monotone_in_cap(design):
    caps = [(1.7 + 0.1 * i) * PF for i in range(6)]
    pts = threshold_vs_capacitance(design, caps)
    vals = [v for _, v in pts]
    assert all(b > a for a, b in zip(vals, vals[1:]))


def test_fig4_linear_in_paper_range(design):
    """Fig. 4's claim: linear within the 0.9-1.1 V window."""
    caps = [(1.85 + 0.04 * i) * PF for i in range(10)]
    pts = threshold_vs_capacitance(design, caps)
    report = linearity_report(pts)
    assert report["r_squared"] > 0.995
    assert report["max_residual"] < 0.008  # < half an LSB (~32 mV)


def test_fig4_sim_matches_analytic(design):
    caps = [1.9 * PF, 2.1 * PF]
    analytic = threshold_vs_capacitance(design, caps)
    sim = threshold_vs_capacitance(design, caps, method="sim",
                                   tol=0.25e-3)
    for (_, a), (_, s) in zip(analytic, sim):
        assert s == pytest.approx(a, abs=1e-3)


def test_fig4_rejects_bad_caps(design):
    with pytest.raises(ConfigurationError):
        threshold_vs_capacitance(design, [])
    with pytest.raises(ConfigurationError):
        threshold_vs_capacitance(design, [-1 * PF])


def test_linearity_report_needs_points():
    with pytest.raises(ConfigurationError):
        linearity_report([(0.0, 0.0), (1.0, 1.0)])


def test_linearity_report_perfect_line():
    pts = [(float(i), 2.0 * i + 1.0) for i in range(5)]
    rep = linearity_report(pts)
    assert rep["slope"] == pytest.approx(2.0)
    assert rep["intercept"] == pytest.approx(1.0)
    assert rep["r_squared"] == pytest.approx(1.0)
    assert rep["max_residual"] == pytest.approx(0.0, abs=1e-12)
