"""Activity-generator and noise-synthesis tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.psn.activity import ActivityProfile, ClockedActivityGenerator
from repro.psn.noise import (
    NoiseScenario,
    band_limited_noise,
    droop_event,
    two_level_scenario,
)
from repro.units import NS


def make_gen(**kw):
    base = dict(clock_period=2 * NS, peak_current=10.0)
    base.update(kw)
    return ClockedActivityGenerator(**base)


def test_constant_profile_every_cycle():
    g = make_gen(base_activity=0.5)
    assert g.activity_for_cycle(0) == 0.5
    assert g.activity_for_cycle(100) == 0.5


def test_step_profile_switches_at_cycle():
    g = make_gen(profile=ActivityProfile.STEP, step_cycle=10,
                 idle_activity=0.1, base_activity=0.8)
    assert g.activity_for_cycle(9) == 0.1
    assert g.activity_for_cycle(10) == 0.8


def test_burst_profile_alternates():
    g = make_gen(profile=ActivityProfile.BURST, burst_cycles=4)
    acts = [g.activity_for_cycle(c) for c in range(12)]
    assert acts[0] == acts[3] == g.base_activity
    assert acts[4] == acts[7] == g.idle_activity
    assert acts[8] == g.base_activity


def test_random_profile_deterministic():
    g = make_gen(profile=ActivityProfile.RANDOM, seed=7)
    a = [g.activity_for_cycle(c) for c in range(20)]
    b = [g.activity_for_cycle(c) for c in range(20)]
    assert a == b
    assert len(set(a)) > 5  # actually varies


def test_random_profile_in_bounds():
    g = make_gen(profile=ActivityProfile.RANDOM, idle_activity=0.2,
                 base_activity=0.6, seed=3)
    for c in range(50):
        assert 0.2 <= g.activity_for_cycle(c) <= 0.6


def test_sample_shape_and_nonnegative():
    g = make_gen()
    i = g.sample(t_end=20 * NS, dt=0.05 * NS)
    assert i.shape == (401,)
    assert np.all(i >= 0)


def test_sample_peak_matches_activity():
    g = make_gen(base_activity=1.0, peak_current=5.0)
    i = g.sample(t_end=20 * NS, dt=0.01 * NS)
    assert np.max(i) == pytest.approx(5.0, rel=0.05)


def test_sample_pulse_confined_to_fraction():
    g = make_gen(pulse_fraction=0.25)
    dt = 0.01 * NS
    i = g.sample(t_end=2 * NS, dt=dt)
    times = np.arange(i.size) * dt
    outside = i[(times > 0.25 * 2 * NS + dt) & (times < 2 * NS - dt)]
    assert np.all(outside == 0)


def test_sample_rejects_coarse_dt():
    g = make_gen(pulse_fraction=0.1)
    with pytest.raises(ConfigurationError):
        g.sample(t_end=20 * NS, dt=0.1 * NS)


def test_average_current_formula():
    g = make_gen(base_activity=0.5, peak_current=8.0, pulse_fraction=0.4)
    assert g.average_current() == pytest.approx(0.5 * 0.5 * 8.0 * 0.4)


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        make_gen(clock_period=0.0)
    with pytest.raises(ConfigurationError):
        make_gen(base_activity=1.5)
    with pytest.raises(ConfigurationError):
        make_gen(pulse_fraction=0.0)


# -- noise synthesis -------------------------------------------------------

def test_two_level_scenario_levels():
    w = two_level_scenario(1.0, 0.95, 10 * NS)
    assert w(5 * NS) == 1.0
    assert w(15 * NS) == 0.95


def test_two_level_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        two_level_scenario(0.0, 0.9, 1 * NS)


def test_droop_event_dips_below_base():
    w = droop_event(1.0, 0.08, 10 * NS)
    assert w(5 * NS) == pytest.approx(1.0)
    ts = np.linspace(10 * NS, 30 * NS, 400)
    vals = np.array([w(t) for t in ts])
    assert vals.min() < 0.95


def test_band_limited_noise_rms_and_mean():
    w = band_limited_noise(t_end=200 * NS, dt=0.05 * NS, rms=0.02,
                           bandwidth=5e8, seed=1, mean=1.0)
    ts = np.arange(0, 200 * NS, 0.05 * NS)
    vals = w.sample(ts)
    assert np.std(vals) == pytest.approx(0.02, rel=0.1)
    assert np.mean(vals) == pytest.approx(1.0, abs=0.01)


def test_band_limited_noise_deterministic():
    a = band_limited_noise(t_end=10 * NS, dt=0.05 * NS, rms=0.01,
                           bandwidth=5e8, seed=4)
    b = band_limited_noise(t_end=10 * NS, dt=0.05 * NS, rms=0.01,
                           bandwidth=5e8, seed=4)
    assert a(3 * NS) == b(3 * NS)


def test_band_limited_noise_rejects_nyquist_violation():
    with pytest.raises(ConfigurationError):
        band_limited_noise(t_end=10 * NS, dt=0.05 * NS, rms=0.01,
                           bandwidth=2e10, seed=1)


def test_scenario_default_clean_rails():
    vdd, gnd = NoiseScenario().build()
    assert vdd(0.0) == 1.0
    assert gnd(0.0) == 0.0


def test_scenario_ir_drop_and_ground_rise():
    vdd, gnd = (NoiseScenario()
                .with_ir_drop(0.03)
                .with_ground_rise(0.02)
                .build())
    assert vdd(0.0) == pytest.approx(0.97)
    assert gnd(0.0) == pytest.approx(0.02)


def test_scenario_droop_event_applies():
    vdd, _ = NoiseScenario().with_vdd_droop(0.1, 50 * NS).build()
    ts = np.linspace(50 * NS, 70 * NS, 400)
    assert min(vdd(t) for t in ts) < 0.93


def test_scenario_gnd_bounce_applies():
    _, gnd = NoiseScenario().with_gnd_bounce(0.05, 50 * NS).build()
    ts = np.linspace(50 * NS, 70 * NS, 400)
    assert max(gnd(t) for t in ts) > 0.03


def test_scenario_random_noise_seeded():
    s1 = NoiseScenario(seed=9).with_vdd_random_noise(0.01)
    s2 = NoiseScenario(seed=9).with_vdd_random_noise(0.01)
    v1, _ = s1.build()
    v2, _ = s2.build()
    assert v1(13 * NS) == v2(13 * NS)


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        NoiseScenario().with_ir_drop(-0.1)
