"""Event-queue and netlist structural tests."""

import pytest

from repro.cells.combinational import Inverter, Nand2
from repro.devices.technology import TECH_90NM
from repro.errors import NetlistError, SimulationError
from repro.sim.events import EventQueue
from repro.sim.netlist import Netlist
from repro.units import FF


# -- event queue ---------------------------------------------------------

def test_queue_orders_by_time():
    q = EventQueue()
    q.schedule(2.0, "b", 1)
    q.schedule(1.0, "a", 1)
    assert q.pop().net == "a"
    assert q.pop().net == "b"


def test_queue_fifo_at_equal_time():
    q = EventQueue()
    q.schedule(1.0, "first", 1)
    q.schedule(1.0, "second", 0)
    assert q.pop().net == "first"
    assert q.pop().net == "second"


def test_queue_cancellation_skipped():
    q = EventQueue()
    ev = q.schedule(1.0, "a", 1)
    q.schedule(2.0, "b", 1)
    ev.cancel()
    assert q.pop().net == "b"
    assert q.pop() is None


def test_queue_len_excludes_cancelled():
    q = EventQueue()
    ev = q.schedule(1.0, "a", 1)
    q.schedule(2.0, "b", 1)
    ev.cancel()
    assert len(q) == 1


def test_queue_rejects_past_scheduling():
    q = EventQueue()
    q.schedule(5.0, "a", 1)
    q.pop()
    with pytest.raises(SimulationError):
        q.schedule(1.0, "b", 1)


def test_queue_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    ev = q.schedule(3.0, "a", 1)
    assert q.peek_time() == 3.0
    ev.cancel()
    assert q.peek_time() is None


def test_queue_clear():
    q = EventQueue()
    q.schedule(1.0, "a", 1)
    q.clear()
    assert q.pop() is None
    assert q.now == 0.0


# -- netlist ----------------------------------------------------------------

@pytest.fixture()
def nl():
    n = Netlist()
    n.add_supply("VDD", 1.0)
    n.add_supply("GND", 0.0, is_ground=True)
    return n


def test_duplicate_net_rejected(nl):
    nl.add_net("a")
    with pytest.raises(NetlistError):
        nl.add_net("a")


def test_net_supply_name_collision(nl):
    with pytest.raises(NetlistError):
        nl.add_net("VDD")


def test_instance_requires_known_nets(nl):
    nl.add_net("a")
    with pytest.raises(NetlistError):
        nl.add_instance("u1", Inverter(TECH_90NM),
                        {"A": "a", "Y": "nope"}, vdd="VDD", gnd="GND")


def test_instance_requires_all_pins_connected(nl):
    nl.add_net("a")
    with pytest.raises(NetlistError):
        nl.add_instance("u1", Nand2(TECH_90NM), {"A": "a"},
                        vdd="VDD", gnd="GND")


def test_instance_requires_known_rails(nl):
    nl.add_net("a")
    nl.add_net("y")
    with pytest.raises(NetlistError):
        nl.add_instance("u1", Inverter(TECH_90NM),
                        {"A": "a", "Y": "y"}, vdd="VCC", gnd="GND")


def test_multiple_drivers_rejected(nl):
    for net in ("a", "b", "y"):
        nl.add_net(net)
    nl.add_instance("u1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(NetlistError):
        nl.add_instance("u2", Inverter(TECH_90NM), {"A": "b", "Y": "y"},
                        vdd="VDD", gnd="GND")


def test_external_input_cannot_be_driven(nl):
    nl.add_net("a")
    nl.add_net("y")
    nl.mark_external_input("y")
    with pytest.raises(NetlistError):
        nl.add_instance("u1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                        vdd="VDD", gnd="GND")


def test_duplicate_instance_rejected(nl):
    for net in ("a", "y", "z"):
        nl.add_net(net)
    nl.add_instance("u1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(NetlistError):
        nl.add_instance("u1", Inverter(TECH_90NM), {"A": "y", "Y": "z"},
                        vdd="VDD", gnd="GND")


def test_load_sums_pins_and_extra_cap(nl):
    nl.add_net("a", extra_cap=5 * FF)
    nl.add_net("y")
    nl.mark_external_input("a")
    inv = Inverter(TECH_90NM, strength=2)
    nl.add_instance("u1", inv, {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    assert nl.load_of("a") == pytest.approx(5 * FF + inv.pin("A").cap)
    assert nl.load_of("y") == pytest.approx(0.0)


def test_validate_flags_undriven_input(nl):
    nl.add_net("a")
    nl.add_net("y")
    nl.add_instance("u1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(NetlistError):
        nl.validate()
    nl.mark_external_input("a")
    nl.validate()  # now clean


def test_supply_of_uses_both_rails(nl):
    nl.add_net("a")
    nl.add_net("y")
    nl.mark_external_input("a")
    inst = nl.add_instance("u1", Inverter(TECH_90NM),
                           {"A": "a", "Y": "y"}, vdd="VDD", gnd="GND")
    nl.set_supply_waveform("GND", 0.05)
    assert nl.supply_of(inst, 0.0) == pytest.approx(0.95)


def test_set_supply_waveform_unknown_rail(nl):
    with pytest.raises(NetlistError):
        nl.set_supply_waveform("VCC", 1.0)


def test_stats_counts_cells(nl):
    for net in ("a", "y", "z"):
        nl.add_net(net)
    nl.mark_external_input("a")
    nl.add_instance("u1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    nl.add_instance("u2", Inverter(TECH_90NM), {"A": "y", "Y": "z"},
                    vdd="VDD", gnd="GND")
    stats = nl.stats()
    assert stats["Inverter"] == 2
    assert stats["#instances"] == 2


def test_negative_extra_cap_rejected(nl):
    with pytest.raises(NetlistError):
        nl.add_net("bad", extra_cap=-1 * FF)
