"""Simulation-kernel tests: propagation, inertia, sampling, supply
awareness."""

import pytest

from repro.cells.base import UNKNOWN
from repro.cells.combinational import Inverter, Nand2
from repro.cells.library import default_library
from repro.devices.technology import TECH_90NM
from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.stimulus import schedule_clock, schedule_pulse
from repro.sim.waveform import StepWaveform
from repro.units import NS, PS


def inv_chain(n, *, vdd="VDD"):
    """n-inverter chain netlist; input 'a', output 'n{n-1}'."""
    nl = Netlist("chain")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    if vdd != "VDD":
        nl.add_supply(vdd, 1.0)
    nl.add_net("a")
    nl.mark_external_input("a")
    prev = "a"
    for i in range(n):
        nl.add_net(f"n{i}")
        nl.add_instance(f"inv{i}", Inverter(TECH_90NM),
                        {"A": prev, "Y": f"n{i}"}, vdd=vdd, gnd="GND")
        prev = f"n{i}"
    return nl


def test_propagation_through_chain():
    nl = inv_chain(4)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    assert nl.nets["n3"].value == 0  # even number of inversions
    eng.schedule_stimulus("a", 1, 1 * NS)
    eng.run(5 * NS)
    assert nl.nets["n3"].value == 1
    edge = eng.trace.edges("n3", rising=True)[0]
    assert edge > 1 * NS  # took real gate delays


def test_chain_delay_matches_cell_model():
    nl = inv_chain(1)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    eng.schedule_stimulus("a", 1, 1 * NS)
    eng.run(3 * NS)
    t_out = eng.trace.transitions("n0")[-1][0]
    inv = Inverter(TECH_90NM)
    expected = inv.propagation_delay("A", "Y", 1.0, 0.0)
    assert t_out - 1 * NS == pytest.approx(expected, rel=1e-9)


def test_settle_resolves_unknowns():
    nl = inv_chain(3)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 1)
    passes = eng.settle()
    assert passes >= 2
    assert nl.nets["n0"].value == 0
    assert nl.nets["n1"].value == 1
    assert nl.nets["n2"].value == 0


def test_inertial_glitch_swallowed():
    """A pulse shorter than the gate delay must not reach the output."""
    nl = inv_chain(1)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    inv_delay = Inverter(TECH_90NM).propagation_delay("A", "Y", 1.0, 0.0)
    schedule_pulse(eng, "a", t_rise=1 * NS, width=inv_delay / 4)
    eng.run(5 * NS)
    # Output settled back without ever committing the glitch value.
    transitions = [
        (t, v) for t, v in eng.trace.transitions("n0") if t > 0.0
    ]
    assert transitions == []


def test_wide_pulse_propagates():
    nl = inv_chain(1)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    schedule_pulse(eng, "a", t_rise=1 * NS, width=1 * NS)
    eng.run(5 * NS)
    values = [v for _, v in eng.trace.transitions("n0") if _ > 0]
    assert values == [0, 1]  # fell then recovered


def test_supply_waveform_modulates_delay():
    nl = inv_chain(1, vdd="VDDN")
    nl.set_supply_waveform("VDDN", StepWaveform(1.0, 0.85, 3 * NS))
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    eng.schedule_stimulus("a", 1, 1 * NS)
    eng.schedule_stimulus("a", 0, 2 * NS)
    eng.schedule_stimulus("a", 1, 4 * NS)
    eng.run(6 * NS)
    edges = eng.trace.transitions("n0")
    d_nom = edges[1][0] - 1 * NS if edges[0][0] == 0.0 else None
    falls = [t for t, v in edges if v == 0 and t > 0]
    rises_late = [t for t, v in edges if v == 0 and t > 4 * NS]
    d1 = falls[0] - 1 * NS
    d2 = falls[1] - 4 * NS
    assert d2 > d1  # drooped supply -> slower gate


def test_ff_samples_on_rising_edge_only(lib):
    nl = Netlist()
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    for net in ("d", "cp", "q"):
        nl.add_net(net)
    nl.mark_external_input("d")
    nl.mark_external_input("cp")
    ff = lib.make("DFF")
    nl.add_instance("ff", ff, {"D": "d", "CP": "cp", "Q": "q"},
                    vdd="VDD", gnd="GND")
    eng = SimulationEngine(nl)
    eng.set_initial("d", 0)
    eng.set_initial("cp", 0)
    eng.set_initial("q", 0)
    eng.schedule_stimulus("d", 1, 1 * NS)
    schedule_clock(eng, "cp", 2 * NS, start=2 * NS, n_cycles=2)
    eng.run(10 * NS)
    assert len(eng.trace.samples) == 2  # one per rising edge
    assert eng.trace.value_at("q", 9 * NS) == 1


def test_ff_miss_keeps_old_value(lib, design):
    nl = Netlist()
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    for net in ("d", "cp", "q"):
        nl.add_net(net)
    nl.mark_external_input("d")
    nl.mark_external_input("cp")
    ff = lib.make("DFF")
    nl.add_instance("ff", ff, {"D": "d", "CP": "cp", "Q": "q"},
                    vdd="VDD", gnd="GND")
    eng = SimulationEngine(nl)
    eng.set_initial("d", 0)
    eng.set_initial("cp", 0)
    eng.set_initial("q", 0)
    # Data arrives 1 ps before the clock edge: deep inside setup window.
    eng.schedule_stimulus("d", 1, 2 * NS - 1 * PS)
    eng.schedule_stimulus("cp", 1, 2 * NS)
    eng.run(5 * NS)
    rec = eng.trace.samples[0]
    assert rec.value == 0
    assert "miss" in rec.outcome


def test_hold_violation_corrupts_sample(lib):
    nl = Netlist()
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    for net in ("d", "cp", "q"):
        nl.add_net(net)
    nl.mark_external_input("d")
    nl.mark_external_input("cp")
    ff = lib.make("DFF")
    nl.add_instance("ff", ff, {"D": "d", "CP": "cp", "Q": "q"},
                    vdd="VDD", gnd="GND")
    eng = SimulationEngine(nl)
    eng.set_initial("d", 1)
    eng.set_initial("cp", 0)
    eng.set_initial("q", 0)
    eng.schedule_stimulus("cp", 1, 2 * NS)
    # D flips just after the edge, inside the hold window.
    eng.schedule_stimulus("d", 0, 2 * NS + ff.hold_time / 4)
    eng.run(5 * NS)
    outcomes = [s.outcome for s in eng.trace.samples]
    assert "hold_corrupted" in outcomes
    assert eng.trace.value_at("q", 4.5 * NS) is UNKNOWN


def test_runaway_oscillation_guard():
    nl = Netlist("osc")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("x")
    nl.add_instance("u1", Inverter(TECH_90NM), {"A": "x", "Y": "x"},
                    vdd="VDD", gnd="GND")
    eng = SimulationEngine(nl, max_events=500)
    eng.schedule_stimulus("x", 1, 1 * PS)
    with pytest.raises(SimulationError):
        eng.run(1)


def test_stimulus_unknown_net_raises():
    nl = inv_chain(1)
    eng = SimulationEngine(nl)
    with pytest.raises(SimulationError):
        eng.schedule_stimulus("zz", 1, 1 * NS)


def test_run_stops_at_until():
    nl = inv_chain(1)
    eng = SimulationEngine(nl)
    eng.set_initial("a", 0)
    eng.settle()
    eng.schedule_stimulus("a", 1, 1 * NS)
    eng.schedule_stimulus("a", 0, 8 * NS)
    eng.run(2 * NS)
    assert eng.now <= 2 * NS
    assert nl.nets["a"].value == 1  # the 8 ns event is still pending
    eng.run(10 * NS)
    assert nl.nets["a"].value == 0


def test_x_clears_after_driven(lib):
    nl = Netlist()
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    for n in ("a", "b", "y"):
        nl.add_net(n)
    nl.mark_external_input("a")
    nl.mark_external_input("b")
    nl.add_instance("g", Nand2(TECH_90NM),
                    {"A": "a", "B": "b", "Y": "y"},
                    vdd="VDD", gnd="GND")
    eng = SimulationEngine(nl)
    # b unknown: NAND with a=0 is still 1.
    eng.set_initial("a", 0)
    eng.settle()
    assert nl.nets["y"].value == 1
