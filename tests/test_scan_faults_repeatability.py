"""Tests: gate-level scan register, fault screening, S-curves."""

import pytest

from repro.analysis.repeatability import (
    extract_ladder_via_s_curves,
    measure_s_curve,
    word_histogram,
)
from repro.core.faults import FaultInjector, FaultType, coverage_study
from repro.core.scan_register import ScanRegisterHarness, build_scan_register
from repro.errors import ConfigurationError


# -- scan register ------------------------------------------------------------

def test_scan_capture_and_shift_roundtrip(design):
    h = ScanRegisterHarness(design, 7)
    bits = [1, 1, 1, 1, 1, 0, 0]
    assert h.capture_and_shift(bits) == list(reversed(bits))


def test_scan_multi_word(design):
    h = ScanRegisterHarness(design, 14)
    bits = [1, 0, 1, 1, 0, 0, 1] * 2
    assert h.capture_and_shift(bits) == list(reversed(bits))


def test_scan_stream_matches_analytic_convention(design):
    """The gate-level stream equals PSNScanChain.scan_out's model for
    one word: MSB (last capture bit) first."""
    from repro.analysis.thermometer import ThermometerWord

    word = ThermometerWord.from_string("0011111")
    h = ScanRegisterHarness(design, 7)
    stream = h.capture_and_shift(list(word.bits))
    assert "".join(str(b) for b in stream) == word.to_string()


def test_scan_si_fills_behind(design):
    """While shifting, SI streams into stage 0; a second readout of the
    register would show the fill value."""
    h = ScanRegisterHarness(design, 4)
    out = h.capture_and_shift([1, 1, 1, 1], scan_in_value=0)
    assert out == [1, 1, 1, 1]


def test_scan_width_validated(design):
    h = ScanRegisterHarness(design, 4)
    with pytest.raises(ConfigurationError):
        h.capture_and_shift([1, 0])
    with pytest.raises(ConfigurationError):
        build_scan_register(design, 0)


# -- fault screening -------------------------------------------------------------

def test_healthy_array_screens_clean(design):
    injector = FaultInjector(design)
    report = injector.screen(vdd_n=0.95, reference_level=0.95)
    assert not report.detected
    assert report.prepare_word == "0000000"


def test_stuck_pass_caught_by_prepare_check(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_PASS, 6)
    report = injector.screen(vdd_n=0.95)
    assert report.prepare_check_failed
    assert 6 in report.suspect_bits


def test_stuck_fail_caught_by_bubble_check(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_FAIL, 1)
    report = injector.screen(vdd_n=0.95)  # bit 1 should pass at 0.95
    assert report.bubble_check_failed
    assert 1 in report.suspect_bits


def test_dead_inverter_caught(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.DS_STUCK_PREPARE, 2)
    report = injector.screen(vdd_n=0.95)
    assert report.detected


def test_top_bit_stuck_fail_needs_reference_check(design):
    """The in-field checks miss a top stage stuck at fail (it reads as
    a valid, lower word); the tester's expected-word check catches it."""
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_FAIL, 7)
    high = design.bit_threshold(7, 3) + 0.05
    in_field = injector.screen(vdd_n=high)
    assert not in_field.detected  # the blind spot
    tester = injector.screen(vdd_n=high, reference_level=high)
    assert tester.reference_check_failed
    assert 7 in tester.suspect_bits


def test_full_coverage_with_two_level_protocol(design):
    cov = coverage_study(design)
    assert cov["overall"] == 1.0
    for fault in FaultType:
        assert cov[fault.value] == 1.0


def test_clear_removes_fault(design):
    injector = FaultInjector(design)
    injector.inject(FaultType.OUT_STUCK_PASS, 3)
    injector.clear()
    assert not injector.screen(vdd_n=0.95).detected


def test_inject_validates_bit(design):
    injector = FaultInjector(design)
    with pytest.raises(ConfigurationError):
        injector.inject(FaultType.OUT_STUCK_PASS, 0)


# -- repeatability ------------------------------------------------------------------

def test_histogram_no_noise_single_word(design):
    h = word_histogram(design, level=0.975, noise_rms=0.0,
                       n_measures=50)
    assert len(h) == 1
    assert h.popitem()[1] == 50


def test_histogram_noise_spreads_words(design):
    h = word_histogram(design, level=0.992, noise_rms=0.01,
                       n_measures=300)
    assert len(h) >= 2
    assert sum(h.values()) == 300


def test_histogram_deterministic(design):
    a = word_histogram(design, level=0.95, noise_rms=0.005, seed=3)
    b = word_histogram(design, level=0.95, noise_rms=0.005, seed=3)
    assert a == b


def test_s_curve_monotone_and_crossing(design):
    sc = measure_s_curve(design, 4, noise_rms=0.006, n_per_level=100)
    p = list(sc.pass_probability)
    assert p[0] < 0.1 and p[-1] > 0.9
    # Noisy but broadly increasing.
    assert sum(1 for a, b in zip(p, p[1:]) if b >= a) >= len(p) // 2


def test_s_curve_fit_recovers_threshold_and_sigma(design):
    sc = measure_s_curve(design, 4, noise_rms=0.006, n_per_level=250,
                         seed=21)
    fit = sc.fit()
    assert fit.threshold == pytest.approx(design.bit_threshold(4, 3),
                                          abs=1.5e-3)
    assert fit.noise_sigma == pytest.approx(0.006, rel=0.25)


def test_ladder_extraction_all_bits(design):
    ladder = extract_ladder_via_s_curves(design, n_per_level=100,
                                         noise_rms=0.005)
    assert len(ladder) == design.n_bits
    for fit in ladder:
        true = design.bit_threshold(fit.bit, 3)
        assert fit.threshold == pytest.approx(true, abs=2e-3)


def test_s_curve_validation(design):
    with pytest.raises(ConfigurationError):
        measure_s_curve(design, 0, noise_rms=0.005)
    with pytest.raises(ConfigurationError):
        measure_s_curve(design, 1, noise_rms=0.0)
    with pytest.raises(ConfigurationError):
        word_histogram(design, level=1.0, noise_rms=-0.1)
