"""Pulse-generator tests: table realization, matching, corners."""

import pytest

from repro.core.pulsegen import (
    PulseGenerator,
    PulseGeneratorHarness,
    build_pg_netlist,
)
from repro.devices.corners import corner_by_name
from repro.errors import ConfigurationError
from repro.units import PS


PAPER_TABLE_PS = (26, 40, 50, 65, 77, 92, 100, 107)


def test_behavioral_table_matches_paper(design):
    pg = PulseGenerator(design)
    for code, ps in enumerate(PAPER_TABLE_PS):
        assert pg.skew(code) == pytest.approx(ps * PS, abs=0.01 * PS)


def test_behavioral_table_monotone(design):
    pg = PulseGenerator(design)
    t = pg.delay_table()
    assert all(b > a for a, b in zip(t, t[1:]))


def test_skew_code_range_validated(design):
    pg = PulseGenerator(design)
    with pytest.raises(ConfigurationError):
        pg.skew(8)
    with pytest.raises(ConfigurationError):
        pg.skew(-1)


def test_pg_supply_noise_perturbs_skew(design):
    """A droop on the PG's own rail stretches the skew — second-order
    effect the characterization can quantify."""
    pg = PulseGenerator(design)
    assert pg.skew(3, supply_v=0.9) > pg.skew(3)


def test_code_for_skew_roundtrip(design):
    pg = PulseGenerator(design)
    for code in range(8):
        assert pg.code_for_skew(pg.skew(code)) == code


def test_code_for_skew_nearest(design):
    pg = PulseGenerator(design)
    assert pg.code_for_skew(58 * PS) in (2, 3)  # between 50 and 65


def test_corner_scales_whole_table(design):
    ss = corner_by_name("SS").apply(design.tech)
    pg_tt = PulseGenerator(design)
    pg_ss = PulseGenerator(design, ss)
    ratios = [pg_ss.skew(c) / pg_tt.skew(c) for c in range(8)]
    assert all(r > 1.05 for r in ratios)
    # Uniform scaling: all ratios equal (fixed caps, common devices).
    assert max(ratios) - min(ratios) < 1e-9


# -- structural ---------------------------------------------------------------

@pytest.fixture(scope="module")
def pg_harness(design):
    return PulseGeneratorHarness(design)


def test_structural_table_matches_paper(design, pg_harness):
    table = pg_harness.measure_table()
    for code, ps in enumerate(PAPER_TABLE_PS):
        assert table[code] == pytest.approx(ps * PS, abs=0.5 * PS), \
            f"code {code}"


def test_structural_mux_insertion_cancels(design, pg_harness):
    """The P and CP trees are matched: realized skew equals the tap
    delay alone, independent of the 3 mux levels both share."""
    pg = PulseGenerator(design)
    skew = pg_harness.measure_skew(5)
    assert skew == pytest.approx(pg.skew(5), abs=0.5 * PS)


def test_structural_code_validated(design, pg_harness):
    with pytest.raises(ConfigurationError):
        pg_harness.measure_skew(9)


def test_build_into_existing_netlist(design):
    from repro.sim.netlist import Netlist

    nl = Netlist("host")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl2, ports = build_pg_netlist(design, netlist=nl, prefix="x")
    assert nl2 is nl
    assert ports.p_out in nl.nets
    assert ports.cp_out in nl.nets


def test_output_load_balancing(design):
    _, ports_a = build_pg_netlist(design, prefix="a",
                                  p_out_load=10e-15, cp_out_load=2e-15)
    # The lighter output net gets the balance capacitor.
    nl, ports = build_pg_netlist(design, prefix="b",
                                 p_out_load=10e-15, cp_out_load=2e-15)
    assert nl.nets[ports.cp_out].extra_cap == pytest.approx(8e-15)
    assert nl.nets[ports.p_out].extra_cap == pytest.approx(0.0)
