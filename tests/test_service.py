"""Unit tests for the service-layer primitives.

AdmissionQueue (the three overflow policies and their counters),
TokenBucket (deterministic via an injected clock), CircuitBreaker
(the three-state machine, single-probe atomicity), and the JSONL
protocol codec.  Hypothesis drives the breaker through arbitrary
success/failure schedules to pin the invariants no example test
enumerates.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    ProtocolError,
)
from repro.service import (
    AdmissionQueue,
    BreakerState,
    CircuitBreaker,
    TokenBucket,
    encode_request,
    make_response,
    parse_request,
    parse_response,
)
from repro.service.protocol import encode_response


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- AdmissionQueue ------------------------------------------------------------


def test_queue_rejects_bad_depth():
    with pytest.raises(ConfigurationError):
        AdmissionQueue(0)


def test_queue_rejects_unknown_policy():
    with pytest.raises(ConfigurationError):
        AdmissionQueue(4, policy="newest-wins")


def test_queue_error_policy_raises_when_full():
    async def run():
        q = AdmissionQueue(2, policy="error")
        await q.put("a")
        await q.put("b")
        with pytest.raises(AdmissionRejectedError):
            await q.put("c")
        assert q.counters()["dropped"] == 1
        assert await q.get() == "a"

    asyncio.run(run())


def test_queue_drop_oldest_returns_the_evicted_job():
    async def run():
        q = AdmissionQueue(2, policy="drop_oldest")
        assert await q.put("a") is None
        assert await q.put("b") is None
        evicted = await q.put("c")
        assert evicted == "a"
        assert [await q.get(), await q.get()] == ["b", "c"]
        c = q.counters()
        assert c["dropped"] == 1 and c["pushed"] == 3
        assert c["high_watermark"] == 2

    asyncio.run(run())


def test_queue_block_policy_backpressures_until_drained():
    async def run():
        q = AdmissionQueue(1, policy="block")
        await q.put("a")
        producer = asyncio.ensure_future(q.put("b"))
        await asyncio.sleep(0)
        assert not producer.done()  # held back: queue is full
        assert await q.get() == "a"
        await asyncio.wait_for(producer, 1.0)
        assert await q.get() == "b"
        assert q.counters()["deferred"] >= 1

    asyncio.run(run())


def test_queue_drain_nowait_stops_at_first_refusal():
    async def run():
        q = AdmissionQueue(8)
        for item in ("m1", "m2", "x", "m3"):
            await q.put(item)
        head = await q.get()
        assert head == "m1"
        more = q.drain_nowait(5, want=lambda s: s.startswith("m"))
        assert more == ["m2"]  # stops at "x"; never reorders FIFO
        assert await q.get() == "x"

    asyncio.run(run())


# -- TokenBucket ---------------------------------------------------------------


def test_bucket_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        TokenBucket(0.0, 1.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(1.0, 0.0)


def test_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_take() for _ in range(4)] == \
        [True, True, True, False]
    clock.advance(0.5)  # +1 token
    assert bucket.try_take()
    assert not bucket.try_take()
    assert bucket.granted == 4 and bucket.refused == 2


def test_bucket_never_banks_beyond_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
    clock.advance(60.0)
    assert bucket.tokens == pytest.approx(2.0)


# -- CircuitBreaker ------------------------------------------------------------


def test_breaker_validates_config():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(3, cooldown_s=0.0)


def test_breaker_trips_on_consecutive_failures_only():
    clock = FakeClock()
    b = CircuitBreaker(3, cooldown_s=1.0, clock=clock)
    b.record_failure()
    b.record_failure()
    b.record_success()  # resets the streak
    b.record_failure()
    b.record_failure()
    assert b.state is BreakerState.CLOSED
    b.record_failure()
    assert b.state is BreakerState.OPEN
    assert not b.allow()
    assert b.opens == 1


def test_breaker_half_open_probe_lifecycle():
    clock = FakeClock()
    b = CircuitBreaker(1, cooldown_s=1.0, clock=clock)
    b.record_failure()
    assert b.state is BreakerState.OPEN
    clock.advance(1.0)
    assert b.state is BreakerState.HALF_OPEN
    # Exactly one probe wins the admission race.
    assert b.allow()
    assert not b.allow()
    assert b.probes == 1
    b.record_success()
    assert b.state is BreakerState.CLOSED
    assert b.allow()
    assert b.closes == 1


def test_breaker_failed_probe_restarts_full_cooldown():
    clock = FakeClock()
    b = CircuitBreaker(1, cooldown_s=2.0, clock=clock)
    b.record_failure()
    clock.advance(2.0)
    assert b.allow()  # the probe
    b.record_failure()
    assert b.state is BreakerState.OPEN
    clock.advance(1.0)  # not yet a full cooldown
    assert b.state is BreakerState.OPEN
    clock.advance(1.0)
    assert b.state is BreakerState.HALF_OPEN
    assert b.opens == 2


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(["ok", "fail", "tick", "probe"]),
                max_size=60),
       st.integers(min_value=1, max_value=5))
def test_breaker_invariants_under_arbitrary_schedules(events, threshold):
    """Whatever the schedule: never more than one probe in flight,
    CLOSED requires fewer than `threshold` consecutive failures, and
    allow() in CLOSED is always True."""
    clock = FakeClock()
    b = CircuitBreaker(threshold, cooldown_s=1.0, clock=clock)
    streak = 0
    inflight_probes = 0
    for event in events:
        if event == "ok":
            b.record_success()
            streak = 0
            inflight_probes = 0
        elif event == "fail":
            b.record_failure()
            streak = streak + 1
            inflight_probes = 0
        elif event == "tick":
            clock.advance(0.6)
        else:  # probe attempt
            state = b.state
            got = b.allow()
            if state is BreakerState.CLOSED:
                assert got
            elif state is BreakerState.OPEN:
                assert not got
            else:  # HALF_OPEN: at most one winner until resolved
                if got:
                    inflight_probes += 1
                assert inflight_probes <= 1
        if b.state is BreakerState.CLOSED and event == "fail":
            assert streak < threshold or b.opens > 0


# -- protocol codec ------------------------------------------------------------


def test_request_roundtrip():
    line = encode_request("r1", "measure", tenant="acme",
                          params={"level": 1.05, "code": 3},
                          deadline_s=0.5)
    req = parse_request(line)
    assert req.id == "r1" and req.kind == "measure"
    assert req.tenant == "acme"
    assert req.params == {"level": 1.05, "code": 3}
    assert req.deadline_s == 0.5


@pytest.mark.parametrize("line", [
    "not json",
    json.dumps(["a", "list"]),
    json.dumps({"kind": "measure"}),              # no id
    json.dumps({"id": "x", "kind": "nope"}),      # unknown kind
    json.dumps({"id": "x", "kind": "ping", "params": 7}),
    json.dumps({"id": "x", "kind": "ping", "deadline_s": 0}),
])
def test_parse_request_rejects_malformed(line):
    with pytest.raises(ProtocolError):
        parse_request(line)


def test_response_roundtrip_with_error():
    obj = make_response("r9", status="rejected", quality="rejected",
                        error=AdmissionRejectedError("queue full"),
                        shard=2, attempts=1, queued_ms=1.25,
                        service_ms=0.5)
    parsed = parse_response(encode_response(obj))
    assert parsed["status"] == "rejected"
    assert parsed["error"]["type"] == "AdmissionRejectedError"
    assert parsed["shard"] == 2
    assert parsed["timing"]["queued_ms"] == 1.25


def test_non_finite_floats_become_null():
    obj = make_response("r1", status="ok", quality="full",
                        result={"thresholds": [1.0, float("nan"),
                                               float("inf")]})
    parsed = parse_response(encode_response(obj))
    assert parsed["result"]["thresholds"] == [1.0, None, None]
