"""Unit-helper tests."""

import pytest

from repro import units


def test_time_constants_ratio():
    assert units.NS / units.PS == pytest.approx(1000.0)
    assert units.US / units.NS == pytest.approx(1000.0)
    assert units.MS / units.US == pytest.approx(1000.0)


def test_cap_constants_ratio():
    assert units.PF / units.FF == pytest.approx(1000.0)
    assert units.NF / units.PF == pytest.approx(1000.0)


def test_to_ps_roundtrip():
    assert units.to_ps(65 * units.PS) == pytest.approx(65.0)


def test_to_ns_roundtrip():
    assert units.to_ns(1.22 * units.NS) == pytest.approx(1.22)


def test_to_ff_roundtrip():
    assert units.to_ff(3.5 * units.FF) == pytest.approx(3.5)


def test_to_pf_roundtrip():
    assert units.to_pf(2 * units.PF) == pytest.approx(2.0)


def test_to_mv_roundtrip():
    assert units.to_mv(0.936) == pytest.approx(936.0)


def test_fmt_time_picoseconds():
    assert units.fmt_time(65e-12) == "65.000 ps"


def test_fmt_time_nanoseconds():
    assert units.fmt_time(1.22e-9) == "1.220 ns"


def test_fmt_time_microseconds():
    assert units.fmt_time(3.5e-6) == "3.500 us"


def test_fmt_time_zero():
    assert units.fmt_time(0.0) == "0 s"


def test_fmt_time_femtoseconds():
    assert "fs" in units.fmt_time(500e-15) or "ps" in units.fmt_time(500e-15)


def test_fmt_cap_picofarads():
    assert units.fmt_cap(2e-12) == "2.000 pF"


def test_fmt_cap_femtofarads():
    assert units.fmt_cap(3.5e-15) == "3.500 fF"


def test_fmt_cap_nanofarads():
    assert units.fmt_cap(40e-9) == "40.000 nF"


def test_fmt_volt_paper_style():
    assert units.fmt_volt(0.936) == "0.9360 V"
