"""Precision policy and backend selection: the float32 contract.

The float32 fast path is *opt-in with a documented bound*: solved
thresholds within :data:`FLOAT32_THRESHOLD_BOUND_V` of the float64
oracle, decoded words bit-identical wherever the supply clears every
threshold by more than the bound.  Hypothesis drives both claims
across design variants, process corners and masked-bit arrays.  The
backend half pins the ``$REPRO_KERNEL_BACKEND`` selection rules and —
critically — that dtype and backend are folded into cache
fingerprints, so artifacts from different numeric stacks can never
collide.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

import repro.kernels.backend as backend_mod
from repro.devices.corners import CORNERS, corner_by_name
from repro.errors import ConfigurationError
from repro.kernels import (
    FLOAT32_THRESHOLD_BOUND_V,
    KERNEL_BACKEND_ENV,
    KERNEL_DTYPE_ENV,
    active_backend,
    backend_token,
    dtype_token,
    numba_version,
    requested_backend,
    resolve_dtype,
    threshold_grid,
    word_grid,
)
from repro.runtime.cache import design_fingerprint, task_key


class TestResolveDtype:
    def test_default_is_float64(self, monkeypatch):
        monkeypatch.delenv(KERNEL_DTYPE_ENV, raising=False)
        assert resolve_dtype() == np.float64

    def test_explicit_argument_forms(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float32) == np.float32
        assert resolve_dtype(np.dtype("float64")) == np.float64

    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_DTYPE_ENV, "float32")
        assert resolve_dtype() == np.float32

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_DTYPE_ENV, "float32")
        assert resolve_dtype("float64") == np.float64

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_DTYPE_ENV, "float16")
        with pytest.raises(ConfigurationError):
            resolve_dtype()

    @pytest.mark.parametrize("bad", ["int32", np.int64, "garbage",
                                     complex])
    def test_non_kernel_dtypes_raise(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_dtype(bad)

    def test_dtype_token(self, monkeypatch):
        monkeypatch.delenv(KERNEL_DTYPE_ENV, raising=False)
        assert dtype_token() == "dtype/float64"
        assert dtype_token("float32") == "dtype/float32"


class TestFloat32Bound:
    """|T*_f32 - T*_f64| <= FLOAT32_THRESHOLD_BOUND_V, everywhere."""

    def _max_err(self, design, code, tech=None, bits=None):
        t64 = threshold_grid(design, (code,), tech, bits=bits)
        t32 = threshold_grid(design, (code,), tech, bits=bits,
                             dtype=np.float32)
        return float(np.max(np.abs(t32.astype(np.float64) - t64)))

    def test_paper_design_all_codes(self, design):
        for code in range(8):
            assert self._max_err(design, code) \
                < FLOAT32_THRESHOLD_BOUND_V

    @pytest.mark.parametrize("name", sorted(CORNERS))
    def test_all_corners(self, design, name):
        tech = corner_by_name(name).apply(design.tech)
        assert self._max_err(design, 3, tech=tech) \
            < FLOAT32_THRESHOLD_BOUND_V

    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(0.7, 1.4),
           code=st.integers(0, 7),
           corner=st.sampled_from(sorted(CORNERS)),
           seed=st.integers(0, 2**32 - 1))
    def test_property_variants_corners_masks(self, design, scale,
                                             code, corner, seed):
        variant = design.with_load_caps(
            tuple(c * scale for c in design.load_caps)
        )
        tech = corner_by_name(corner).apply(design.tech)
        rng = np.random.default_rng(seed)
        n_sel = int(rng.integers(1, design.n_bits + 1))
        bits = sorted(rng.choice(np.arange(1, design.n_bits + 1),
                                 size=n_sel, replace=False).tolist())
        try:
            err = self._max_err(variant, code, tech=tech, bits=bits)
        except ConfigurationError:
            # some (scale, corner, code) combinations have no root
            # below the bracket ceiling — physically unsolvable for
            # float64 too, so nothing to compare.
            assume(False)
        assert err < FLOAT32_THRESHOLD_BOUND_V

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_words_identical_outside_error_band(self, design, seed):
        """Decoded words agree bit-for-bit wherever float64 itself
        resolves the compare by more than the documented bound."""
        t64 = threshold_grid(design, (3,))[:, 0]
        t32 = threshold_grid(design, (3,), dtype=np.float32)[:, 0]
        rng = np.random.default_rng(seed)
        v = rng.uniform(t64.min() - 0.05, t64.max() + 0.05, size=500)
        margin = np.min(np.abs(v[:, None] - t64[None, :]), axis=1)
        clear = margin > FLOAT32_THRESHOLD_BOUND_V
        w64 = word_grid(v[clear], t64)
        w32 = word_grid(v[clear], t32.astype(np.float64))
        np.testing.assert_array_equal(w32, w64)


class TestBackendSelection:
    def test_requested_default_auto(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert requested_backend() == "auto"

    def test_requested_validation(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "cuda")
        with pytest.raises(ConfigurationError):
            requested_backend()

    def test_forced_numpy(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert active_backend() == "numpy"
        assert backend_token() == "backend/numpy"

    def test_numba_request_without_numba_raises(self, monkeypatch):
        if numba_version() is not None:
            pytest.skip("numba importable here; raise path untestable")
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        with pytest.raises(ConfigurationError):
            active_backend()

    def test_simulated_numba_resolves_auto(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        monkeypatch.setattr(backend_mod, "_numba_version_cache",
                            "0.59.0")
        monkeypatch.setattr(backend_mod, "_disabled", False)
        assert active_backend() == "numba"
        assert backend_token() == "backend/numba-0.59.0"

    def test_simulated_numba_still_forceable_to_numpy(self,
                                                      monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        monkeypatch.setattr(backend_mod, "_numba_version_cache",
                            "0.59.0")
        assert active_backend() == "numpy"

    def test_disabled_compile_falls_back(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        monkeypatch.setattr(backend_mod, "_numba_version_cache",
                            "0.59.0")
        monkeypatch.setattr(backend_mod, "_disabled", True)
        assert active_backend() == "numpy"


class TestFingerprintIsolation:
    """Numeric-stack state must be visible in every cache identity."""

    def test_dtype_env_changes_fingerprint(self, design, monkeypatch):
        monkeypatch.delenv(KERNEL_DTYPE_ENV, raising=False)
        fp64 = design_fingerprint(design)
        monkeypatch.setenv(KERNEL_DTYPE_ENV, "float32")
        assert design_fingerprint(design) != fp64

    def test_backend_changes_fingerprint(self, design, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        monkeypatch.setattr(backend_mod, "_numba_version_cache", None)
        fp_numpy = design_fingerprint(design)
        monkeypatch.setattr(backend_mod, "_numba_version_cache",
                            "0.59.0")
        monkeypatch.setattr(backend_mod, "_disabled", False)
        assert design_fingerprint(design) != fp_numpy

    def test_task_keys_distinct_per_dtype(self, design, monkeypatch):
        monkeypatch.delenv(KERNEL_DTYPE_ENV, raising=False)
        k64 = task_key("yield", design_fingerprint(design), "die-0")
        monkeypatch.setenv(KERNEL_DTYPE_ENV, "float32")
        k32 = task_key("yield", design_fingerprint(design), "die-0")
        assert k64 != k32
