"""Example scripts must run clean — they are the living documentation."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
CAMPAIGN_SPECS = sorted((REPO / "examples" / "campaigns").glob("*.toml"))


def _env_with_repro():
    """The subprocess env, with ``src/`` importable.

    The examples import ``repro`` like any user script; when the test
    run itself resolves the package from the source tree (no installed
    dist), the child process must inherit that path explicitly.
    """
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        (src, existing)
    )
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=_env_with_repro(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "droop_capture", "psn_scan_chain",
            "process_trimming", "dvfs_guardband",
            "verification_monitor", "hotspot_migration",
            "tester_characterization"} <= names


@pytest.mark.parametrize("spec_path", CAMPAIGN_SPECS,
                         ids=lambda p: p.stem)
def test_example_campaign_spec_validates(spec_path):
    """Every committed example spec must parse as campaign/v1."""
    from repro.campaign import CAMPAIGN_SCHEMA, load_spec

    spec = load_spec(spec_path)
    assert spec.stages, "spec declares no stages"
    assert len(spec.topo_order()) == len(spec.stages)
    assert spec.spec_hash()  # hashable identity (chaos excluded)
    assert CAMPAIGN_SCHEMA == "campaign/v1"


def test_expected_example_campaigns_present():
    names = {p.stem for p in CAMPAIGN_SPECS}
    assert {"corner_lot_characterization",
            "chaos_service_drill"} <= names


def test_corner_lot_campaign_runs_clean(tmp_path):
    """The corner-lot example passes end to end (kernel backend)."""
    from repro.campaign import load_spec, run_campaign

    spec = load_spec(REPO / "examples" / "campaigns"
                     / "corner_lot_characterization.toml")
    run = run_campaign(spec, out_dir=tmp_path / "out")
    assert run.ok, run.manifest["outcome"]
    assert [r.status for r in run.records] == ["ok"] * len(run.records)
