"""Example scripts must run clean — they are the living documentation."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def _env_with_repro():
    """The subprocess env, with ``src/`` importable.

    The examples import ``repro`` like any user script; when the test
    run itself resolves the package from the source tree (no installed
    dist), the child process must inherit that path explicitly.
    """
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        (src, existing)
    )
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=_env_with_repro(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "droop_capture", "psn_scan_chain",
            "process_trimming", "dvfs_guardband",
            "verification_monitor", "hotspot_migration",
            "tester_characterization"} <= names
