"""Example scripts must run clean — they are the living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples must not depend on the repo cwd
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "droop_capture", "psn_scan_chain",
            "process_trimming", "dvfs_guardband",
            "verification_monitor", "hotspot_migration",
            "tester_characterization"} <= names
