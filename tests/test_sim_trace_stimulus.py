"""Trace queries and stimulus helpers."""

import pytest

from repro.cells.base import UNKNOWN
from repro.errors import ConfigurationError, SimulationError
from repro.sim.stimulus import clock_edges
from repro.sim.trace import SampleRecord, Trace


@pytest.fixture()
def trace():
    t = Trace()
    t.record("a", 0.0, 0)
    t.record("a", 1.0, 1)
    t.record("a", 2.0, 0)
    t.record("b", 0.5, 1)
    return t


def test_value_at_between_transitions(trace):
    assert trace.value_at("a", 0.5) == 0
    assert trace.value_at("a", 1.5) == 1
    assert trace.value_at("a", 2.5) == 0


def test_value_at_exact_transition_time(trace):
    assert trace.value_at("a", 1.0) == 1


def test_value_before_first_record(trace):
    assert trace.value_at("b", 0.0) is UNKNOWN
    assert trace.value_at("missing", 1.0) is UNKNOWN


def test_edges_rising_falling(trace):
    assert trace.edges("a", rising=True) == [1.0]
    assert trace.edges("a", rising=False) == [2.0]
    assert trace.edges("a") == [1.0, 2.0]


def test_nets_listing(trace):
    assert trace.nets() == ["a", "b"]


def test_last_transition_at_or_before(trace):
    assert trace.last_transition_at_or_before("a", 1.5) == (1.0, 1)
    assert trace.last_transition_at_or_before("a", -1.0) is None


def test_nonmonotonic_record_rejected(trace):
    with pytest.raises(SimulationError):
        trace.record("a", 0.5, 1)


def test_sample_records(trace):
    rec = SampleRecord(time=1.0, instance="ff1", outcome="clean_capture",
                       value=1, clk_to_q=5e-11, setup_margin=1e-11)
    trace.record_sample(rec)
    assert trace.samples_for("ff1") == [rec]
    assert trace.samples_for("ff2") == []


def test_format_table_contains_all_events(trace):
    table = trace.format_table(["a", "b"])
    lines = table.splitlines()
    assert len(lines) == 2 + 4  # header + rule + 4 event times
    assert "a" in lines[0] and "b" in lines[0]


def test_format_table_unknown_rendered_as_x(trace):
    table = trace.format_table(["b"])
    assert "X" not in table.splitlines()[2]  # b known at its first event
    t2 = Trace()
    t2.record("c", 1.0, None)
    assert "X" in t2.format_table(["c"])


# -- stimulus helpers -------------------------------------------------------

def test_clock_edges_count_and_polarity():
    edges = clock_edges(2.0, start=1.0, n_cycles=3)
    assert len(edges) == 6
    assert edges[0] == (1.0, 1)
    assert edges[1] == (2.0, 0)
    assert edges[2] == (3.0, 1)


def test_clock_edges_duty():
    edges = clock_edges(10.0, n_cycles=1, duty=0.3)
    assert edges[1][0] == pytest.approx(3.0)


def test_clock_edges_validation():
    with pytest.raises(ConfigurationError):
        clock_edges(0.0)
    with pytest.raises(ConfigurationError):
        clock_edges(1.0, duty=1.5)
    with pytest.raises(ConfigurationError):
        clock_edges(1.0, n_cycles=-1)
