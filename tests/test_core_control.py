"""Control-FSM tests: Fig. 8 protocol conformance."""

import pytest

from repro.core.control import (
    ControlFSM,
    ControlState,
    build_control_netlist,
)
from repro.core.sensor import SenseRail
from repro.errors import ConfigurationError, ProtocolError
from repro.units import NS


def drain_states(fsm, n):
    return [fsm.tick().state for _ in range(n)]


def test_reset_state_is_idle():
    fsm = ControlFSM()
    assert fsm.state is ControlState.IDLE


def test_idle_until_enabled():
    fsm = ControlFSM()
    out = fsm.tick(enable=False)
    assert out.state is ControlState.IDLE
    out = fsm.tick(enable=True)
    assert out.state is ControlState.READY


def test_ready_holds_without_request():
    fsm = ControlFSM()
    fsm.tick()
    states = drain_states(fsm, 3)
    assert states == [ControlState.READY] * 3


def test_full_measurement_sequence():
    """IDLE->READY->S_PRP0->S_PRP->S_SNS0->S_SNS->READY (Fig. 8)."""
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(1)
    states = drain_states(fsm, 5)
    assert states == [
        ControlState.S_PRP0,
        ControlState.S_PRP,
        ControlState.S_SNS0,
        ControlState.S_SNS,
        ControlState.READY,
    ]


def test_iterated_measures_loop_back():
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(2)
    states = drain_states(fsm, 9)
    assert states[3] is ControlState.S_SNS
    assert states[4] is ControlState.S_PRP0  # loops for measure 2
    assert states[7] is ControlState.S_SNS
    assert states[8] is ControlState.READY


def test_cp_edge_pattern():
    """CP low in *_0 states (negative edges), high at sampling states."""
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(1)
    outs = [fsm.tick() for _ in range(4)]
    assert [o.cp for o in outs] == [0, 1, 0, 1]


def test_p_polarity_vdd_rail():
    fsm = ControlFSM(SenseRail.VDD)
    fsm.tick()
    fsm.request_measures(1)
    outs = [fsm.tick() for _ in range(4)]
    # P=1 through PREPARE, drops to 0 only in the sense phase.
    assert [o.p for o in outs] == [1, 1, 1, 0]


def test_p_polarity_gnd_rail_opposite():
    fsm = ControlFSM(SenseRail.GND)
    fsm.tick()
    fsm.request_measures(1)
    outs = [fsm.tick() for _ in range(4)]
    assert [o.p for o in outs] == [0, 0, 0, 1]


def test_sample_flags():
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(1)
    outs = [fsm.tick() for _ in range(4)]
    assert [o.prepare_sample for o in outs] == [False, True, False, False]
    assert [o.sense_sample for o in outs] == [False, False, False, True]


def test_request_mid_sequence_rejected():
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(1)
    fsm.tick()  # S_PRP0
    with pytest.raises(ProtocolError):
        fsm.request_measures(1)


def test_request_nonpositive_rejected():
    fsm = ControlFSM()
    with pytest.raises(ConfigurationError):
        fsm.request_measures(0)


def test_reset_drops_pending():
    fsm = ControlFSM()
    fsm.tick()
    fsm.request_measures(3)
    fsm.reset()
    assert fsm.pending_measures == 0
    assert fsm.state is ControlState.IDLE


def test_schedule_sense_count_and_spacing():
    fsm = ControlFSM()
    sched = fsm.run_schedule(3, clock_period=2 * NS, start_time=4 * NS)
    assert len(sched.sense_times) == 3
    assert len(sched.prepare_times) == 3
    diffs = [b - a for a, b in zip(sched.sense_times,
                                   sched.sense_times[1:])]
    assert all(d == pytest.approx(8 * NS) for d in diffs)  # 4 states


def test_schedule_prepare_precedes_sense():
    fsm = ControlFSM()
    sched = fsm.run_schedule(2, clock_period=2 * NS, start_time=4 * NS)
    for tp, ts in zip(sched.prepare_times, sched.sense_times):
        assert tp < ts


def test_schedule_p_events_match_rail():
    fsm = ControlFSM(SenseRail.VDD)
    sched = fsm.run_schedule(1, clock_period=2 * NS, start_time=4 * NS)
    # One P drop (sense) and one recovery-less end (single measure).
    values = [v for _, v in sched.p_events]
    assert values[0] == 0  # the sense drop


def test_schedule_validation():
    fsm = ControlFSM()
    with pytest.raises(ConfigurationError):
        fsm.run_schedule(0, clock_period=2 * NS, start_time=4 * NS)
    with pytest.raises(ConfigurationError):
        fsm.run_schedule(1, clock_period=0.0, start_time=4 * NS)


def test_state_encodings_unique():
    encs = [s.encoding for s in ControlState]
    assert len(set(encs)) == len(encs)


def test_control_netlist_builds_and_validates(design):
    nl, ports = build_control_netlist(design)
    nl.validate()
    assert len(ports.state_bits) == 3
    assert len(ports.counter_bits) == 8
    assert len(ports.encoder_inputs) == 7
    assert len(ports.oute_bits) == 3


def test_control_netlist_standard_cells_only(design):
    """The paper's claim: fully digital, standard-cell based."""
    nl, _ = build_control_netlist(design)
    kinds = {type(i.cell).__name__ for i in nl.iter_instances()}
    allowed = {"Inverter", "Buffer", "Nand2", "Nor2", "And2", "Or2",
               "Xor2", "Xnor2", "Aoi21", "Oai21", "Mux2", "DFlipFlop",
               "DelayElement"}
    assert kinds <= allowed
