"""Campaign spec layer: schema validation, hashing, loading."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CAMPAIGN_SCHEMA,
    load_spec,
    spec_from_mapping,
    validate_spec_mapping,
)
from repro.errors import CampaignSpecError


def minimal_raw(**overrides):
    raw = {
        "schema": CAMPAIGN_SCHEMA,
        "name": "t",
        "stages": [
            {"id": "a", "kind": "threshold_sweep",
             "params": {"bits": [1], "tol": 5e-3}},
        ],
    }
    raw.update(overrides)
    return raw


# ---------------------------------------------------------------- schema

def test_minimal_spec_validates():
    assert validate_spec_mapping(minimal_raw()) == ["a"]


@pytest.mark.parametrize("raw, needle", [
    ({**minimal_raw(), "schema": "campaign/v2"}, "schema"),
    ({**minimal_raw(), "bogus": 1}, "bogus"),
    ({**minimal_raw(), "name": ""}, "name"),
    ({**minimal_raw(), "seed": "x"}, "seed"),
    ({**minimal_raw(), "stages": []}, "stages"),
    ({**minimal_raw(), "design": {"corner": "XX"}}, "corner"),
    ({**minimal_raw(), "runtime": {"workers": True}}, "workers"),
    ({**minimal_raw(), "runtime": {"on_fail": "explode"}}, "on_fail"),
], ids=["bad-schema", "unknown-key", "empty-name", "string-seed",
        "no-stages", "bad-corner", "bool-workers", "bad-on-fail"])
def test_bad_top_level_rejected(raw, needle):
    with pytest.raises(CampaignSpecError) as err:
        validate_spec_mapping(raw)
    assert needle in str(err.value)


@pytest.mark.parametrize("stage, needle", [
    ({"id": "a", "kind": "not_a_kind"}, "kind"),
    ({"id": "a", "kind": "threshold_sweep", "needs": ["ghost"]},
     "ghost"),
    ({"id": "a", "kind": "threshold_sweep", "needs": ["a"]}, "itself"),
    ({"id": "", "kind": "threshold_sweep"}, "id"),
    ({"id": "a", "kind": "threshold_sweep", "wat": 1}, "wat"),
], ids=["unknown-kind", "undeclared-need", "self-need", "empty-id",
        "unknown-stage-key"])
def test_bad_stage_rejected(stage, needle):
    with pytest.raises(CampaignSpecError) as err:
        validate_spec_mapping(minimal_raw(stages=[stage]))
    assert needle in str(err.value)


def test_duplicate_stage_ids_rejected():
    stages = [{"id": "a", "kind": "threshold_sweep"},
              {"id": "a", "kind": "characterization"}]
    with pytest.raises(CampaignSpecError, match="duplicate"):
        validate_spec_mapping(minimal_raw(stages=stages))


def test_dependency_cycle_rejected():
    stages = [
        {"id": "a", "kind": "threshold_sweep", "needs": ["b"]},
        {"id": "b", "kind": "characterization", "needs": ["a"]},
    ]
    with pytest.raises(CampaignSpecError, match="cycle"):
        validate_spec_mapping(minimal_raw(stages=stages))


def test_topo_order_respects_needs_and_declaration():
    stages = [
        {"id": "late", "kind": "characterization", "needs": ["base"]},
        {"id": "base", "kind": "threshold_sweep"},
        {"id": "also", "kind": "s_curve", "needs": ["base"]},
    ]
    order = validate_spec_mapping(minimal_raw(stages=stages))
    assert order == ["base", "late", "also"]
    spec = spec_from_mapping(minimal_raw(stages=stages))
    assert list(spec.topo_order()) == ["base", "late", "also"]


def test_parity_check_requires_declared_oracle():
    stages = [
        {"id": "a", "kind": "threshold_sweep"},
        {"id": "b", "kind": "threshold_sweep",
         "checks": [{"kind": "parity", "field": "thresholds",
                     "stage": "a", "tol": 1e-9}]},
    ]
    # Not in needs: rejected (the oracle's payload may not exist yet).
    with pytest.raises(CampaignSpecError, match="needs"):
        validate_spec_mapping(minimal_raw(stages=stages))
    stages[1]["needs"] = ["a"]
    validate_spec_mapping(minimal_raw(stages=stages))


def test_kill_chaos_needs_pool_and_retries():
    raw = minimal_raw(chaos={"kill_worker_tasks": 1})
    with pytest.raises(CampaignSpecError, match="workers"):
        validate_spec_mapping(raw)
    raw["runtime"] = {"workers": 2}
    with pytest.raises(CampaignSpecError, match="retries"):
        validate_spec_mapping(raw)
    raw["runtime"] = {"workers": 2, "retries": 1}
    validate_spec_mapping(raw)


def test_unknown_check_kind_rejected():
    stages = [{"id": "a", "kind": "threshold_sweep",
               "checks": [{"kind": "vibes", "field": "thresholds"}]}]
    with pytest.raises(CampaignSpecError, match="vibes"):
        validate_spec_mapping(minimal_raw(stages=stages))


# --------------------------------------------------------------- hashing

def test_spec_hash_excludes_chaos_and_source():
    clean = spec_from_mapping(minimal_raw(), source="/tmp/a.toml")
    chaotic = spec_from_mapping(
        minimal_raw(runtime={"workers": 2, "retries": 1},
                    chaos={"corrupt_cache": 1,
                           "kill_worker_tasks": 1}),
        source="/elsewhere/b.toml")
    # Chaos changes the runtime block too, so compare like-for-like:
    clean_rt = spec_from_mapping(
        minimal_raw(runtime={"workers": 2, "retries": 1}),
        source="/third/c.toml")
    assert chaotic.spec_hash() == clean_rt.spec_hash()
    assert clean.spec_hash() != clean_rt.spec_hash()  # runtime counts
    # Source never matters.
    again = spec_from_mapping(minimal_raw(), source="<inline>")
    assert again.spec_hash() == clean.spec_hash()


def test_spec_hash_tracks_computation_inputs():
    base = spec_from_mapping(minimal_raw())
    reseeded = spec_from_mapping(minimal_raw(seed=7))
    recoded = spec_from_mapping(minimal_raw(stages=[
        {"id": "a", "kind": "threshold_sweep",
         "params": {"bits": [1], "tol": 1e-3}}]))
    assert len({base.spec_hash(), reseeded.spec_hash(),
                recoded.spec_hash()}) == 3


# --------------------------------------------------------------- loading

def test_load_spec_toml_and_json_agree(tmp_path):
    raw = minimal_raw()
    toml_path = tmp_path / "c.toml"
    toml_path.write_text(
        'schema = "campaign/v1"\nname = "t"\n\n'
        "[[stages]]\nid = \"a\"\nkind = \"threshold_sweep\"\n"
        "params = { bits = [1], tol = 5e-3 }\n"
    )
    json_path = tmp_path / "c.json"
    json_path.write_text(json.dumps(raw))
    a, b = load_spec(toml_path), load_spec(json_path)
    assert a.spec_hash() == b.spec_hash()
    assert a.source == str(toml_path)


def test_load_spec_refuses_unknown_extension(tmp_path):
    path = tmp_path / "c.yaml"
    path.write_text("nope")
    with pytest.raises(CampaignSpecError, match="yaml"):
        load_spec(path)


def test_load_spec_missing_file(tmp_path):
    with pytest.raises(CampaignSpecError):
        load_spec(tmp_path / "absent.toml")


def test_stage_param_accessors():
    spec = spec_from_mapping(minimal_raw())
    stage = spec.stage("a")
    assert stage.param("tol") == 5e-3
    assert stage.param("absent", 42) == 42
    assert stage.params_dict() == {"bits": [1], "tol": 5e-3}
