"""Robustness and failure-injection tests.

Determinism of the event engine, metastability propagating through the
full stack, saturation behaviour, and misuse paths that must fail
loudly rather than mis-measure.
"""

import pytest

from repro.core.array import SensorArrayHarness
from repro.core.sensor import SensorBit, SensorBitHarness
from repro.core.system import SensorSystem
from repro.devices.variation import VariationModel
from repro.errors import NetlistError, ReproError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.waveform import ConstantWaveform, StepWaveform
from repro.units import NS


# -- determinism --------------------------------------------------------------

def test_engine_runs_are_reproducible(design):
    """Identical stimulus -> identical trace, across fresh engines."""
    h = SensorArrayHarness(design)

    def run():
        measures = h.run_measures(3, [4 * NS, 10 * NS],
                                  vdd_n=StepWaveform(1.0, 0.9, 7 * NS))
        return [(m.word.to_string(),
                 tuple(b.outcome for b in m.bit_measures))
                for m in measures]

    assert run() == run()


def test_system_runs_are_reproducible(design):
    system = SensorSystem(design, include_ls=False)

    def run():
        r = system.run(2, vdd_n=StepWaveform(1.0, 0.93, 16 * NS))
        return [(m.word.to_string(), m.encoded.oute, m.launch_time)
                for m in r.hs]

    assert run() == run()


def test_harness_reuse_isolated(design):
    """A harness reused across runs must not leak state between them
    (regression for the stale-net-timestamp bug)."""
    h = SensorBitHarness(design, 5)
    first = h.measure_once(3, vdd_n=0.95)
    second = h.measure_once(3, vdd_n=1.0)
    third = h.measure_once(3, vdd_n=0.95)
    assert not first.passed and third.passed is False
    assert second.passed
    assert first.outcome == third.outcome


# -- metastability through the stack -------------------------------------------

def test_metastable_bit_still_yields_decodable_word(design):
    """A supply parked exactly on a bit threshold drives that FF into
    its metastable window; the system word remains decodable."""
    t_star = design.bit_threshold(4, 3)
    system = SensorSystem(design, include_ls=False)
    run = system.run(1, vdd_n=t_star)
    m = run.hs[0]
    assert m.any_metastable
    assert m.decoded.lo < t_star <= m.decoded.hi + 1e-3


def test_unresolved_sample_counts_as_fail(design):
    """Deep metastability (UNKNOWN sample) maps to a failed stage, the
    conservative choice for a droop detector."""
    h = SensorBitHarness(design, 4)
    ff = design.sense_flipflop()
    t_star = SensorBit(design, 4).threshold(3)
    # Walk the supply toward the exact boundary until unresolved.
    found_unresolved = False
    for dv in (1e-5, 1e-6, 1e-7, 1e-8, 0.0):
        r = h.measure_once(3, vdd_n=t_star + dv)
        if r.outcome == "unresolved":
            found_unresolved = True
            assert not r.passed
            assert r.value is None
            assert r.out_delay >= ff.resolution_cap * 0.99
            break
    assert found_unresolved


def test_bubbled_word_flagged_and_corrected(design):
    """Heavy mismatch can swap adjacent thresholds; the encoder flags
    the bubble and ones-counting still decodes."""
    heavy = VariationModel(sigma_vth_intra=0.03, sigma_drive_intra=0.1)
    found_bubble = False
    for seed in range(12):
        sample = heavy.sample_die(design.n_bits, seed=seed)
        h = SensorArrayHarness(design, variation=sample)
        thresholds = sorted(
            design.bit_threshold(b, 3)
            for b in range(1, design.n_bits + 1)
        )
        probe_v = 0.5 * (thresholds[2] + thresholds[3])
        m = h.measure_once(3, vdd_n=probe_v)
        if not m.word.is_valid_thermometer:
            found_bubble = True
            corrected = m.word.corrected()
            assert corrected.is_valid_thermometer
            assert corrected.ones == m.word.ones
            break
    assert found_bubble, "no bubble produced in 12 heavy-mismatch dies"


# -- saturation & misuse ---------------------------------------------------------

def test_collapsed_rail_reads_all_fail(design):
    """A rail at/below the device threshold: every stage fails (the
    inverters never switch); no crash, no hang."""
    h = SensorArrayHarness(design)
    m = h.measure_once(3, vdd_n=design.tech.vth * 0.8)
    assert m.word.to_string() == "0000000"


def test_overvoltage_reads_all_pass(design):
    h = SensorArrayHarness(design)
    m = h.measure_once(3, vdd_n=1.4)
    assert m.word.to_string() == "1111111"


def test_every_public_error_is_catchable_as_reproerror(design):
    with pytest.raises(ReproError):
        design.effective_window(42)
    with pytest.raises(ReproError):
        SensorBit(design, 99)
    with pytest.raises(ReproError):
        Netlist().add_net("x", extra_cap=-1.0)
    # Resilience failures surface through the same hierarchy: a task
    # that keeps raising through its retry budget must still be
    # catchable as ReproError (here: RetryExhaustedError).
    from repro.runtime import map_tasks
    from tests.test_resilient import _always_fails

    with pytest.raises(ReproError):
        map_tasks(_always_fails, [1], retries=1)


def test_engine_rejects_netlist_with_floating_inputs():
    from repro.cells.combinational import Inverter
    from repro.devices.technology import TECH_90NM

    nl = Netlist()
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a")
    nl.add_net("y")
    nl.add_instance("u", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    # 'a' has no driver and is not declared external.
    with pytest.raises(NetlistError):
        SimulationEngine(nl)


def test_gnd_harness_ignores_vdd_noise(design):
    """LS inverters are on the nominal supply: VDD-n noise must not
    change the LS reading (the Fig. 6 isolation, negative test)."""
    from repro.core.sensor import SenseRail

    h = SensorArrayHarness(design, rail=SenseRail.GND)
    clean = h.measure_once(3, gnd_n=0.0)
    # VDDN noise present but GNDN quiet:
    h.netlist.set_supply_waveform("VDDN", ConstantWaveform(0.85))
    noisy_vdd = h.measure_once(3, gnd_n=0.0)
    assert clean.word == noisy_vdd.word
