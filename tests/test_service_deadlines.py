"""Deadline, cancellation and breaker-probe edge cases.

The edges that kill real services:

* a client vanishing while its batch is mid-flight on a worker — the
  server must absorb the dead socket and keep serving;
* a deadline expiring *inside* the retry loop's backoff — the request
  must fail fast with DeadlineExceededError, not sleep past its
  budget;
* a deadline expiring mid-execution — cooperative cancellation: the
  caller gets its (degraded) answer on time while the worker finishes
  in the background;
* a half-open breaker probe racing newly admitted work — exactly one
  probe executes; everything else answers from the degradation ladder
  without touching the backend.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.backends import SimBackend
from repro.backends.base import SensorBackend
from repro.backends.faults import InjectedFaultError
from repro.runtime.resilient import RetryPolicy
from repro.service import FleetConfig, JobServer
from repro.service.client import AsyncServiceClient

ONE_SHARD = FleetConfig(n_dies=8, n_shards=1)


class FailFirstN(SensorBackend):
    """Fails the first ``n`` measure calls (retryably), then heals."""

    id = "fail-first-n"

    def __init__(self, n: int) -> None:
        super().__init__()
        self.inner = SimBackend()
        self.remaining = n
        self.calls = 0

    def configure(self, design, *, rail=None, tech=None) -> None:
        super().configure(design, rail=rail, tech=tech)
        self.inner.configure(design, rail=self.rail, tech=tech)

    def _flake(self) -> None:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise InjectedFaultError(
                f"flaky: {self.remaining} failures left"
            )

    def measure_batch(self, levels, *, code: int) -> np.ndarray:
        self._flake()
        return self.inner.measure_batch(levels, code=code)

    def s_curve(self, bit, **kwargs):
        self._flake()
        return self.inner.s_curve(bit, **kwargs)


async def _serve(server: JobServer, tmp_path):
    return await server.start(unix_path=str(tmp_path / "svc.sock"))


def _measure(rid: str, level: float = 1.05, *, deadline_s=None,
             chaos=None) -> dict:
    params = {"level": level, "code": 3}
    if chaos:
        params["chaos"] = chaos
    return {"id": rid, "kind": "measure", "params": params,
            "deadline_s": deadline_s}


def test_client_disconnect_mid_flight_leaves_server_healthy(tmp_path):
    """The request's batch keeps running after the client vanishes;
    its terminal response hits a dead socket (counted, not raised)
    and the very next client is served normally."""
    server = JobServer(backend="sim", config=ONE_SHARD)

    async def run():
        address = await _serve(server, tmp_path)
        ghost = await AsyncServiceClient(address).connect()
        await ghost.send("ghost", "measure",
                         params={"level": 1.05, "code": 3,
                                 "chaos": {"sleep_s": 0.3}})
        await asyncio.sleep(0.05)  # the batch is now in flight
        await ghost.close()
        # The in-flight job completes against a dead socket.
        for _ in range(100):
            if server.counters["dropped_connections"]:
                break
            await asyncio.sleep(0.02)
        live = await AsyncServiceClient(address).connect()
        await live.send("live", "ping")
        response = await live.read_response()
        await live.close()
        await server.stop()
        return response

    response = asyncio.run(run())
    assert server.counters["dropped_connections"] == 1
    assert server.counters["responses"] == 2  # both were terminal
    assert response["id"] == "live" and response["status"] == "ok"


def test_deadline_expires_mid_execution_cooperative_cancel(tmp_path):
    """A worker stalled past the deadline: the caller gets a degraded
    answer at the deadline, not after the stall."""
    stall = 1.5
    server = JobServer(backend="sim", config=ONE_SHARD,
                       retry_policy=RetryPolicy(retries=0))

    async def run():
        address = await _serve(server, tmp_path)
        client = await AsyncServiceClient(address).connect()
        started = time.monotonic()
        await client.send("m", "measure",
                          params={"level": 1.05, "code": 3,
                                  "chaos": {"sleep_s": stall}},
                          deadline_s=0.15)
        response = await client.read_response()
        elapsed = time.monotonic() - started
        await client.close()
        await server.stop()
        return response, elapsed

    response, elapsed = asyncio.run(run())
    assert response["status"] == "ok"
    assert response["quality"] == "degraded"
    # Cooperative: answered around the deadline, not after the stall.
    assert elapsed < stall * 0.8
    assert server.counters["deadline"] >= 1


def test_deadline_expiring_inside_retry_backoff(tmp_path):
    """Retries are deadline-aware: when the next backoff sleep would
    overshoot the budget, the request fails *now* with
    DeadlineExceededError instead of sleeping through it."""
    flaky = FailFirstN(10)  # always failing within this test
    server = JobServer(
        backend=lambda: flaky, config=ONE_SHARD,
        # First backoff delay alone exceeds the whole deadline.
        retry_policy=RetryPolicy(retries=3, backoff_base=5.0),
    )

    async def run():
        address = await _serve(server, tmp_path)
        client = await AsyncServiceClient(address).connect()
        started = time.monotonic()
        # s_curve has no degraded fallback: the deadline error is
        # visible as the terminal REJECTED response.
        await client.send("s", "s_curve",
                          params={"bit": 4, "n_per_level": 5,
                                  "code": 3, "seed": 1,
                                  "chaos": {"poison": False}},
                          deadline_s=0.4)
        response = await client.read_response()
        elapsed = time.monotonic() - started
        await client.close()
        await server.stop()
        return response, elapsed

    response, elapsed = asyncio.run(run())
    assert response["status"] == "rejected"
    assert response["error"]["type"] == "DeadlineExceededError"
    assert "backoff" in response["error"]["message"]
    assert elapsed < 2.0  # never slept the 5 s backoff
    assert response["attempts"] == 1


def test_expired_while_queued_falls_back_without_execution(tmp_path):
    """A stalled shard starves the queue; the job behind the stall
    expires while queued and is answered from the degradation ladder
    without ever reaching the backend."""
    flaky = FailFirstN(0)
    server = JobServer(backend=lambda: flaky, config=ONE_SHARD,
                       coalesce=1)

    async def run():
        address = await _serve(server, tmp_path)
        client = await AsyncServiceClient(address).connect()
        await client.send("slow", "measure",
                          params={"level": 1.05, "code": 3,
                                  "chaos": {"sleep_s": 0.4}})
        await client.send("starved", "measure",
                          params={"level": 1.05, "code": 3},
                          deadline_s=0.1)
        responses = {}
        for _ in range(2):
            r = await client.read_response()
            responses[r["id"]] = r
        await client.close()
        await server.stop()
        return responses

    responses = asyncio.run(run())
    assert responses["slow"]["quality"] == "full"
    starved = responses["starved"]
    assert starved["status"] == "ok"
    assert starved["quality"] == "degraded"
    # Only the slow job's batch reached the backend.
    assert flaky.calls == 1


def test_half_open_probe_races_new_admissions(tmp_path):
    """Trip the breaker, wait out the cooldown, then burst requests:
    exactly one executes as the probe (and fails, re-tripping the
    breaker); the rest answer degraded without a backend call."""
    flaky = FailFirstN(2)  # the trip + the failed probe
    server = JobServer(
        backend=lambda: flaky, config=ONE_SHARD, coalesce=1,
        retry_policy=RetryPolicy(retries=0),
        breaker_threshold=1, breaker_cooldown_s=0.2,
    )

    async def run():
        address = await _serve(server, tmp_path)
        client = await AsyncServiceClient(address).connect()
        await client.send("trip", "measure",
                          params={"level": 1.05, "code": 3})
        first = await client.read_response()
        await asyncio.sleep(0.3)  # cooldown elapses: half-open
        for i in range(4):
            await client.send(f"race{i}", "measure",
                              params={"level": 1.05, "code": 3})
        racers = [await client.read_response() for _ in range(4)]
        await client.close()
        await server.stop()
        return first, racers

    first, racers = asyncio.run(run())
    assert first["quality"] == "degraded"  # the trip, retries=0
    assert all(r["status"] == "ok" and r["quality"] == "degraded"
               for r in racers)
    # One call tripped it, exactly one more was the half-open probe.
    assert flaky.calls == 2
    breaker = server.stats()["shards"][0]["breaker"]
    assert breaker["probes"] == 1
    assert breaker["opens"] == 2  # initial trip + failed probe


def test_half_open_probe_success_closes_and_recovers(tmp_path):
    """A healed backend: the probe succeeds, the breaker closes, and
    subsequent requests are served full-quality again."""
    flaky = FailFirstN(1)
    server = JobServer(
        backend=lambda: flaky, config=ONE_SHARD, coalesce=1,
        retry_policy=RetryPolicy(retries=0),
        breaker_threshold=1, breaker_cooldown_s=0.1,
    )

    async def run():
        address = await _serve(server, tmp_path)
        client = await AsyncServiceClient(address).connect()
        await client.send("trip", "measure",
                          params={"level": 1.05, "code": 3})
        await client.read_response()
        await asyncio.sleep(0.2)
        await client.send("probe", "measure",
                          params={"level": 1.05, "code": 3})
        probe = await client.read_response()
        await client.send("after", "measure",
                          params={"level": 1.06, "code": 3})
        after = await client.read_response()
        await client.close()
        await server.stop()
        return probe, after

    probe, after = asyncio.run(run())
    assert probe["quality"] == "full"   # the probe itself succeeded
    assert after["quality"] == "full"   # breaker closed again
    breaker = server.stats()["shards"][0]["breaker"]
    assert breaker["closes"] == 1
    assert breaker["state"] == "closed"
