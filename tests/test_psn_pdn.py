"""PDN model tests: resonance, droop physics, ground bounce."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.psn.pdn import PDNModel, PDNParameters
from repro.units import MOHM, NF, NS, PH


@pytest.fixture()
def params():
    return PDNParameters()


def test_resonant_frequency_formula(params):
    f = params.resonant_frequency
    assert f == pytest.approx(
        1.0 / (2 * np.pi * np.sqrt(params.l_series * params.c_decap))
    )
    assert 5e7 < f < 5e8  # mid-frequency band


def test_damping_ratio_underdamped(params):
    assert 0 < params.damping_ratio < 1


def test_impedance_peaks_near_resonance(params):
    f_res = params.resonant_frequency
    z_res = abs(params.impedance_at(f_res))
    z_lo = abs(params.impedance_at(f_res / 30))
    z_hi = abs(params.impedance_at(f_res * 30))
    assert z_res > z_lo
    assert z_res > z_hi


def test_impedance_dc_is_series_r(params):
    assert abs(params.impedance_at(0.0)) == pytest.approx(
        params.r_series
    )


def test_impedance_rejects_negative_freq(params):
    with pytest.raises(ConfigurationError):
        params.impedance_at(-1.0)


def test_quiet_rail_stays_nominal(params):
    model = PDNModel(params)
    v = model.simulate(lambda t: 0.0, t_end=100 * NS, dt=0.1 * NS)
    assert v.min_over(0, 100 * NS) == pytest.approx(1.0, abs=1e-9)


def test_step_load_droops_then_rings(params):
    model = PDNModel(params)
    step = lambda t: 10.0 if t > 20 * NS else 0.0
    v = model.simulate(step, t_end=200 * NS, dt=0.1 * NS)
    v_min = v.min_over(20 * NS, 100 * NS)
    assert v_min < 1.0 - 0.005  # real droop
    # Ringing overshoots above nominal at some point.
    assert v.max_over(20 * NS, 200 * NS) > 1.0


def test_dc_droop_equals_ir_drop():
    p = PDNParameters(r_series=5 * MOHM, r_esr=0.0)
    model = PDNModel(p)
    i_dc = 8.0
    v = model.simulate(lambda t: i_dc, t_end=3000 * NS, dt=0.4 * NS)
    # After the transient, the rail settles at vdd - R*I.
    settled = v(3000 * NS)
    assert settled == pytest.approx(1.0 - p.r_series * i_dc, abs=2e-3)


def test_deeper_load_deeper_droop(params):
    model = PDNModel(params)
    def mk(i):
        return lambda t: i if t > 10 * NS else 0.0
    v1 = model.simulate(mk(5.0), t_end=150 * NS, dt=0.1 * NS)
    v2 = model.simulate(mk(15.0), t_end=150 * NS, dt=0.1 * NS)
    assert v2.min_over(0, 150 * NS) < v1.min_over(0, 150 * NS)


def test_array_input_matches_callable(params):
    model = PDNModel(params)
    dt = 0.1 * NS
    t_end = 50 * NS
    n = int(round(t_end / dt))
    times = np.arange(n + 1) * dt
    arr = np.where(times > 10 * NS, 5.0, 0.0)
    v_arr = model.simulate(arr, t_end=t_end, dt=dt)
    v_fun = model.simulate(lambda t: 5.0 if t > 10 * NS else 0.0,
                           t_end=t_end, dt=dt)
    assert np.allclose(v_arr.sample(times), v_fun.sample(times),
                       atol=1e-6)


def test_array_length_mismatch_rejected(params):
    model = PDNModel(params)
    with pytest.raises(ConfigurationError):
        model.simulate(np.zeros(10), t_end=50 * NS, dt=0.1 * NS)


def test_coarse_dt_rejected(params):
    model = PDNModel(params)
    with pytest.raises(ConfigurationError):
        model.simulate(lambda t: 0.0, t_end=100 * NS, dt=5 * NS)


def test_ground_bounce_mirrors_droop(params):
    model = PDNModel(params)
    step = lambda t: 10.0 if t > 20 * NS else 0.0
    v = model.simulate(step, t_end=100 * NS, dt=0.1 * NS)
    g = model.ground_bounce(step, t_end=100 * NS, dt=0.1 * NS)
    ts = np.linspace(0, 100 * NS, 200)
    assert np.allclose(g.sample(ts), 1.0 - v.sample(ts), atol=1e-9)


def test_ground_bounce_fraction(params):
    model = PDNModel(params)
    step = lambda t: 10.0 if t > 20 * NS else 0.0
    g_half = model.ground_bounce(step, t_end=100 * NS, dt=0.1 * NS,
                                 fraction=0.5)
    g_full = model.ground_bounce(step, t_end=100 * NS, dt=0.1 * NS)
    ts = np.linspace(0, 100 * NS, 50)
    assert np.allclose(g_half.sample(ts), 0.5 * g_full.sample(ts),
                       atol=1e-9)


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        PDNParameters(vdd_nominal=0.0)
    with pytest.raises(ConfigurationError):
        PDNParameters(l_series=0.0)
    with pytest.raises(ConfigurationError):
        PDNParameters(r_series=-1.0)
