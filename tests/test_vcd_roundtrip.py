"""VCD write -> read round-trip tests."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.sim.trace import Trace
from repro.sim.vcd import write_vcd
from repro.sim.vcd_reader import read_vcd
from repro.units import NS


def roundtrip(trace, **kw):
    buf = io.StringIO()
    write_vcd(trace, buf, **kw)
    buf.seek(0)
    return read_vcd(buf)


def sample_trace():
    t = Trace()
    t.record("clk", 0.0, 0)
    t.record("data", 0.0, None)
    t.record("clk", 2 * NS, 1)
    t.record("data", 2.3 * NS, 1)
    t.record("clk", 4 * NS, 0)
    t.record("data", 5.5 * NS, 0)
    return t


def test_roundtrip_preserves_transitions():
    dump = roundtrip(sample_trace())
    assert dump.nets() == ["clk", "data"]
    clk = dump.transitions["clk"]
    assert clk == [(0.0, 0), (2 * NS, 1), (4 * NS, 0)]


def test_roundtrip_preserves_unknowns():
    dump = roundtrip(sample_trace())
    assert dump.transitions["data"][0] == (0.0, None)
    assert dump.value_at("data", 1 * NS) is None
    assert dump.value_at("data", 3 * NS) == 1


def test_roundtrip_value_queries_match_trace():
    trace = sample_trace()
    dump = roundtrip(trace)
    for t_query in (0.5 * NS, 2.1 * NS, 4.5 * NS, 6 * NS):
        for net in ("clk", "data"):
            assert dump.value_at(net, t_query) == \
                trace.value_at(net, t_query), (net, t_query)


def test_roundtrip_timescale():
    dump = roundtrip(sample_trace())
    assert dump.timescale == pytest.approx(1e-15)


def test_roundtrip_net_selection():
    dump = roundtrip(sample_trace(), nets=["clk"])
    assert dump.nets() == ["clk"]


def test_roundtrip_real_simulation(design):
    from repro.sim.engine import SimulationEngine
    from repro.core.sensor import SensorBitHarness

    h = SensorBitHarness(design, 3)
    h.bind_rails(vdd_n=0.95)
    engine = SimulationEngine(h.netlist)
    engine.set_initial("P", 1)
    engine.set_initial("CP", 0)
    engine.settle()
    engine.set_initial("OUT", 0)
    engine.schedule_stimulus("P", 0, 4 * NS)
    engine.schedule_stimulus("CP", 1, 4 * NS + 65e-12)
    engine.run(6 * NS)
    dump = roundtrip(engine.trace)
    # DS edge time is preserved to the femtosecond tick.
    ds_sim = [t for t, v in engine.trace.transitions("DS") if v == 1
              and t > 0]
    ds_vcd = [t for t, v in dump.transitions["DS"] if v == 1 and t > 0]
    assert ds_vcd[0] == pytest.approx(ds_sim[0], abs=1e-15)


def test_reader_rejects_malformed():
    with pytest.raises(ConfigurationError):
        read_vcd(io.StringIO("not a vcd"))
    with pytest.raises(ConfigurationError):
        read_vcd(io.StringIO(
            "$timescale 1 ps $end\n$enddefinitions $end\n"
        ))


def test_reader_rejects_undeclared_identifier():
    text = ("$timescale 1 ps $end\n"
            "$var wire 1 ! a $end\n"
            "$enddefinitions $end\n"
            "#1\n1?\n")
    with pytest.raises(ConfigurationError):
        read_vcd(io.StringIO(text))


def test_reader_unknown_net_query():
    dump = roundtrip(sample_trace())
    with pytest.raises(ConfigurationError):
        dump.value_at("nope", 0.0)
