"""Cross-backend parity matrix (the backend layer's contract).

One interface, many drivers — the whole point of
:mod:`repro.backends` is that swapping the driver never silently
changes the physics.  These tests pin that down as a parameterized
matrix over seeded scenarios (the paper design, perturbed trim-cap
ablations, process corners, a 1-bit probe array, masked/degraded
bits):

* **kernel vs. oracle** — :class:`~repro.backends.KernelBackend`
  thresholds match the per-point ``brentq`` scalar solve to within
  the kernel layer's documented 2e-9 V agreement bound;
* **sim vs. kernel** — :class:`~repro.backends.SimBackend` thresholds
  agree with the kernel within a *bisection-tolerance-dominated*
  bound (the event engine's boundary sits within the configured
  ``tol`` of the analytic law; it is NOT a 2e-9-class match), and the
  two drivers return identical words away from decision boundaries;
* **replay vs. recording** — a campaign recorded through
  :class:`~repro.backends.RecordingBackend` replays through
  :class:`~repro.backends.ReplayBackend` *bit-identically*, for both
  trace formats, including NaN (masked-bit) threshold entries;
* **registry** — specs resolve, the env var routes, unknown names
  fail loudly, and every driver's fingerprint keeps cache keys
  distinct (see also the cache-key tests at the bottom).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV,
    BackendError,
    KernelBackend,
    RecordingBackend,
    ReplayBackend,
    SimBackend,
    available,
    get,
    register,
    resolve_backend,
)
from repro.backends.trace import floats_equal
from repro.core.sensor import SenseRail
from repro.devices.corners import CORNERS
from repro.runtime.cache import design_fingerprint

#: Kernel-vs-brentq agreement: the kernel layer's own documented bound.
KERNEL_TOL_V = 2e-9

#: Sim bisection tolerance used in the parity runs (volts).
SIM_TOL_V = 0.5e-3

#: Sim-vs-kernel threshold bound.  The event engine's pass/fail
#: boundary tracks the analytic law but the bisection stops at
#: ``SIM_TOL_V`` and the engine's own time discretization adds a
#: sub-microvolt floor — so parity is tolerance-dominated, not exact.
SIM_VS_KERNEL_V = 2.0 * SIM_TOL_V


def _perturbed(design, seed, scale=0.03):
    """A seeded trim-cap ablation of the paper design (a 'random
    design' that stays inside the physically sensible regime)."""
    rng = np.random.default_rng(seed)
    caps = np.asarray(design.load_caps)
    factors = 1.0 + scale * rng.uniform(-1.0, 1.0, size=caps.size)
    caps = np.sort(caps * factors)  # ladder caps must stay ascending
    return design.with_load_caps(tuple(float(c) for c in caps))


def _scenarios(design):
    """(label, design, tech, codes) scenario matrix."""
    return [
        ("paper", design, None, (3,)),
        ("randcaps-17", _perturbed(design, 17), None, (2, 5)),
        ("randcaps-99", _perturbed(design, 99), None, (3,)),
        ("corner-SS", design, CORNERS["SS"].apply(design.tech), (3,)),
        ("corner-FF", design, CORNERS["FF"].apply(design.tech), (3,)),
        ("1bit", design.with_load_caps((design.load_caps[3],)),
         None, (0, 3, 7)),
    ]


# -- kernel backend vs. the scalar brentq oracle -------------------------------

def test_kernel_thresholds_match_brentq_oracle(design):
    bk = KernelBackend()
    for label, d, tech, codes in _scenarios(design):
        bk.configure(d, tech=tech)
        for code in codes:
            got = bk.bit_thresholds(code)
            assert len(got) == d.n_bits
            for b in range(1, d.n_bits + 1):
                oracle = d.bit_threshold(b, code, tech)
                assert abs(got[b - 1] - oracle) <= KERNEL_TOL_V, \
                    f"{label}: bit {b} code {code}"


def test_kernel_gnd_rail_is_vdd_mirror(design):
    bk = KernelBackend()
    bk.configure(design, rail=SenseRail.VDD)
    vdd = bk.bit_thresholds(3)
    bk.configure(design, rail=SenseRail.GND)
    gnd = bk.bit_thresholds(3)
    mirror = design.tech.vdd_nominal - np.asarray(vdd)
    assert np.allclose(gnd, mirror, atol=0.0, rtol=0.0)


def test_kernel_measure_batch_matches_thresholds(design):
    """Words flip exactly where the thresholds say they should."""
    bk = KernelBackend()
    bk.configure(design)
    th = bk.bit_thresholds(3)
    eps = 1e-6
    for b in range(design.n_bits):
        above, below = bk.measure_batch(
            [th[b] + eps, th[b] - eps], code=3)
        assert above[b] == 1 and below[b] == 0


# -- sim backend vs. kernel backend --------------------------------------------

@pytest.mark.parametrize("label_idx", [0, 5])
def test_sim_thresholds_within_tol_of_kernel(design, label_idx):
    """Event-sim bisection lands within the documented
    tolerance-dominated bound of the analytic kernel — for the paper
    design and for the 1-bit probe array."""
    label, d, tech, codes = _scenarios(design)[label_idx]
    sim = SimBackend(tol=SIM_TOL_V)
    ker = KernelBackend()
    sim.configure(d, tech=tech)
    ker.configure(d, tech=tech)
    code = codes[-1]
    got = np.asarray(sim.bit_thresholds(code))
    ref = np.asarray(ker.bit_thresholds(code))
    assert got.shape == ref.shape
    assert np.all(np.isfinite(got))
    assert np.max(np.abs(got - ref)) <= SIM_VS_KERNEL_V, label


def test_sim_words_match_kernel_away_from_boundaries(design):
    """At threshold midpoints (maximally far from any decision
    boundary) the event simulation and the kernel return the same
    word, VDD and GND rails both."""
    ker = KernelBackend()
    ker.configure(design)
    th = ker.bit_thresholds(3)
    edges = np.concatenate(([th[0] - 0.03], th, [th[-1] + 0.03]))
    mids = 0.5 * (edges[:-1] + edges[1:])

    sim = SimBackend()
    for rail in (SenseRail.VDD, SenseRail.GND):
        levels = mids if rail is SenseRail.VDD \
            else design.tech.vdd_nominal - mids
        ker.configure(design, rail=rail)
        sim.configure(design, rail=rail)
        kw = ker.measure_batch(levels, code=3)
        sw = sim.measure_batch(levels, code=3)
        assert np.array_equal(kw, sw), rail


def test_sim_s_curve_probabilities_are_probabilities(design):
    sim = SimBackend()
    sim.configure(design)
    levels, probs = sim.s_curve(4, code=3, noise_rms=5e-3,
                                n_per_level=20, seed=5, n_levels=7)
    assert len(levels) == len(probs) == 7
    assert all(0.0 <= p <= 1.0 for p in probs)
    assert probs[0] <= 0.5 <= probs[-1]  # sweep crosses the threshold


# -- record -> replay bit-identity ---------------------------------------------

def _run_campaign(bk, design, tech=None):
    """A representative campaign touching every capability the
    driver offers; returns everything measured."""
    bk.configure(design, tech=tech)
    out = {"words": bk.measure_batch([0.88, 0.95, 1.02], code=3),
           "thresholds": bk.bit_thresholds(3)}
    caps = bk.capabilities()
    if caps.s_curve:
        out["s_curve"] = bk.s_curve(2, code=3, noise_rms=4e-3,
                                    n_per_level=16, seed=11)
    if caps.lot_thresholds:
        from repro.devices.variation import VariationModel

        model = VariationModel(sigma_vth_inter=10e-3,
                               sigma_vth_intra=4e-3)
        lot = model.sample_lot(3, design.n_bits, seed=21)
        out["lot"] = bk.lot_thresholds(lot, 3)
    return out


@pytest.mark.parametrize("fmt", ["jsonl", "csv"])
def test_replay_reproduces_kernel_recording_bit_identically(
        design, tmp_path, fmt):
    path = tmp_path / f"campaign.{fmt}"
    rec = RecordingBackend(KernelBackend(), path)
    live = _run_campaign(rec, design)
    rec.close()

    replay = ReplayBackend(path)
    again = _run_campaign(replay, design)
    assert replay.exhausted

    assert np.array_equal(live["words"], again["words"])
    assert np.array_equal(live["thresholds"], again["thresholds"],
                          equal_nan=True)
    assert live["s_curve"] == again["s_curve"]  # tuples: bit-exact ==
    assert np.array_equal(live["lot"], again["lot"], equal_nan=True)


def test_replay_rewind_allows_second_pass(design, tmp_path):
    path = tmp_path / "c.jsonl"
    rec = RecordingBackend(KernelBackend(), path)
    rec.configure(design)
    live = rec.measure_batch([0.95], code=3)
    rec.close()
    replay = ReplayBackend(path)
    replay.configure(design)
    first = replay.measure_batch([0.95], code=3)
    replay.rewind()
    replay.configure(design)
    second = replay.measure_batch([0.95], code=3)
    assert np.array_equal(live, first) and np.array_equal(first, second)


def test_recording_is_transparent(design, tmp_path):
    """Recording never changes what it records: results, fingerprint
    and capabilities all pass through the inner driver unchanged."""
    inner = KernelBackend()
    rec = RecordingBackend(KernelBackend(), tmp_path / "t.jsonl")
    assert rec.fingerprint() == inner.fingerprint()
    assert rec.capabilities().lot_thresholds
    inner.configure(design)
    rec.configure(design)
    assert np.array_equal(inner.measure_batch([0.95], code=3),
                          rec.measure_batch([0.95], code=3))
    rec.close()


# -- masked / degraded bits round-trip -----------------------------------------

class _MaskedDriver(KernelBackend):
    """A kernel driver whose bit 2 is degraded (NaN threshold) — the
    masked-bit convention of the characterization layer."""

    id = "masked-test"

    def bit_thresholds(self, code, *, bits=None):
        out = np.array(super().bit_thresholds(code, bits=bits))
        idx = (bits or range(1, self.design.n_bits + 1))
        for k, b in enumerate(idx):
            if b == 2:
                out[k] = math.nan
        return out


@pytest.mark.parametrize("fmt", ["jsonl", "csv"])
def test_masked_bit_nan_survives_record_replay(design, tmp_path, fmt):
    path = tmp_path / f"masked.{fmt}"
    rec = RecordingBackend(_MaskedDriver(), path)
    rec.configure(design)
    live = rec.bit_thresholds(3)
    rec.close()
    assert math.isnan(live[1]) and not math.isnan(live[0])

    replay = ReplayBackend(path)
    replay.configure(design)
    again = replay.bit_thresholds(3)
    assert np.array_equal(live, again, equal_nan=True)
    assert all(floats_equal(a, b) for a, b in zip(live, again))


def test_generic_characterization_masks_nan_bits(design, tmp_path):
    """The generic backend route maps NaN thresholds onto the
    existing masked-bit (None) convention of characterization."""
    from repro.core.characterization import characterize_bit_thresholds

    ths = characterize_bit_thresholds(design, 3, backend=_MaskedDriver())
    assert ths[1] is None
    assert all(v is not None for k, v in enumerate(ths) if k != 1)


# -- registry & resolution -----------------------------------------------------

def test_registry_lists_and_builds_drivers():
    names = available()
    assert "kernel" in names and "sim" in names
    assert isinstance(get("kernel"), KernelBackend)
    assert isinstance(get("sim"), SimBackend)


def test_unknown_backend_fails_loudly():
    with pytest.raises(BackendError):
        get("spice")
    with pytest.raises(BackendError):
        resolve_backend("spice")


def test_replay_spec_builds_replay_backend(design, tmp_path):
    path = tmp_path / "r.jsonl"
    rec = RecordingBackend(KernelBackend(), path)
    rec.configure(design)
    rec.measure_batch([0.95], code=3)
    rec.close()
    bk = get(f"replay:{path}")
    assert isinstance(bk, ReplayBackend)


def test_env_var_routes_default(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "sim")
    assert isinstance(resolve_backend(None), SimBackend)
    monkeypatch.delenv(BACKEND_ENV)
    assert isinstance(resolve_backend(None), KernelBackend)


def test_register_rejects_bad_names():
    with pytest.raises(BackendError):
        register("", KernelBackend)
    with pytest.raises(BackendError):
        register("with:colon", KernelBackend)


def test_instance_passthrough(design):
    bk = KernelBackend()
    assert resolve_backend(bk) is bk


def test_unconfigured_backend_fails_loudly():
    with pytest.raises(BackendError):
        KernelBackend().measure_batch([0.95], code=3)


def test_sim_lacks_lot_thresholds(design):
    sim = SimBackend()
    sim.configure(design)
    assert not sim.capabilities().lot_thresholds
    with pytest.raises(BackendError):
        sim.lot_thresholds((design,), 3)


# -- cache-key distinctness (the fingerprint fix) ------------------------------

def test_backend_fingerprints_are_distinct(design, tmp_path):
    path = tmp_path / "f.jsonl"
    rec = RecordingBackend(KernelBackend(), path)
    rec.configure(design)
    rec.measure_batch([0.95], code=3)
    rec.close()

    fps = {
        "kernel": KernelBackend().fingerprint(),
        "sim": SimBackend().fingerprint(),
        "replay": ReplayBackend(path).fingerprint(),
    }
    assert len(set(fps.values())) == len(fps)


def test_design_fingerprint_folds_backend_identity(design):
    """Kernel-backed and sim-backed sweeps can never share a cache
    entry — their design fingerprints differ from each other and
    from the classic driverless fingerprint."""
    plain = design_fingerprint(design)
    kernel = design_fingerprint(design, backend=get("kernel"))
    sim = design_fingerprint(design, backend=get("sim"))
    assert len({plain, kernel, sim}) == 3
    # deterministic: same driver spec -> same key
    assert kernel == design_fingerprint(design, backend=get("kernel"))


def test_sim_fingerprint_tracks_tolerance():
    """Tightening the bisection tolerance changes the answers, so it
    must change the cache key too."""
    assert SimBackend(tol=0.5e-3).fingerprint() \
        != SimBackend(tol=1e-4).fingerprint()
