"""STA report-formatting tests."""

import pytest

from repro.core.control import build_control_netlist
from repro.errors import ConfigurationError
from repro.sta.analysis import analyze
from repro.sta.hold import analyze_hold
from repro.sta.report import format_hold_report, format_setup_report
from repro.units import NS


@pytest.fixture(scope="module")
def reports(design):
    nl, _ = build_control_netlist(design)
    return analyze(nl, clock_period=2 * NS), analyze_hold(nl)


def test_setup_report_headline(reports):
    setup, _ = reports
    text = format_setup_report(setup)
    assert "Setup (max-delay) report" in text
    assert "min clock period  : 1220.0 ps" in text
    assert "WNS +780.0 ps" in text


def test_setup_report_lists_path_segments(reports):
    setup, _ = reports
    text = format_setup_report(setup)
    for seg in setup.critical_path:
        assert seg.instance in text


def test_setup_report_endpoint_ranking(reports):
    setup, _ = reports
    text = format_setup_report(setup, max_endpoints=3)
    # Exactly 3 endpoint rows after the ranking header.
    tail = text.split("endpoints by slack:")[1].splitlines()
    rows = [ln for ln in tail if ln and not ln.startswith(("-", "e"))]
    assert len(rows) == 3


def test_setup_report_marks_violations(design):
    nl, _ = build_control_netlist(design)
    tight = analyze(nl, clock_period=0.8 * NS)
    text = format_setup_report(tight)
    assert "(VIOLATED)" in text
    assert "WNS -" in text


def test_setup_report_unconstrained(design):
    nl, _ = build_control_netlist(design)
    text = format_setup_report(analyze(nl))
    assert "constraint" not in text


def test_hold_report_headline(reports):
    _, hold = reports
    text = format_hold_report(hold)
    assert "Hold (min-delay) report" in text
    assert "clean" in text
    assert hold.worst_endpoint in text


def test_hold_report_direct_path_note():
    """Back-to-back FFs have no combinational segments; the report says
    so instead of printing an empty table."""
    from tests.test_sta_hold_spectrum import shift_register

    hold = analyze_hold(shift_register(2))
    text = format_hold_report(hold)
    assert "direct FF-to-FF" in text


def test_report_validation(reports):
    setup, hold = reports
    with pytest.raises(ConfigurationError):
        format_setup_report(setup, max_endpoints=0)
    with pytest.raises(ConfigurationError):
        format_hold_report(hold, max_endpoints=0)
