"""Delay-element, library, and NLDM-characterization tests."""

import pytest

from repro.cells.characterize import NLDMTable, characterize_cell
from repro.cells.combinational import Inverter
from repro.cells.delay_elements import DelayElement
from repro.cells.library import StdCellLibrary, default_library
from repro.devices.corners import corner_by_name
from repro.devices.technology import TECH_90NM
from repro.errors import CharacterizationError, ConfigurationError
from repro.units import FF, PS


# -- delay elements ------------------------------------------------------

def test_element_realizes_nominal_delay():
    e = DelayElement(TECH_90NM, 65 * PS)
    assert e.delay_at(TECH_90NM.vdd_nominal) == pytest.approx(65 * PS)


def test_element_slows_at_low_supply():
    e = DelayElement(TECH_90NM, 65 * PS)
    assert e.delay_at(0.9) > 65 * PS


def test_element_trim_load_accounted():
    load = 5 * FF
    e = DelayElement(TECH_90NM, 65 * PS, trim_load=load)
    assert e.propagation_delay("A", "Y", 1.0, load) == pytest.approx(
        65 * PS
    )


def test_element_rejects_sub_intrinsic_delay():
    with pytest.raises(ConfigurationError):
        DelayElement(TECH_90NM, 0.1 * PS)


def test_element_rejects_negative_trim_load():
    with pytest.raises(ConfigurationError):
        DelayElement(TECH_90NM, 65 * PS, trim_load=-1 * FF)


def test_from_internal_cap_same_tech_same_delay():
    e = DelayElement(TECH_90NM, 65 * PS)
    e2 = DelayElement.from_internal_cap(TECH_90NM, e.internal_cap)
    assert e2.delay_at(1.0) == pytest.approx(e.delay_at(1.0))


def test_from_internal_cap_corner_scales():
    e = DelayElement(TECH_90NM, 65 * PS)
    ss = corner_by_name("SS").apply(TECH_90NM)
    e_ss = DelayElement.from_internal_cap(ss, e.internal_cap)
    assert e_ss.delay_at(1.0) > e.delay_at(1.0)
    assert e_ss.internal_cap == e.internal_cap


def test_element_is_buffer_logically():
    e = DelayElement(TECH_90NM, 65 * PS)
    assert e.evaluate({"A": 1})["Y"] == 1
    assert e.evaluate({"A": 0})["Y"] == 0


# -- library ---------------------------------------------------------------

def test_default_library_contents():
    lib = default_library()
    for name in ("INV", "BUF", "NAND2", "NOR2", "XOR2", "MUX2", "DFF"):
        assert name in lib


def test_library_make_case_insensitive():
    lib = default_library()
    inv = lib.make("inv")
    assert type(inv).__name__ == "Inverter"


def test_library_make_with_strength():
    lib = default_library()
    inv = lib.make("INV", strength=4)
    assert inv.strength == 4


def test_library_unknown_cell_raises():
    lib = default_library()
    with pytest.raises(ConfigurationError):
        lib.make("FOO")


def test_library_duplicate_registration_raises():
    lib = StdCellLibrary(TECH_90NM)
    lib.register("INV", Inverter)
    with pytest.raises(ConfigurationError):
        lib.register("inv", Inverter)


def test_library_retarget_keeps_cells():
    lib = default_library()
    ss = corner_by_name("SS").apply(TECH_90NM)
    lib2 = lib.retarget(ss)
    assert set(lib2.cell_names()) == set(lib.cell_names())
    assert lib2.make("INV").tech.vth == pytest.approx(ss.vth)


def test_library_iteration_sorted():
    lib = default_library()
    assert list(lib) == sorted(lib.cell_names())


# -- NLDM ---------------------------------------------------------------

def test_nldm_matches_analytic_on_grid_points():
    inv = Inverter(TECH_90NM)
    table = characterize_cell(inv)
    v, c = table.supplies[3], table.loads[2]
    assert table.lookup(v, c) == pytest.approx(
        inv.propagation_delay("A", "Y", v, c)
    )


def test_nldm_interpolation_close_between_points():
    inv = Inverter(TECH_90NM)
    table = characterize_cell(inv)
    v = 0.5 * (table.supplies[4] + table.supplies[5])
    c = 0.5 * (table.loads[1] + table.loads[2])
    analytic = inv.propagation_delay("A", "Y", v, c)
    assert table.lookup(v, c) == pytest.approx(analytic, rel=0.05)


def test_nldm_clamps_out_of_range():
    inv = Inverter(TECH_90NM)
    table = characterize_cell(inv)
    lo = table.lookup(0.0, 0.0)
    assert lo == pytest.approx(table.lookup(table.supplies[0],
                                            table.loads[0]))


def test_nldm_rejects_bad_axes():
    with pytest.raises(ConfigurationError):
        NLDMTable(supplies=(1.0,), loads=(0.0, 1e-15),
                  delays=((1e-12, 2e-12),))


def test_nldm_rejects_shape_mismatch():
    with pytest.raises(ConfigurationError):
        NLDMTable(supplies=(0.9, 1.0), loads=(0.0, 1e-15),
                  delays=((1e-12, 2e-12),))


def test_characterize_rejects_subthreshold_grid():
    inv = Inverter(TECH_90NM)
    with pytest.raises(CharacterizationError):
        characterize_cell(inv, supplies=[0.05, 0.1, 1.0])


def test_nldm_monotone_in_load():
    inv = Inverter(TECH_90NM)
    table = characterize_cell(inv)
    d1 = table.lookup(1.0, table.loads[1])
    d2 = table.lookup(1.0, table.loads[3])
    assert d2 > d1
