"""Campaign scheduler: parallel-vs-serial bit-identity, failure
semantics, service execution, and stats-log compaction."""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CAMPAIGN_SCHEMA,
    EXECUTION_MODES,
    read_manifest,
    run_campaign,
    spec_from_mapping,
)
from repro.errors import CampaignSpecError

# -- helpers --------------------------------------------------------------


def synth(stage_id, *, needs=(), value=1.0, dwell_ms=0.0, fail=False,
          bad_check=False):
    """One synthetic stage dict; ``fail`` errors after the dwell,
    ``bad_check`` makes the stage run but fail its check."""
    stage = {
        "id": stage_id,
        "kind": "synthetic",
        "needs": list(needs),
        "params": {"value": value, "dwell_ms": dwell_ms},
        "checks": [{"kind": "equals", "field": "stage",
                    "value": stage_id if not bad_check else "nope"}],
    }
    if fail:
        stage["params"]["fail"] = True
    return stage


def make_spec(stages, **runtime):
    return spec_from_mapping({
        "schema": CAMPAIGN_SCHEMA,
        "name": "sched-test",
        "backend": {"spec": "kernel"},
        "runtime": runtime,
        "stages": stages,
    })


def stripped(manifest):
    """The manifest minus everything legitimately volatile: per-stage
    and total wall/cpu time, volatile counter blobs, and the cache
    root path (it embeds the per-run tmp dir).  Everything left must
    be bit-identical across execution modes."""
    out = dict(manifest)
    out.pop("wall_s", None)
    out.pop("cache", None)
    out["stages"] = [
        {k: v for k, v in s.items()
         if k not in ("wall_s", "cpu_s", "volatile")}
        for s in manifest["stages"]
    ]
    return out


def run_both(stages, **runtime):
    """The same spec through the serial oracle and the thread
    scheduler, each in a cold tree; returns both manifests."""
    spec = make_spec(stages, **runtime)
    work = Path(tempfile.mkdtemp(prefix="sched-prop-"))
    try:
        run_campaign(spec, out_dir=work / "ser", execution="serial")
        run_campaign(spec, out_dir=work / "par", execution="threads",
                     stage_workers=4)
        return (read_manifest(work / "ser"),
                read_manifest(work / "par"))
    finally:
        shutil.rmtree(work, ignore_errors=True)


# -- spec plumbing --------------------------------------------------------


def test_execution_modes_validated():
    with pytest.raises(CampaignSpecError, match="runtime.execution"):
        make_spec([synth("s0")], execution="warp")
    for mode in EXECUTION_MODES:
        assert make_spec([synth("s0")], execution=mode).execution == mode


def test_spec_hash_invariant_under_scheduling_knobs():
    base = make_spec([synth("s0"), synth("s1", needs=["s0"])])
    for mode in EXECUTION_MODES:
        twin = make_spec([synth("s0"), synth("s1", needs=["s0"])],
                         execution=mode, stage_workers=7)
        assert twin.spec_hash() == base.spec_hash()


def test_to_mapping_round_trips_spec_hash():
    spec = make_spec(
        [synth("s0", value=2.5), synth("s1", needs=["s0"], fail=True)],
        execution="service", stage_workers=3, on_fail="continue",
    )
    clone = spec_from_mapping(spec.to_mapping())
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.execution == "service" and clone.stage_workers == 3
    assert clone.stage("s1").param("fail") is True


def test_synthetic_fail_param_is_an_error_status(tmp_path):
    run = run_campaign(make_spec([synth("s0", fail=True)]),
                       out_dir=tmp_path / "out")
    rec = run.record("s0")
    assert rec.status == "error" and not run.ok
    assert "synthetic failure" in rec.volatile["error"]


# -- parallel/serial parity ----------------------------------------------


def test_wide_dag_parity_and_both_ran(tmp_path):
    stages = [synth(f"s{i}", value=float(i), dwell_ms=20.0)
              for i in range(5)]
    stages.append(synth("join", needs=[s["id"] for s in stages]))
    ser, par = run_both(stages)
    assert stripped(ser) == stripped(par)
    assert all(s["status"] == "ok" for s in par["stages"])


def test_abort_drains_in_flight_and_skips_like_serial():
    # s0 fails *slowly*; s1 is independent and finishes first.  The
    # serial oracle never reaches s1 (abort), so the parallel run must
    # record s1 as skipped even though it actually completed.
    stages = [
        synth("s0", dwell_ms=150.0, fail=True),
        synth("s1", dwell_ms=5.0),
        synth("s2", needs=["s0"]),
    ]
    ser, par = run_both(stages, on_fail="abort")
    assert stripped(ser) == stripped(par)
    by_id = {s["id"]: s for s in par["stages"]}
    assert by_id["s0"]["status"] == "error"
    assert by_id["s1"]["status"] == "skipped"
    assert by_id["s2"]["status"] == "skipped"


def test_abort_still_runs_stages_before_the_failure():
    # s0 is slow but OK; s1 fails fast.  Serial runs s0 first (it
    # precedes the failure in topo order), so parallel must too.
    stages = [
        synth("s0", dwell_ms=120.0),
        synth("s1", dwell_ms=5.0, fail=True),
        synth("s2", dwell_ms=5.0),
    ]
    ser, par = run_both(stages, on_fail="abort")
    assert stripped(ser) == stripped(par)
    by_id = {s["id"]: s for s in par["stages"]}
    assert by_id["s0"]["status"] == "ok"
    assert by_id["s1"]["status"] == "error"
    assert by_id["s2"]["status"] == "skipped"


def test_continue_skips_only_transitive_dependents():
    stages = [
        synth("root", fail=True),
        synth("child", needs=["root"]),
        synth("grandchild", needs=["child"]),
        synth("free", dwell_ms=10.0),
        synth("failcheck", bad_check=True),
    ]
    ser, par = run_both(stages, on_fail="continue")
    assert stripped(ser) == stripped(par)
    by_id = {s["id"]: s for s in par["stages"]}
    assert by_id["root"]["status"] == "error"
    assert by_id["child"]["status"] == "skipped"
    assert by_id["grandchild"]["status"] == "skipped"
    assert by_id["free"]["status"] == "ok"
    assert by_id["failcheck"]["status"] == "failed"


def test_resume_across_execution_modes(tmp_path):
    # A serial run warms the stage store; a threads re-run of the same
    # tree resumes every stage (same keys, same fingerprint).
    spec = make_spec([synth("s0"), synth("s1", needs=["s0"])])
    first = run_campaign(spec, out_dir=tmp_path / "out",
                         execution="serial")
    second = run_campaign(spec, out_dir=tmp_path / "out",
                          execution="threads")
    assert first.ok and second.ok
    for sid in ("s0", "s1"):
        assert not first.record(sid).resumed
        assert second.record(sid).resumed
        assert second.record(sid).payload == first.record(sid).payload


# -- the property test ----------------------------------------------------


@st.composite
def random_dags(draw):
    """A random campaign: random needs edges, random failure and
    failed-check placement, random dwells, random on_fail."""
    n = draw(st.integers(min_value=1, max_value=5))
    stages = []
    for i in range(n):
        needs = [f"s{j}" for j in range(i)
                 if draw(st.booleans())]
        stages.append(synth(
            f"s{i}",
            needs=needs,
            value=float(draw(st.integers(0, 99))),
            dwell_ms=float(draw(st.sampled_from([0, 5, 20]))),
            fail=draw(st.integers(0, 9)) == 0,
            bad_check=draw(st.integers(0, 9)) == 0,
        ))
    on_fail = draw(st.sampled_from(["abort", "continue"]))
    return stages, on_fail


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_dags())
def test_random_dag_manifests_bit_identical(dag):
    stages, on_fail = dag
    ser, par = run_both(stages, on_fail=on_fail)
    assert stripped(ser) == stripped(par)
    # Skip/abort sets match exactly, not just payloads.
    assert [(s["id"], s["status"]) for s in ser["stages"]] \
        == [(s["id"], s["status"]) for s in par["stages"]]


# -- service execution ----------------------------------------------------


def test_service_execution_matches_serial(tmp_path):
    from repro.campaign import diff_campaign

    spec = make_spec([synth("s0", value=3.0),
                      synth("s1", needs=["s0"], value=4.0)])
    ser = run_campaign(spec, out_dir=tmp_path / "ser",
                       execution="serial")
    svc = run_campaign(spec, out_dir=tmp_path / "svc",
                       execution="service")
    assert ser.ok and svc.ok
    report = diff_campaign(tmp_path / "svc", tmp_path / "ser",
                           float_tol=0.0)
    assert report.ok, [str(d) for d in report.divergences]
    # The road taken is recorded: each executed stage names the shard
    # fleet that served it.
    assert svc.record("s0").volatile["service"]["address"]


# -- stats-log compaction -------------------------------------------------


def test_stats_log_compacts_and_preserves_totals(tmp_path, monkeypatch):
    import repro.runtime.cache as C

    monkeypatch.setattr(C, "_STATS_COMPACT_LINES", 4)
    root = tmp_path / "cache"
    total = 40
    for i in range(total):
        cache = C.ResultCache(root)
        cache._count(hits=1, misses=2)
        cache.flush_stats()
    log = root / C.STATS_LOG_NAME
    lines = log.read_bytes().splitlines()
    # Bounded: compaction keeps the log near the threshold instead of
    # one line per flush.
    assert len(lines) <= 4 + 1 < total
    # Invariant: the fold never loses a count.
    stats = C.ResultCache(root).lifetime_stats()
    assert stats == {"hits": total, "misses": 2 * total, "errors": 0}


_WRITER = """
import sys
import repro.runtime.cache as C
C._STATS_COMPACT_LINES = 4
root = sys.argv[1]
for _ in range(30):
    cache = C.ResultCache(root)
    cache._count(hits=1, misses=1, errors=1)
    cache.flush_stats()
"""


def test_stats_log_compaction_is_cross_process_safe(tmp_path):
    """Concurrent flushers in separate processes, each folding at a
    tiny threshold: the flock must serialize append+fold so no
    process's deltas are lost and no torn line survives."""
    root = tmp_path / "cache"
    n_procs = 4
    procs = [
        subprocess.Popen([sys.executable, "-c", _WRITER, str(root)])
        for _ in range(n_procs)
    ]
    for p in procs:
        assert p.wait(timeout=120) == 0
    import repro.runtime.cache as C

    stats = C.ResultCache(root).lifetime_stats()
    expect = n_procs * 30
    assert stats == {"hits": expect, "misses": expect,
                     "errors": expect}
