"""Property-based tests over the newer subsystems."""

import functools
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.converter_metrics import linearity
from repro.analysis.thermometer import ThermometerWord
from repro.core.autorange import AutoRangingMeter
from repro.core.calibration import paper_design
from repro.core.characterization import characterize_bit_thresholds
from repro.core.scan_register import ScanRegisterHarness
from repro.psn.grid import IRDropGrid
from repro.runtime import ResultCache


# -- scan register: capture/shift is exact reversal ---------------------------

@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=2, max_size=10))
def test_scan_roundtrip_any_pattern(bits):
    design = paper_design()
    harness = ScanRegisterHarness(design, len(bits))
    assert harness.capture_and_shift(bits) == list(reversed(bits))


# -- auto-ranging: always converges inside the total dynamic -------------------

@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.65, max_value=1.65))
def test_autorange_brackets_any_interior_level(v):
    design = paper_design()
    meter = AutoRangingMeter(design, max_attempts=8)
    lo, hi = meter.total_dynamic()
    result = meter.measure_level(vdd_n=v)
    if lo + 0.01 < v < hi - 0.01:
        assert not result.saturated
        assert result.decoded.lo - 1e-6 < v <= result.decoded.hi + 1e-6


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.3, max_value=2.2))
def test_autorange_never_crashes_and_flags_saturation(v):
    design = paper_design()
    meter = AutoRangingMeter(design, max_attempts=8)
    lo, hi = meter.total_dynamic()
    result = meter.measure_level(vdd_n=v)
    if v <= lo:
        assert result.saturated and result.code == 7
    elif v > hi:
        assert result.saturated and result.code == 0


# -- IR grid: physics properties -------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.1, max_value=5.0),
       st.integers(min_value=0, max_value=24))
def test_grid_superposition(scale, tile):
    grid = IRDropGrid(rows=5, cols=5)
    base = np.zeros(25)
    base[tile] = 1.0
    drop1 = grid.vdd - grid.solve(base)
    dropk = grid.vdd - grid.solve(scale * base)
    assert np.allclose(dropk, scale * drop1, rtol=1e-9, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=24))
def test_grid_voltages_never_exceed_pad(tile):
    grid = IRDropGrid(rows=5, cols=5)
    currents = np.zeros(25)
    currents[tile] = 2.0
    v = grid.solve(currents)
    assert np.all(v <= grid.vdd + 1e-12)
    assert v.flat[tile] == pytest.approx(v.min())


# -- converter metrics: invariances ---------------------------------------------

ladders = st.lists(
    st.floats(min_value=0.5, max_value=1.5), min_size=3, max_size=12,
    unique=True,
).map(sorted).filter(
    lambda xs: min(b - a for a, b in zip(xs, xs[1:])) > 1e-4
)


@given(ladders)
def test_endpoint_inl_zero_at_endpoints(ladder):
    rep = linearity(ladder)
    assert rep.inl[0] == pytest.approx(0.0, abs=1e-9)
    assert rep.inl[-1] == pytest.approx(0.0, abs=1e-9)


@given(ladders)
def test_dnl_sums_to_zero(ladder):
    """Endpoint-referred DNL always sums to ~0 (the steps must span
    the range)."""
    rep = linearity(ladder)
    assert sum(rep.dnl) == pytest.approx(0.0, abs=1e-6)


@given(ladders, st.floats(min_value=1e-4, max_value=0.05))
def test_shift_invariance_of_metrics(ladder, shift):
    a = linearity(ladder)
    b = linearity([x + shift for x in ladder])
    assert a.max_dnl == pytest.approx(b.max_dnl, abs=1e-9)
    assert a.max_inl == pytest.approx(b.max_inl, abs=1e-9)


# -- runtime paths preserve the characterization invariants -------------------

@functools.lru_cache(maxsize=None)
def _runtime_ladder(code):
    """One code's sim ladder via every runtime path, checked equal.

    Computes the sim-method thresholds directly, through a process
    pool, and through a cold-then-warm cache; asserts all four are
    bit-identical and returns the ladder for the property tests below.
    """
    design = paper_design()
    direct = characterize_bit_thresholds(design, code, method="sim")
    parallel = characterize_bit_thresholds(design, code, method="sim",
                                           workers=2)
    with tempfile.TemporaryDirectory() as td:
        cache = ResultCache(td)
        cold = characterize_bit_thresholds(design, code, method="sim",
                                           cache=cache)
        warm = characterize_bit_thresholds(design, code, method="sim",
                                           workers=2, cache=cache)
        assert cache.hits == design.n_bits  # warm pass was all hits
    assert direct == parallel == cold == warm
    return direct


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=7))
def test_threshold_ordering_holds_on_runtime_paths(code):
    """Strictly increasing per-bit thresholds — the property the
    thermometer's decode rests on — survives pooling and caching."""
    ladder = _runtime_ladder(code)
    assert all(b > a for a, b in zip(ladder, ladder[1:]))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=7),
       st.floats(min_value=0.6, max_value=1.3),
       st.floats(min_value=0.6, max_value=1.3))
def test_thermometer_words_monotone_on_runtime_paths(code, va, vb):
    """Words read off a pooled/cached ladder are valid thermometer
    codes whose ones-count is monotone in the applied supply."""
    ladder = _runtime_ladder(code)
    lo, hi = sorted((va, vb))
    w_lo = ThermometerWord(tuple(1 if lo > t else 0 for t in ladder))
    w_hi = ThermometerWord(tuple(1 if hi > t else 0 for t in ladder))
    assert w_lo.is_valid_thermometer and w_hi.is_valid_thermometer
    assert w_lo.ones <= w_hi.ones


# -- thermometer/encoder duality ---------------------------------------------------

@given(st.integers(min_value=0, max_value=7))
def test_word_of_count_roundtrip(k):
    """count -> canonical word -> count is the identity."""
    word = ThermometerWord(tuple(1 if i < k else 0 for i in range(7)))
    assert word.ones == k
    assert word.corrected() == word
