"""repro.runtime: parallel/cached sweeps are bit-identical to serial.

The runtime layer's whole contract is "faster, never different":
process-pool fan-out must return exactly the serial results, and the
on-disk cache must only ever short-circuit work it has proven it
already did — including surviving corrupt entries and invalidating
when the design changes.
"""

import os
import pickle

import pytest

from benchmarks.bench_fig4_threshold_vs_cap import SIM_CAPS, run_fig4_sim
from repro.analysis.repeatability import extract_ladder_via_s_curves
from repro.analysis.yield_study import run_yield_study
from repro.core.characterization import (
    characterize_array,
    characterize_bit_thresholds,
    threshold_vs_capacitance,
)
from repro.devices.variation import VariationModel
from repro.errors import ConfigurationError
from repro.runtime import (
    ResultCache,
    cached_map,
    default_cache_dir,
    design_fingerprint,
    env_workers,
    map_tasks,
    resolve_cache,
    resolve_workers,
    stable_hash,
    task_key,
)

WORKERS = 4


# -- executor primitives ------------------------------------------------------

def test_resolve_workers_serial_aliases():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(-1) >= 1  # all cores


def test_env_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert env_workers() is None
    assert env_workers(2) == 2
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert env_workers() == 6
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    with pytest.raises(ConfigurationError):
        env_workers()


def test_map_tasks_preserves_order():
    assert map_tasks(_square, range(20)) == [k * k for k in range(20)]
    assert map_tasks(_square, range(20), workers=WORKERS) == \
        [k * k for k in range(20)]
    assert map_tasks(_square, [], workers=WORKERS) == []


def _square(x):
    return x * x


def test_cached_map_requires_matching_keys(tmp_path):
    with pytest.raises(ConfigurationError):
        cached_map(_square, [1, 2, 3], keys=["only-one"],
                   cache=ResultCache(tmp_path))


# -- stable hashing -----------------------------------------------------------

def test_stable_hash_discriminates():
    assert stable_hash((1, 2.0)) == stable_hash((1, 2.0))
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash((1, 2)) != stable_hash((1.0, 2.0))
    assert stable_hash("ab") != stable_hash(("a", "b"))
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})


def test_stable_hash_rejects_opaque_objects():
    with pytest.raises(ConfigurationError):
        stable_hash(object())


def test_design_fingerprint_tracks_design_changes(design):
    fp = design_fingerprint(design)
    assert fp == design_fingerprint(design)
    probe = design.with_load_caps((2.0e-12,))
    assert design_fingerprint(probe) != fp


def test_task_key_separates_families_and_parts():
    assert task_key("a", 1) != task_key("b", 1)
    assert task_key("a", 1) != task_key("a", 2)
    assert task_key("a", 1) == task_key("a", 1)


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    assert default_cache_dir() == tmp_path / "c"
    assert ResultCache().root == tmp_path / "c"


def test_cache_dir_must_not_be_a_file(tmp_path):
    clash = tmp_path / "not-a-dir"
    clash.write_text("")
    with pytest.raises(ConfigurationError):
        ResultCache(clash)


def test_resolve_cache_forms(tmp_path):
    assert resolve_cache(None) is None
    cache = ResultCache(tmp_path)
    assert resolve_cache(cache) is cache
    assert resolve_cache(tmp_path).root == tmp_path


# -- serial vs parallel equivalence -------------------------------------------

def test_sim_thresholds_parallel_identical_to_serial(design):
    serial = characterize_bit_thresholds(design, 3, method="sim",
                                         workers=1)
    parallel = characterize_bit_thresholds(design, 3, method="sim",
                                           workers=WORKERS)
    assert parallel == serial  # bit-identical, not approx


def test_characterize_array_parallel_identical(design):
    serial = characterize_array(design, codes=(2, 3), method="sim")
    parallel = characterize_array(design, codes=(2, 3), method="sim",
                                  workers=WORKERS)
    assert parallel == serial


def test_threshold_vs_cap_parallel_identical(design):
    serial = threshold_vs_capacitance(design, list(SIM_CAPS),
                                      method="sim")
    parallel = threshold_vs_capacitance(design, list(SIM_CAPS),
                                        method="sim", workers=WORKERS)
    assert parallel == serial


def test_yield_study_parallel_identical_to_serial(design):
    model = VariationModel()
    serial = run_yield_study(design, model, n_dies=10, seed=11,
                             workers=1)
    parallel = run_yield_study(design, model, n_dies=10, seed=11,
                               workers=WORKERS)
    assert parallel == serial  # the full YieldReport, bit-identical


def test_s_curve_ladder_parallel_identical(design):
    serial = extract_ladder_via_s_curves(design, n_per_level=30)
    parallel = extract_ladder_via_s_curves(design, n_per_level=30,
                                           workers=WORKERS)
    assert parallel == serial


# -- memoization --------------------------------------------------------------

def test_cache_hit_returns_identical_results(design, tmp_path):
    cache = ResultCache(tmp_path)
    cold = characterize_bit_thresholds(design, 3, method="sim",
                                       cache=cache)
    assert cache.hits == 0 and cache.misses == design.n_bits
    warm = characterize_bit_thresholds(design, 3, method="sim",
                                       cache=cache)
    assert warm == cold
    assert cache.hits == design.n_bits
    assert cache.misses == design.n_bits  # no new misses


def test_cache_entries_shared_across_entry_points(design, tmp_path):
    """characterize_array reuses characterize_bit_thresholds entries:
    the key is the task, not the calling API."""
    cache = ResultCache(tmp_path)
    characterize_bit_thresholds(design, 3, method="sim", cache=cache)
    characterize_array(design, codes=(3,), method="sim", cache=cache)
    assert cache.hits == design.n_bits


def test_cache_invalidates_on_design_change(design, tmp_path):
    cache = ResultCache(tmp_path)
    threshold_vs_capacitance(design, [2.0e-12], method="sim",
                             cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    # A different trim cap produces a different probe design, hence a
    # different fingerprint: the cache must miss, not serve stale data.
    threshold_vs_capacitance(design, [2.1e-12], method="sim",
                             cache=cache)
    assert (cache.hits, cache.misses) == (0, 2)
    # Changing the bisection tolerance also changes the key.
    threshold_vs_capacitance(design, [2.0e-12], method="sim",
                             tol=0.25e-3, cache=cache)
    assert (cache.hits, cache.misses) == (0, 3)


def test_corrupt_cache_entry_recomputes(design, tmp_path):
    cache = ResultCache(tmp_path)
    cold = characterize_bit_thresholds(design, 3, method="sim",
                                       cache=cache)
    entries = cache.entries()
    assert len(entries) == design.n_bits
    entries[0].write_bytes(b"\x00not a pickle")  # truncate/garble one
    fresh = ResultCache(tmp_path)
    again = characterize_bit_thresholds(design, 3, method="sim",
                                        cache=fresh)
    assert again == cold
    assert fresh.errors == 1
    assert fresh.hits == design.n_bits - 1
    assert fresh.misses == 1  # only the corrupt entry recomputed
    # ... and the bad entry was healed on disk:
    healed = ResultCache(tmp_path)
    characterize_bit_thresholds(design, 3, method="sim", cache=healed)
    assert healed.errors == 0 and healed.hits == design.n_bits


def test_cache_put_is_atomic(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", (1.0, 2.0))
    assert [p.suffix for p in tmp_path.iterdir()] == [".pkl"]
    hit, value = cache.get("k")
    assert hit and value == (1.0, 2.0)


def test_cache_clear_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    for k in range(3):
        cache.put(f"k{k}", k)
    stats = cache.stats()
    assert stats["entries"] == 3 and stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


def test_yield_study_cache_roundtrip(design, tmp_path):
    model = VariationModel()
    cache = ResultCache(tmp_path)
    cold = run_yield_study(design, model, n_dies=8, seed=11,
                           cache=cache)
    warm = run_yield_study(design, model, n_dies=8, seed=11,
                           cache=cache)
    assert warm == cold
    assert cache.hits == 8
    # A different seed is a different lot: full miss.
    run_yield_study(design, model, n_dies=8, seed=12, cache=cache)
    assert cache.misses == 16


# -- the acceptance criterion: warm bench does zero bisections ----------------

def test_fig4_bench_warm_cache_runs_zero_bisections(
        design, tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    cold = run_fig4_sim(design, cache=cache)
    assert cache.misses == len(SIM_CAPS)

    # Prove "zero bisection simulations", not just "mostly cached":
    # detonate if any threshold bisection actually runs.
    import repro.core.characterization as chz

    def _boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("bisection ran on a warm cache")

    monkeypatch.setattr(chz, "_sim_threshold_task", _boom)
    warm_cache = ResultCache(tmp_path)
    warm = run_fig4_sim(design, cache=warm_cache)
    assert warm == cold
    assert warm_cache.hits == len(SIM_CAPS)
    assert warm_cache.misses == 0


# -- payloads stay picklable (the pool's wire format) -------------------------

def test_design_and_report_payloads_pickle(design):
    model = VariationModel()
    sample = model.sample_die(design.n_bits, seed=3)
    report = run_yield_study(design, model, n_dies=2, seed=3)
    for obj in (design, sample, report):
        assert pickle.loads(pickle.dumps(obj)) == obj


def test_workers_env_drives_bench_helpers(design, monkeypatch,
                                          tmp_path):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    via_env = run_fig4_sim(design)
    assert via_env == run_fig4_sim(design, workers=1)
    assert os.listdir(tmp_path) == []  # env workers, explicit cache only
