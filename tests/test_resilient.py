"""The fault-tolerant sweep runtime, exercised fault by fault.

Covers the resilient engine (retries, backoff determinism, failure
policies, crash recovery, per-task timeouts), the incremental cache
persistence of both executor paths, cache robustness under concurrent
writers and torn entries, graceful degradation on unwritable cache
dirs, and the CLI plumbing of the resilience flags.

Worker-kill and timeout tests use the seeded chaos primitives from
:mod:`repro.runtime.chaos`; everything is deterministic and bounded.
"""

from __future__ import annotations

import argparse
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runtime import (
    ChaosMonkey,
    KillOnceTask,
    MapOutcome,
    ResultCache,
    RetryPolicy,
    SleepyTask,
    cached_map,
    map_tasks,
    resilient_cached_map,
    resilient_map,
    resolve_cache,
    task_key,
)
from repro.runtime.chaos import enumerate_for
from repro.runtime.resilient import _jitter_fraction


# -- module-level task functions (picklable for the pool path) ---------------

def _square(x):
    return x * x


def _always_fails(x):
    raise ValueError(f"boom {x}")


def _fails_for_two(x):
    if x == 2:
        raise ValueError("two is cursed")
    return x * 10


def _flaky(arg):
    """Fail once per marker, succeed on the retry."""
    marker, x = arg
    p = Path(marker)
    if not p.exists():
        p.touch()
        raise ValueError("first attempt fails")
    return x * x


def _race_put(arg):
    """Hammer one cache key from a separate process."""
    root, key, value, rounds = arg
    cache = ResultCache(root)
    for _ in range(rounds):
        cache.put(key, value)
    return value


# -- RetryPolicy -------------------------------------------------------------

def test_jitter_fraction_bounded_and_deterministic():
    for i in range(5):
        for a in range(1, 4):
            f = _jitter_fraction(i, a)
            assert 0.0 <= f < 1.0
            assert f == _jitter_fraction(i, a)
    assert _jitter_fraction(0, 1) != _jitter_fraction(1, 1)


def test_retry_policy_delay_is_deterministic_and_grows():
    p = RetryPolicy(retries=3, backoff_base=0.1)
    assert p.delay(2, 1) == p.delay(2, 1)
    assert p.delay(0, 2) > p.delay(0, 1)
    base2 = 0.1 * 2.0  # attempt 2
    assert base2 <= p.delay(0, 2) <= base2 * 1.5


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(retries=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(task_timeout=0.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=-0.1)


# -- resilient_map: happy paths ----------------------------------------------

def test_resilient_map_matches_plain_map_serial_and_pool():
    items = list(range(8))
    expect = [x * x for x in items]
    serial = resilient_map(_square, items)
    pooled = resilient_map(_square, items, workers=2)
    assert serial.results == expect == pooled.results
    assert serial.ok and pooled.ok
    assert serial.stats.completed == len(items)


def test_resilient_map_empty_batch():
    out = resilient_map(_square, [])
    assert out.results == [] and out.ok


def test_serial_retry_recovers_flaky_task(tmp_path):
    items = [(str(tmp_path / f"m{i}"), i) for i in range(4)]
    out = resilient_map(_flaky, items, retries=1,
                        policy=RetryPolicy(retries=1, backoff_base=0.0))
    assert out.results == [0, 1, 4, 9]
    assert out.ok
    assert out.stats.retries == 4


def test_pool_retry_identical_to_serial(tmp_path):
    serial_items = [(str(tmp_path / f"s{i}"), i) for i in range(6)]
    pool_items = [(str(tmp_path / f"p{i}"), i) for i in range(6)]
    policy = RetryPolicy(retries=2, backoff_base=0.0)
    serial = resilient_map(_flaky, serial_items, policy=policy)
    pooled = resilient_map(_flaky, pool_items, workers=3, policy=policy)
    assert serial.results == pooled.results == [0, 1, 4, 9, 16, 25]


def test_on_result_streams_in_completion_order():
    seen = []
    out = resilient_map(_square, [1, 2, 3],
                        on_result=lambda i, v: seen.append((i, v)))
    assert out.ok
    assert sorted(seen) == [(0, 1), (1, 4), (2, 9)]


# -- failure policies ---------------------------------------------------------

def test_raise_without_retries_propagates_original_exception():
    with pytest.raises(ValueError, match="two is cursed"):
        resilient_map(_fails_for_two, [1, 2, 3])
    # The plain executor path behaves identically.
    with pytest.raises(ValueError, match="two is cursed"):
        map_tasks(_fails_for_two, [1, 2, 3])


def test_raise_with_retries_wraps_as_retry_exhausted():
    with pytest.raises(RetryExhaustedError) as info:
        resilient_map(_always_fails, [7],
                      policy=RetryPolicy(retries=2, backoff_base=0.0))
    assert isinstance(info.value.__cause__, ValueError)


def test_partial_policy_records_structured_failures():
    out = resilient_map(_fails_for_two, [1, 2, 3],
                        failure_policy="partial",
                        keys=["k1", "k2", "k3"])
    assert isinstance(out, MapOutcome)
    assert out.results == [10, None, 30]
    assert not out.ok
    (failure,) = out.failures
    assert failure.index == 1
    assert failure.kind == "error"
    assert failure.error_type == "ValueError"
    assert failure.attempts == 1
    assert failure.key == "k2"
    assert out.stats.failures == 1


def test_invalid_failure_policy_and_key_mismatch():
    with pytest.raises(ConfigurationError):
        resilient_map(_square, [1], failure_policy="ignore")
    with pytest.raises(ConfigurationError):
        resilient_map(_square, [1, 2], keys=["only-one"])


def test_map_tasks_partial_returns_outcome():
    out = map_tasks(_fails_for_two, [1, 2, 3], failure_policy="partial")
    assert isinstance(out, MapOutcome)
    assert out.results == [10, None, 30]


# -- worker crashes -----------------------------------------------------------

def test_crash_recovery_rebuilds_pool_and_completes(tmp_path):
    killer = KillOnceTask(fn=_square, kill_indices=frozenset({2}),
                          marker_dir=str(tmp_path))
    out = resilient_map(killer, enumerate_for(range(6)), workers=2,
                        policy=RetryPolicy(retries=2, backoff_base=0.0))
    assert out.results == [0, 1, 4, 9, 16, 25]
    assert out.stats.crashes >= 1
    assert out.stats.pool_rebuilds >= 1


def test_crash_without_retries_raises_worker_crash_error(tmp_path):
    killer = KillOnceTask(fn=_square, kill_indices=frozenset({0}),
                          marker_dir=str(tmp_path))
    with pytest.raises(WorkerCrashError):
        resilient_map(killer, enumerate_for(range(2)), workers=2)


# -- per-task timeouts --------------------------------------------------------

def test_timeout_partial_marks_stuck_task(tmp_path):
    sleepy = SleepyTask(fn=_square, stuck_indices=frozenset({1}),
                        marker_dir=str(tmp_path), sleep_s=60.0)
    out = resilient_map(sleepy, enumerate_for(range(3)), workers=2,
                        task_timeout=1.0, failure_policy="partial")
    assert out.results[0] == 0 and out.results[2] == 4
    assert out.results[1] is None
    (failure,) = out.failures
    assert failure.kind == "timeout" and failure.index == 1
    assert out.stats.timeouts == 1


def test_timeout_raise_path(tmp_path):
    sleepy = SleepyTask(fn=_square, stuck_indices=frozenset({0}),
                        marker_dir=str(tmp_path), sleep_s=60.0)
    with pytest.raises(TaskTimeoutError):
        resilient_map(sleepy, enumerate_for(range(1)), task_timeout=0.5)


def test_timeout_retry_succeeds_after_stall(tmp_path):
    # The stall is armed once: the retry completes within the deadline.
    sleepy = SleepyTask(fn=_square, stuck_indices=frozenset({0}),
                        marker_dir=str(tmp_path), sleep_s=60.0)
    out = resilient_map(sleepy, enumerate_for(range(2)), workers=2,
                        task_timeout=1.5,
                        policy=RetryPolicy(retries=1, task_timeout=1.5,
                                           backoff_base=0.0))
    assert out.results == [0, 1]
    assert out.stats.timeouts == 1


# -- incremental persistence (satellite: no all-or-nothing writes) -----------

def test_fast_path_cached_map_persists_completed_prefix(tmp_path):
    cache = ResultCache(tmp_path / "c")
    keys = [task_key("t", i) for i in range(4)]
    with pytest.raises(ValueError):
        cached_map(_fails_for_two, [0, 1, 2, 3], keys=keys, cache=cache)
    # Items before the failure were already persisted, not rolled back.
    assert cache.get(keys[0]) == (True, 0)
    assert cache.get(keys[1]) == (True, 10)
    assert cache.get(keys[2]) == (False, None)


def test_resilient_cached_map_persists_around_failures(tmp_path):
    cache = ResultCache(tmp_path / "c")
    keys = [task_key("t", i) for i in range(4)]
    out = resilient_cached_map(_fails_for_two, [0, 1, 2, 3], keys=keys,
                               cache=cache, failure_policy="partial")
    assert out.results == [0, 10, None, 30]
    assert len(cache.entries()) == 3
    # Warm rerun: the survivors come from disk, only the failure
    # is recomputed.
    cache2 = ResultCache(cache.root)
    out2 = resilient_cached_map(_fails_for_two, [0, 1, 2, 3], keys=keys,
                                cache=cache2, failure_policy="partial")
    assert out2.stats.cache_hits == 3
    assert out2.stats.cache_misses == 1


def test_resilient_cached_map_warm_run_computes_nothing(tmp_path):
    cache = ResultCache(tmp_path / "c")
    keys = [task_key("t", i) for i in range(5)]
    resilient_cached_map(_square, range(5), keys=keys, cache=cache)
    warm = ResultCache(cache.root)
    out = resilient_cached_map(_square, range(5), keys=keys, cache=warm)
    assert out.results == [0, 1, 4, 9, 16]
    assert out.stats.cache_hits == 5
    assert out.stats.tasks == 0


# -- concurrent writers and torn entries (satellite) -------------------------

def test_concurrent_processes_racing_same_key_never_tear(tmp_path):
    root = str(tmp_path / "c")
    key = task_key("race", 1)
    with ProcessPoolExecutor(max_workers=2) as pool:
        list(pool.map(_race_put, [
            (root, key, "aaaa" * 100, 50),
            (root, key, "bbbb" * 100, 50),
        ]))
    cache = ResultCache(root)
    hit, value = cache.get(key)
    assert hit
    # Atomic replace: whichever writer won, the entry is whole.
    assert value in ("aaaa" * 100, "bbbb" * 100)
    assert cache.errors == 0


def test_truncated_mid_write_entry_recovers(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = task_key("torn", 1)
    cache.put(key, list(range(100)))
    path = cache.entries()[0]
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # killed writer
    hit, _ = cache.get(key)
    assert not hit
    assert cache.errors == 1
    assert not path.exists()  # the torn file was discarded
    cache.put(key, list(range(100)))  # heals
    assert cache.get(key) == (True, list(range(100)))


@pytest.mark.parametrize("mode", ChaosMonkey.CORRUPTION_MODES)
def test_every_corruption_mode_reads_as_miss(tmp_path, mode):
    cache = ResultCache(tmp_path / "c")
    key = task_key("vandal", mode)
    cache.put(key, {"mode": mode})
    ChaosMonkey(7).corrupt_cache(cache, n_entries=1, mode=mode)
    hit, _ = cache.get(key)
    assert not hit and cache.errors == 1


def test_chaos_monkey_is_seeded_and_validates(tmp_path):
    assert ChaosMonkey(5).pick(10, 3) == ChaosMonkey(5).pick(10, 3)
    with pytest.raises(ConfigurationError):
        ChaosMonkey().pick(3, 4)
    cache = ResultCache(tmp_path / "c")
    with pytest.raises(ConfigurationError):
        ChaosMonkey().corrupt_cache(cache, n_entries=1)
    cache.put(task_key("x"), 1)
    with pytest.raises(ConfigurationError):
        ChaosMonkey().corrupt_cache(cache, mode="nuke")


# -- unusable cache dirs (satellite: degrade, don't crash) -------------------

def _unusable_dir(tmp_path) -> Path:
    """A path that can never become a directory (nested under a file).

    Permission bits are useless here (the suite may run as root), so
    unusability is simulated structurally.
    """
    blocker = tmp_path / "blocker"
    blocker.write_text("in the way")
    return blocker / "sub"


def test_put_disables_itself_on_unwritable_dir(tmp_path):
    cache = ResultCache(_unusable_dir(tmp_path))
    with pytest.warns(RuntimeWarning, match="not writable"):
        cache.put(task_key("k"), 123)
    assert cache.disabled
    assert cache.errors == 1
    cache.put(task_key("k2"), 456)  # no second warning, no crash
    assert cache.stats()["disabled"] is True


def test_resolve_cache_strict_false_falls_back_to_uncached(tmp_path):
    bad = _unusable_dir(tmp_path)
    with pytest.warns(RuntimeWarning, match="running uncached"):
        assert resolve_cache(bad, strict=False) is None
    with pytest.raises(OSError):
        resolve_cache(bad, strict=True).check_usable()
    # A usable dir passes through either way.
    good = tmp_path / "good"
    assert resolve_cache(good, strict=False).root == good


def test_sweep_survives_unwritable_cache(tmp_path):
    cache = ResultCache(_unusable_dir(tmp_path))
    keys = [task_key("t", i) for i in range(3)]
    with pytest.warns(RuntimeWarning):
        results = cached_map(_square, range(3), keys=keys, cache=cache)
    assert results == [0, 1, 4]


# -- CLI plumbing -------------------------------------------------------------

def test_runtime_kwargs_carry_resilience_flags():
    from repro.cli import _runtime_kwargs

    ns = argparse.Namespace(workers=3, cache_dir=None, retries=2,
                            task_timeout=1.5, failure_policy="partial")
    kw = _runtime_kwargs(ns)
    assert kw["workers"] == 3
    assert kw["retries"] == 2
    assert kw["task_timeout"] == 1.5
    assert kw["failure_policy"] == "partial"


def test_cli_accepts_resilience_flags(capsys):
    from repro.cli import main

    assert main(["fig5", "--codes", "3", "--retries", "1",
                 "--task-timeout", "30", "--failure-policy",
                 "partial"]) == 0
    assert "delay code 011" in capsys.readouterr().out


def test_cli_unusable_cache_dir_degrades(tmp_path, capsys):
    from repro.cli import main

    bad = _unusable_dir(tmp_path)
    with pytest.warns(RuntimeWarning, match="running uncached"):
        assert main(["fig5", "--codes", "3",
                     "--cache-dir", str(bad)]) == 0


# -- characterization / yield plumbing ---------------------------------------

def test_characterize_partial_masks_failed_bits(design, monkeypatch):
    """A bit whose bisection keeps failing is masked, not fatal."""
    import repro.core.characterization as ch

    real = ch._sim_threshold_task

    def sabotaged(spec):
        if spec[1] == 3:  # bit 3 always fails
            raise ValueError("injected bisection failure")
        return real(spec)

    monkeypatch.setattr(ch, "_sim_threshold_task", sabotaged)
    out = ch.characterize_array(
        design, codes=(3,), method="sim", tol=5e-3,
        failure_policy="partial",
    )
    char = out[3]
    assert char.masked_bits == (3,)
    assert len(char.thresholds) == design.n_bits - 1
    assert all(b > a for a, b in zip(char.thresholds,
                                     char.thresholds[1:]))


def test_outcome_pickles():
    out = resilient_map(_fails_for_two, [1, 2], failure_policy="partial")
    clone = pickle.loads(pickle.dumps(out))
    assert clone.results == out.results
    assert clone.failures == out.failures
