"""Multi-bit thermometer array tests."""

import pytest

from repro.analysis.thermometer import ThermometerWord
from repro.core.array import SensorArray, SensorArrayHarness
from repro.core.sensor import SenseRail
from repro.devices.variation import VariationModel
from repro.errors import ConfigurationError
from repro.sim.waveform import StepWaveform
from repro.units import NS


@pytest.fixture()
def arr(design):
    return SensorArray(design)


def test_paper_words_code011(arr):
    assert arr.word_for(3, vdd_n=1.00) == "0011111"
    assert arr.word_for(3, vdd_n=0.90) == "0000011"


def test_word_all_pass_above_range(arr):
    assert arr.word_for(3, vdd_n=1.10) == "1111111"


def test_word_all_fail_below_range(arr):
    assert arr.word_for(3, vdd_n=0.80) == "0000000"


def test_words_monotone_in_supply(arr):
    prev_ones = -1
    for v in (0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10):
        ones = arr.measure(3, vdd_n=v).word.ones
        assert ones >= prev_ones
        prev_ones = ones


def test_words_always_valid_thermometer(arr):
    for v in (0.8, 0.87, 0.93, 0.99, 1.02, 1.08):
        assert arr.measure(3, vdd_n=v).word.is_valid_thermometer


def test_measurable_range_code011(arr):
    lo, hi = arr.measurable_range(3)
    assert lo == pytest.approx(0.827, abs=5e-4)
    assert hi == pytest.approx(1.053, abs=5e-4)


def test_measurable_range_code010(arr):
    lo, hi = arr.measurable_range(2)
    assert lo == pytest.approx(0.951, abs=5e-4)
    assert hi == pytest.approx(1.237, abs=5e-4)


def test_decode_brackets_true_supply(arr):
    for v in (0.86, 0.91, 0.97, 1.01, 1.04):
        m = arr.measure(3, vdd_n=v)
        rng = arr.decode(m.word, 3)
        assert rng.contains(v), f"{v} not in ({rng.lo}, {rng.hi})"


def test_decode_fig9_ranges(arr):
    rng1 = arr.decode(ThermometerWord.from_string("0011111"), 3)
    assert (rng1.lo, rng1.hi) == (
        pytest.approx(0.992, abs=5e-4), pytest.approx(1.021, abs=5e-4)
    )
    rng2 = arr.decode(ThermometerWord.from_string("0000011"), 3)
    assert (rng2.lo, rng2.hi) == (
        pytest.approx(0.896, abs=5e-4), pytest.approx(0.929, abs=5e-4)
    )


def test_gnd_array_decode_in_bounce_terms(design):
    arr = SensorArray(design, SenseRail.GND)
    m = arr.measure(3, gnd_n=0.05)
    rng = arr.decode(m.word, 3)
    assert rng.contains(0.05)


def test_gnd_rail_thresholds_descend_with_bit(design):
    arr = SensorArray(design, SenseRail.GND)
    ts = arr.rail_thresholds(3)
    assert all(b < a for a, b in zip(ts, ts[1:]))


# -- event-driven harness ------------------------------------------------------

def test_sim_array_fig9_words(design):
    h = SensorArrayHarness(design)
    wf = StepWaveform(1.0, 0.9, 7 * NS)
    res = h.run_measures(3, [4 * NS, 10 * NS], vdd_n=wf)
    assert res[0].word.to_string() == "0011111"
    assert res[1].word.to_string() == "0000011"


def test_sim_array_matches_analytic_word(design, arr):
    h = SensorArrayHarness(design)
    for v in (0.87, 0.95, 1.02):
        sim_word = h.measure_once(3, vdd_n=v).word.to_string()
        ana_word = arr.word_for(3, vdd_n=v)
        assert sim_word == ana_word, f"at {v} V"


def test_sim_array_gnd_rail(design):
    h = SensorArrayHarness(design, SenseRail.GND)
    m = h.measure_once(3, gnd_n=0.0)
    ana = SensorArray(design, SenseRail.GND).word_for(3, gnd_n=0.0)
    assert m.word.to_string() == ana


def test_sim_array_with_variation_stays_near_nominal(design):
    var = VariationModel().sample_die(design.n_bits, seed=17)
    h = SensorArrayHarness(design, variation=var)
    m = h.measure_once(3, vdd_n=1.0)
    # Mismatch can move a boundary bit but the count stays close.
    assert abs(m.word.ones - 5) <= 1


def test_sim_array_variation_requires_enough_instances(design):
    var = VariationModel().sample_die(3, seed=1)
    with pytest.raises(ConfigurationError):
        SensorArrayHarness(design, variation=var)


def test_sim_array_corner_matches_analytic(design):
    """Regression: at a process corner the harness must apply the
    corner-realized PG skew, so sim and corner-analytic words agree."""
    from repro.devices.corners import corner_by_name

    for name in ("SS", "FF"):
        tech = corner_by_name(name).apply(design.tech)
        h = SensorArrayHarness(design, tech=tech)
        dec = SensorArray(design, tech=tech)
        sim = h.measure_once(3, vdd_n=0.95).word.to_string()
        ana = dec.word_for(3, vdd_n=0.95)
        assert sim == ana, name
        assert dec.decode(
            h.measure_once(3, vdd_n=0.95).word, 3
        ).contains(0.95)


def test_array_measure_reports_bit_details(arr):
    m = arr.measure(3, vdd_n=1.0)
    assert len(m.bit_measures) == 7
    assert [b.passed for b in m.bit_measures] == [
        True, True, True, True, True, False, False
    ]
