"""ENC and counter tests: behavioural and structural equivalence."""

import itertools

import pytest

from repro.analysis.thermometer import ThermometerWord
from repro.core.counter import (
    MeasurementCounter,
    build_counter_netlist,
    run_counter_netlist,
)
from repro.core.encoder import (
    ThermometerEncoder,
    build_encoder_netlist,
    encode_via_netlist,
)
from repro.errors import ConfigurationError


# -- encoder -----------------------------------------------------------------

def test_encoder_counts_ones():
    enc = ThermometerEncoder(7)
    assert enc.encode(ThermometerWord.from_string("0011111")).oute == 5
    assert enc.encode(ThermometerWord.from_string("0000000")).oute == 0
    assert enc.encode(ThermometerWord.from_string("1111111")).oute == 7


def test_encoder_flags_bubbles():
    enc = ThermometerEncoder(7)
    ok = enc.encode(ThermometerWord.from_string("0011111"))
    bad = enc.encode(ThermometerWord.from_string("0101111"))
    assert ok.valid and not bad.valid
    assert bad.oute == 5  # ones count is bubble-immune


def test_encoder_output_width():
    assert ThermometerEncoder(7).output_width == 3
    assert ThermometerEncoder(15).output_width == 4
    assert ThermometerEncoder(1).output_width == 1


def test_encoder_width_mismatch():
    enc = ThermometerEncoder(7)
    with pytest.raises(ConfigurationError):
        enc.encode(ThermometerWord.from_string("011"))


def test_encoder_oute_bits_lsb_first():
    enc = ThermometerEncoder(7)
    e = enc.encode(ThermometerWord.from_string("0011111"))
    assert e.oute_bits(3) == (1, 0, 1)  # 5 = 0b101


def test_structural_encoder_equivalent_exhaustive(design):
    """All 128 input patterns: netlist ones-counter == behavioural."""
    enc = ThermometerEncoder(7)
    for bits in itertools.product((0, 1), repeat=7):
        w = ThermometerWord(bits)
        assert encode_via_netlist(design, w) == enc.encode(w).oute, bits


def test_structural_encoder_needs_7_bits(design):
    with pytest.raises(ConfigurationError):
        build_encoder_netlist(design.with_load_caps((1e-12, 2e-12)))


# -- counter ------------------------------------------------------------------

def test_counter_increments_and_wraps():
    c = MeasurementCounter(width=3)
    values = [c.tick() for _ in range(10)]
    assert values == [1, 2, 3, 4, 5, 6, 7, 0, 1, 2]


def test_counter_enable_gates():
    c = MeasurementCounter(width=4)
    c.tick()
    c.tick(enable=False)
    assert c.value == 1


def test_counter_load_and_reset():
    c = MeasurementCounter(width=4)
    c.load(13)
    assert c.value == 13
    c.load(16)  # wraps
    assert c.value == 0
    c.load(5)
    c.reset()
    assert c.value == 0


def test_counter_terminal_flag():
    c = MeasurementCounter(width=2)
    assert not c.terminal
    c.load(3)
    assert c.terminal


def test_counter_bits_lsb_first():
    c = MeasurementCounter(width=4)
    c.load(6)
    assert c.bits() == (0, 1, 1, 0)


def test_counter_validation():
    with pytest.raises(ConfigurationError):
        MeasurementCounter(width=0)
    c = MeasurementCounter(width=3)
    with pytest.raises(ConfigurationError):
        c.load(-1)


def test_structural_counter_counts(design):
    values = run_counter_netlist(design, 10, width=4)
    assert values == list(range(1, 11))


def test_structural_counter_wraps(design):
    values = run_counter_netlist(design, 18, width=4)
    assert values[14:18] == [15, 0, 1, 2]


def test_structural_counter_terminal_net(design):
    nl, ports = build_counter_netlist(design, 4)
    assert ports.terminal in nl.nets


def test_structural_counter_width_validated(design):
    with pytest.raises(ConfigurationError):
        build_counter_netlist(design, 1)
