"""Measurement statistics and waveform-reconstruction tests."""

import numpy as np
import pytest

from repro.analysis.reconstruct import WaveformReconstructor
from repro.analysis.statistics import (
    coverage_probability,
    quantization_step,
    range_error,
    tracking_rmse,
    worst_case_error,
)
from repro.analysis.thermometer import VoltageRange
from repro.errors import ConfigurationError, DecodingError
from repro.sim.waveform import ConstantWaveform


def test_quantization_step_mean_spacing():
    assert quantization_step((0.8, 0.9, 1.0)) == pytest.approx(0.1)


def test_quantization_step_needs_two():
    with pytest.raises(ConfigurationError):
        quantization_step((1.0,))


def test_range_error_zero_inside():
    r = VoltageRange(0.9, 1.0)
    assert range_error(r, 0.95) == 0.0


def test_range_error_below_and_above():
    r = VoltageRange(0.9, 1.0)
    assert range_error(r, 0.85) == pytest.approx(0.05)
    assert range_error(r, 1.05) == pytest.approx(0.05)


def test_range_error_unbounded_side_free():
    r = VoltageRange(float("-inf"), 0.9)
    assert range_error(r, 0.5) == 0.0
    assert range_error(r, 1.0) == pytest.approx(0.1)


def test_tracking_rmse_midpoint():
    ranges = [VoltageRange(0.9, 1.0), VoltageRange(0.8, 0.9)]
    truths = [0.95, 0.85]
    assert tracking_rmse(ranges, truths) == pytest.approx(0.0)


def test_tracking_rmse_bracket_mode():
    ranges = [VoltageRange(0.9, 1.0)]
    assert tracking_rmse(ranges, [0.85], use_midpoint=False) == \
        pytest.approx(0.05)


def test_tracking_rmse_length_mismatch():
    with pytest.raises(ConfigurationError):
        tracking_rmse([VoltageRange(0.9, 1.0)], [0.9, 1.0])


def test_coverage_probability():
    ranges = [VoltageRange(0.9, 1.0), VoltageRange(0.9, 1.0)]
    assert coverage_probability(ranges, [0.95, 0.5]) == 0.5


def test_worst_case_error():
    ranges = [VoltageRange(0.9, 1.0), VoltageRange(0.9, 1.0)]
    assert worst_case_error(ranges, [0.95, 0.7]) == pytest.approx(0.2)


# -- reconstruction -----------------------------------------------------------

def test_reconstructor_sorts_by_time():
    rec = WaveformReconstructor()
    rec.add(2e-9, VoltageRange(0.9, 1.0))
    rec.add(1e-9, VoltageRange(0.8, 0.9))
    times, mids, _, _ = rec.estimate_arrays()
    assert list(times) == [1e-9, 2e-9]
    assert mids[0] == pytest.approx(0.85)


def test_reconstructor_empty_raises():
    with pytest.raises(DecodingError):
        WaveformReconstructor().estimate_arrays()


def test_reconstructor_interpolation():
    rec = WaveformReconstructor()
    rec.add(0.0, VoltageRange(0.85, 0.95))   # mid 0.9
    rec.add(2.0, VoltageRange(0.95, 1.05))   # mid 1.0
    assert rec.interpolate(np.array([1.0]))[0] == pytest.approx(0.95)


def test_reconstructor_unbounded_nan_edges():
    rec = WaveformReconstructor()
    rec.add(0.0, VoltageRange(float("-inf"), 0.8))
    _, _, lows, highs = rec.estimate_arrays()
    assert np.isnan(lows[0])
    assert highs[0] == pytest.approx(0.8)


def test_reconstructor_rmse_against_truth():
    rec = WaveformReconstructor()
    rec.add(0.0, VoltageRange(0.90, 1.00))
    rec.add(1.0, VoltageRange(0.90, 1.00))
    truth = ConstantWaveform(0.95)
    assert rec.rmse_against(truth) == pytest.approx(0.0)


def test_reconstructor_extremes():
    rec = WaveformReconstructor()
    rec.add(0.0, VoltageRange(0.85, 0.95))
    rec.add(1.0, VoltageRange(0.95, 1.05))
    lo, hi = rec.extremes()
    assert lo == pytest.approx(0.9)
    assert hi == pytest.approx(1.0)


def test_reconstructor_clear():
    rec = WaveformReconstructor()
    rec.add(0.0, VoltageRange(0.9, 1.0))
    rec.clear()
    assert rec.n_points == 0
