"""IR-drop grid solver tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid


@pytest.fixture()
def grid():
    return IRDropGrid(rows=6, cols=6)


def test_no_load_no_drop(grid):
    v = grid.solve(np.zeros((6, 6)))
    assert np.allclose(v, grid.vdd, atol=1e-12)


def test_load_causes_drop_everywhere(grid):
    v = grid.solve(np.full((6, 6), 0.1))
    assert np.all(v < grid.vdd)


def test_center_hotspot_drops_most(grid):
    currents = grid.hotspot_currents(total_current=5.0, hotspot=(3, 3),
                                     hotspot_share=0.9)
    v = grid.solve(currents)
    r, c = np.unravel_index(np.argmin(v), v.shape)
    # Deepest drop at or adjacent to the hotspot.
    assert abs(r - 3) <= 1 and abs(c - 3) <= 1


def test_pads_are_highest(grid):
    currents = np.full((6, 6), 0.05)
    v = grid.solve(currents)
    pad_vs = [v[r, c] for r, c in grid.pad_tiles]
    assert max(pad_vs) == pytest.approx(v.max(), abs=1e-9)


def test_superposition_linearity(grid):
    c1 = grid.hotspot_currents(total_current=2.0, hotspot=(1, 1))
    c2 = grid.hotspot_currents(total_current=3.0, hotspot=(4, 4))
    drop1 = grid.vdd - grid.solve(c1)
    drop2 = grid.vdd - grid.solve(c2)
    both = grid.vdd - grid.solve(c1 + c2)
    assert np.allclose(both, drop1 + drop2, atol=1e-9)


def test_worst_drop(grid):
    currents = np.full((6, 6), 0.1)
    wd = grid.worst_drop(currents)
    v = grid.solve(currents)
    assert wd == pytest.approx(grid.vdd - v.min())


def test_flat_current_array_accepted(grid):
    v = grid.solve(np.zeros(36))
    assert v.shape == (6, 6)


def test_wrong_size_rejected(grid):
    with pytest.raises(ConfigurationError):
        grid.solve(np.zeros(35))


def test_negative_current_rejected(grid):
    c = np.zeros((6, 6))
    c[0, 0] = -1.0
    with pytest.raises(ConfigurationError):
        grid.solve(c)


def test_custom_pads_respected():
    g = IRDropGrid(rows=4, cols=4, pad_tiles=((0, 0),))
    currents = np.full((4, 4), 0.05)
    v = g.solve(currents)
    assert v[0, 0] == pytest.approx(v.max(), abs=1e-12)
    assert v[3, 3] == pytest.approx(v.min(), abs=1e-12)


def test_pad_outside_grid_rejected():
    with pytest.raises(ConfigurationError):
        IRDropGrid(rows=4, cols=4, pad_tiles=((5, 0),))


def test_tile_index_bounds(grid):
    assert grid.tile_index(0, 0) == 0
    assert grid.tile_index(5, 5) == 35
    with pytest.raises(ConfigurationError):
        grid.tile_index(6, 0)


def test_graph_topology(grid):
    g = grid.graph()
    assert g.number_of_nodes() == 36
    # Interior grid edges: r*(c-1) + (r-1)*c
    assert g.number_of_edges() == 6 * 5 + 5 * 6


def test_hotspot_currents_total(grid):
    c = grid.hotspot_currents(total_current=7.0, hotspot=(2, 2),
                              hotspot_share=0.4)
    assert c.sum() == pytest.approx(7.0)


def test_hotspot_share_validation(grid):
    with pytest.raises(ConfigurationError):
        grid.hotspot_currents(total_current=1.0, hotspot=(0, 0),
                              hotspot_share=1.5)


def test_grid_validation():
    with pytest.raises(ConfigurationError):
        IRDropGrid(rows=0, cols=3)
    with pytest.raises(ConfigurationError):
        IRDropGrid(rows=3, cols=3, r_segment=0.0)
