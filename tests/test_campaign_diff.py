"""Golden diffing: divergence taxonomy, float_tol, provenance."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.campaign import (
    CAMPAIGN_SCHEMA,
    diff_campaign,
    run_campaign,
    spec_from_mapping,
)
from repro.errors import CampaignError, GoldenDivergenceError


@pytest.fixture(scope="module")
def run_pair(tmp_path_factory):
    """One campaign run plus a verbatim copy standing in as golden."""
    root = tmp_path_factory.mktemp("diff")
    spec = spec_from_mapping({
        "schema": CAMPAIGN_SCHEMA,
        "name": "diff-test",
        "stages": [{"id": "sweep", "kind": "threshold_sweep",
                    "params": {"bits": [1, 2], "tol": 5e-3},
                    "checks": [{"kind": "monotone",
                                "field": "thresholds"}]}],
    })
    run_campaign(spec, out_dir=root / "run")
    shutil.copytree(root / "run", root / "golden",
                    ignore=shutil.ignore_patterns("cache"))
    return root / "run", root / "golden"


@pytest.fixture()
def mutable_pair(run_pair, tmp_path):
    """A fresh scratch copy of the golden, safe to tamper with."""
    run_dir, golden_dir = run_pair
    scratch = tmp_path / "golden"
    shutil.copytree(golden_dir, scratch)
    return run_dir, scratch


def _edit(path, mutate):
    data = json.loads(path.read_text())
    mutate(data)
    path.write_text(json.dumps(data))


def test_identical_trees_diff_clean(run_pair):
    run_dir, golden_dir = run_pair
    report = diff_campaign(run_dir, golden_dir)
    assert report.ok
    assert report.divergences == [] and report.provenance == []
    assert report.compared_stages == ["sweep"]
    report.raise_on_divergence(strict_provenance=True)  # no raise


def test_payload_drift_diverges_within_tol_passes(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def bump(data):
        data["thresholds"][0] += 1e-7

    _edit(golden_dir / "results" / "sweep.json", bump)
    strict = diff_campaign(run_dir, golden_dir)
    assert not strict.ok
    (div,) = strict.divergences
    assert div.kind == "float"
    assert "results.thresholds[0]" in div.path
    with pytest.raises(GoldenDivergenceError, match="thresholds"):
        strict.raise_on_divergence()
    loose = diff_campaign(run_dir, golden_dir, float_tol=1e-6)
    assert loose.ok


def test_structural_drift_is_never_tolerated(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def drop(data):
        del data["thresholds"][1]
        data["extra_key"] = True

    _edit(golden_dir / "results" / "sweep.json", drop)
    report = diff_campaign(run_dir, golden_dir, float_tol=1e6)
    kinds = {d.kind for d in report.divergences}
    assert not report.ok
    assert "missing" in kinds or "value" in kinds


def test_outcome_and_spec_hash_are_hard_keys(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def tamper(data):
        data["outcome"] = "failed"
        data["spec_hash"] = "0" * 64

    _edit(golden_dir / "manifest.json", tamper)
    report = diff_campaign(run_dir, golden_dir)
    paths = {d.path for d in report.divergences}
    assert {"outcome", "spec_hash"} <= paths


def test_provenance_drift_reported_not_failed(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def age(data):
        data["provenance"]["numpy"] = "1.26.0"
        data["campaign_fingerprint"] = "f" * 64

    _edit(golden_dir / "manifest.json", age)
    report = diff_campaign(run_dir, golden_dir)
    assert report.ok  # drift alone never fails the diff
    assert len(report.provenance) == 2
    report.raise_on_divergence()  # fine without strict
    with pytest.raises(GoldenDivergenceError, match="numpy"):
        report.raise_on_divergence(strict_provenance=True)


def test_check_verdict_flip_diverges_detail_does_not(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def reword(data):
        data["stages"][0]["checks"][0]["detail"] = "rephrased"

    _edit(golden_dir / "manifest.json", reword)
    assert diff_campaign(run_dir, golden_dir).ok

    def flip(data):
        data["stages"][0]["checks"][0]["ok"] = False

    _edit(golden_dir / "manifest.json", flip)
    report = diff_campaign(run_dir, golden_dir)
    assert not report.ok
    assert any("checks" in d.path for d in report.divergences)


def test_nondeterministic_stage_payload_skipped(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def mark(data):
        data["stages"][0]["deterministic"] = False

    _edit(golden_dir / "manifest.json", mark)
    # Also corrupt the golden payload: it must not even be read.
    (golden_dir / "results" / "sweep.json").write_text("{}")
    report = diff_campaign(run_dir, golden_dir)
    assert report.skipped_stages == ["sweep"]
    assert report.compared_stages == []
    # The deterministic flag itself is a hard key, though.
    assert any(d.path == "stages[sweep].deterministic"
               for d in report.divergences)


def test_missing_and_extra_stages_diverge(mutable_pair):
    run_dir, golden_dir = mutable_pair

    def rename(data):
        data["stages"][0]["id"] = "renamed"

    _edit(golden_dir / "manifest.json", rename)
    report = diff_campaign(run_dir, golden_dir)
    kinds = {(d.path, d.kind) for d in report.divergences}
    assert ("stages[sweep]", "extra") in kinds
    assert ("stages[renamed]", "missing") in kinds


def test_broken_fixture_is_an_error_not_a_divergence(run_pair,
                                                     tmp_path):
    run_dir, _ = run_pair
    with pytest.raises(CampaignError):
        diff_campaign(run_dir, tmp_path / "no-such-golden")
