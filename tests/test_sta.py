"""STA tests: graph construction, propagation, supply awareness, the
1.22 ns claim."""

import pytest

from repro.cells.combinational import Inverter
from repro.cells.sequential import DFlipFlop
from repro.core.control import build_control_netlist
from repro.devices.technology import TECH_90NM
from repro.errors import ConfigurationError, NetlistError, TimingViolationError
from repro.sim.netlist import Netlist
from repro.sta.analysis import analyze, critical_path, min_clock_period
from repro.sta.delay_calc import DelayCalculator
from repro.sta.graph import TimingGraph
from repro.units import NS


def ff_pipeline(n_inv, *, vdd="VDD"):
    """launch FF -> n_inv inverters -> capture FF."""
    nl = Netlist("pipe")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    if vdd != "VDD":
        nl.add_supply(vdd, 1.0)
    nl.add_net("clk")
    nl.add_net("d_in")
    nl.mark_external_input("clk")
    nl.mark_external_input("d_in")
    nl.add_net("q0")
    nl.add_instance("ff_launch", DFlipFlop(TECH_90NM),
                    {"D": "d_in", "CP": "clk", "Q": "q0"},
                    vdd=vdd, gnd="GND")
    prev = "q0"
    for i in range(n_inv):
        nl.add_net(f"n{i}")
        nl.add_instance(f"inv{i}", Inverter(TECH_90NM),
                        {"A": prev, "Y": f"n{i}"}, vdd=vdd, gnd="GND")
        prev = f"n{i}"
    nl.add_net("q1")
    nl.add_instance("ff_capture", DFlipFlop(TECH_90NM),
                    {"D": prev, "CP": "clk", "Q": "q1"},
                    vdd=vdd, gnd="GND")
    return nl


def test_min_period_is_clkq_plus_path_plus_setup():
    nl = ff_pipeline(3)
    report = analyze(nl)
    ff = DFlipFlop(TECH_90NM)
    # Reconstruct by hand: clk->q + 3 inverter arcs + setup.
    inv = Inverter(TECH_90NM)
    d_arc1 = inv.propagation_delay("A", "Y", 1.0, inv.pin("A").cap)
    d_arc_last = inv.propagation_delay("A", "Y", 1.0, ff.pin("D").cap)
    expected = (ff.clk_to_q + 2 * d_arc1 + d_arc_last + ff.setup_time)
    assert report.min_period == pytest.approx(expected, rel=1e-9)


def test_longer_path_longer_period():
    p2 = analyze(ff_pipeline(2)).min_period
    p6 = analyze(ff_pipeline(6)).min_period
    assert p6 > p2


def test_slack_positive_when_period_generous():
    report = analyze(ff_pipeline(3), clock_period=5 * NS)
    assert report.wns > 0
    report.require_closure()  # must not raise


def test_slack_negative_when_period_tight():
    nl = ff_pipeline(3)
    tight = analyze(nl).min_period * 0.5
    report = analyze(nl, clock_period=tight)
    assert report.wns < 0
    with pytest.raises(TimingViolationError):
        report.require_closure()


def test_critical_path_walks_the_chain():
    path = critical_path(ff_pipeline(4))
    instances = [seg.instance for seg in path]
    assert instances == ["inv0", "inv1", "inv2", "inv3"]
    cums = [seg.cumulative for seg in path]
    assert all(b > a for a, b in zip(cums, cums[1:]))


def test_supply_droop_slows_path():
    nl = ff_pipeline(4, vdd="VDDN")
    nl.set_supply_waveform("VDDN", 0.9)
    slow = analyze(nl).min_period
    nl2 = ff_pipeline(4)
    nominal = analyze(nl2).min_period
    assert slow > nominal


def test_supply_override_per_instance():
    nl = ff_pipeline(4)
    calc = DelayCalculator(nl, supply_overrides={"inv1": 0.85})
    slowed = analyze(nl, calculator=calc).min_period
    assert slowed > analyze(nl).min_period


def test_nldm_mode_close_to_analytic():
    nl = ff_pipeline(4)
    analytic = analyze(nl).min_period
    nldm = analyze(
        nl, calculator=DelayCalculator(nl, mode="nldm")
    ).min_period
    assert nldm == pytest.approx(analytic, rel=0.05)


def test_combinational_cycle_detected():
    nl = Netlist("loop")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a")
    nl.add_net("b")
    nl.add_instance("i1", Inverter(TECH_90NM), {"A": "a", "Y": "b"},
                    vdd="VDD", gnd="GND")
    nl.add_instance("i2", Inverter(TECH_90NM), {"A": "b", "Y": "a"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(NetlistError):
        TimingGraph.build(nl)


def test_no_endpoints_rejected():
    nl = Netlist("comb")
    nl.add_supply("VDD", 1.0)
    nl.add_supply("GND", 0.0, is_ground=True)
    nl.add_net("a")
    nl.add_net("y")
    nl.mark_external_input("a")
    nl.add_instance("i1", Inverter(TECH_90NM), {"A": "a", "Y": "y"},
                    vdd="VDD", gnd="GND")
    with pytest.raises(ConfigurationError):
        analyze(nl)


def test_bad_mode_rejected():
    nl = ff_pipeline(1)
    with pytest.raises(ConfigurationError):
        DelayCalculator(nl, mode="spice")


def test_nonpositive_period_rejected():
    with pytest.raises(ConfigurationError):
        analyze(ff_pipeline(1), clock_period=0.0)


# -- the paper's claim ---------------------------------------------------------

def test_control_system_critical_path_1p22ns(design):
    """§III-B: 'The critical path of the whole control system at 90nm
    is 1.22ns'."""
    nl, _ = build_control_netlist(design)
    assert min_clock_period(nl) == pytest.approx(1.22 * NS, rel=0.02)


def test_control_system_closes_at_2ns_cut_clock(design):
    """'...it can work with most of the typical CUTs system clock.'"""
    nl, _ = build_control_netlist(design)
    analyze(nl, clock_period=2 * NS).require_closure()


def test_control_critical_path_through_counter(design):
    """The long path runs counter carry chain -> FSM next-state."""
    nl, _ = build_control_netlist(design)
    path = critical_path(nl)
    instances = [seg.instance for seg in path]
    assert any("cnt" in i for i in instances)
    assert any(i.startswith("ctl_n") for i in instances)
