"""Thermometer-word and decoding tests."""

import math

import pytest

from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_table,
    decode_word,
)
from repro.errors import ConfigurationError, DecodingError


LADDER = (0.827, 0.896, 0.929, 0.960, 0.992, 1.021, 1.053)


def test_from_string_msb_first():
    w = ThermometerWord.from_string("0011111")
    assert w.bits == (1, 1, 1, 1, 1, 0, 0)
    assert w.to_string() == "0011111"


def test_string_roundtrip():
    for s in ("0000000", "1111111", "0000011", "0011111"):
        assert ThermometerWord.from_string(s).to_string() == s


def test_ones_count():
    assert ThermometerWord.from_string("0011111").ones == 5
    assert ThermometerWord.from_string("0000000").ones == 0
    assert ThermometerWord.from_string("1111111").ones == 7


def test_valid_thermometer_detection():
    assert ThermometerWord.from_string("0011111").is_valid_thermometer
    assert ThermometerWord.from_string("0000000").is_valid_thermometer
    assert ThermometerWord.from_string("1111111").is_valid_thermometer
    assert not ThermometerWord.from_string("0101111").is_valid_thermometer


def test_bubble_correction_preserves_ones():
    w = ThermometerWord.from_string("0101111")
    c = w.corrected()
    assert c.ones == w.ones
    assert c.is_valid_thermometer
    assert c.to_string() == "0011111"


def test_bubble_count():
    assert ThermometerWord.from_string("0011111").bubble_count == 0
    assert ThermometerWord.from_string("0101111").bubble_count == 2


def test_corrected_identity_on_valid():
    w = ThermometerWord.from_string("0001111")
    assert w.corrected() == w


def test_from_samples_maps_unknown():
    w = ThermometerWord.from_samples((1, None, 0), unknown_as=0)
    assert w.bits == (1, 0, 0)
    w2 = ThermometerWord.from_samples((1, None, 0), unknown_as=1)
    assert w2.bits == (1, 1, 0)


def test_equality_and_hash():
    a = ThermometerWord.from_string("0011111")
    b = ThermometerWord((1, 1, 1, 1, 1, 0, 0))
    assert a == b
    assert hash(a) == hash(b)
    assert a != ThermometerWord.from_string("0001111")


def test_word_validation():
    with pytest.raises(ConfigurationError):
        ThermometerWord(())
    with pytest.raises(ConfigurationError):
        ThermometerWord((0, 2))
    with pytest.raises(ConfigurationError):
        ThermometerWord.from_string("01x")


# -- decoding ---------------------------------------------------------------

def test_decode_paper_word_0011111():
    rng = decode_word(ThermometerWord.from_string("0011111"), LADDER)
    assert rng.lo == pytest.approx(0.992)
    assert rng.hi == pytest.approx(1.021)


def test_decode_paper_word_0000011():
    rng = decode_word(ThermometerWord.from_string("0000011"), LADDER)
    assert rng.lo == pytest.approx(0.896)
    assert rng.hi == pytest.approx(0.929)


def test_decode_all_fail_unbounded_low():
    rng = decode_word(ThermometerWord.from_string("0000000"), LADDER)
    assert math.isinf(rng.lo) and rng.lo < 0
    assert rng.hi == pytest.approx(0.827)


def test_decode_all_pass_unbounded_high():
    rng = decode_word(ThermometerWord.from_string("1111111"), LADDER)
    assert rng.lo == pytest.approx(1.053)
    assert math.isinf(rng.hi)


def test_decode_bubbled_strict_raises():
    with pytest.raises(DecodingError):
        decode_word(ThermometerWord.from_string("0101111"), LADDER)


def test_decode_bubbled_lenient_corrects():
    rng = decode_word(ThermometerWord.from_string("0101111"), LADDER,
                      strict=False)
    assert rng.lo == pytest.approx(0.992)


def test_decode_width_mismatch():
    with pytest.raises(DecodingError):
        decode_word(ThermometerWord.from_string("011"), LADDER)


def test_decode_unsorted_ladder():
    with pytest.raises(DecodingError):
        decode_word(ThermometerWord.from_string("0011111"),
                    tuple(reversed(LADDER)))


def test_decode_table_has_n_plus_one_rows():
    table = decode_table(LADDER)
    assert len(table) == 8
    assert table[0][0] == "0000000"
    assert table[-1][0] == "1111111"


def test_decode_table_ranges_tile_the_axis():
    table = decode_table(LADDER)
    for (_, r1), (_, r2) in zip(table, table[1:]):
        assert r1.hi == pytest.approx(r2.lo)


# -- VoltageRange ------------------------------------------------------------

def test_range_midpoint_and_width():
    r = VoltageRange(0.9, 1.0)
    assert r.midpoint == pytest.approx(0.95)
    assert r.width == pytest.approx(0.1)


def test_range_contains_half_open():
    r = VoltageRange(0.9, 1.0)
    assert r.contains(1.0)
    assert not r.contains(0.9)
    assert r.contains(0.95)


def test_range_unbounded_midpoint_falls_back():
    r = VoltageRange(float("-inf"), 0.8)
    assert r.midpoint == pytest.approx(0.8)
    assert not r.bounded


def test_range_empty_rejected():
    with pytest.raises(ConfigurationError):
        VoltageRange(1.0, 1.0)
